//! End-to-end network frontier demo: a deterministic wire client
//! streams a Volta fleet over real loopback TCP into the gateway, the
//! gateway feeds `FleetService`, and the captured ingest journal is
//! replayed offline to prove byte-identity — the contract the whole
//! `alba-net` crate exists to keep.
//!
//! The run:
//!
//! 1. Live session — `WireClient` dials the gateway's TCP listener,
//!    authenticates as tenant `volta`, and streams every fleet batch
//!    under credit-based flow control while the service diagnoses.
//! 2. Control plane — the same listener answers an HTTP Prometheus
//!    scrape (`GET /metrics`) plus the tracing routes (`/trace/0`,
//!    `/flightrec`) after the run; the scrapes are written next to the
//!    event log.
//! 3. Replay — a fresh equally-seeded service consumes the captured
//!    journal through `IngestLogReplay`; the example asserts the event
//!    logs are byte-identical and the deployed models bit-identical.
//!
//! The live run carries a causal [`Tracer`] seeded with the campaign
//! seed: the gateway records `decode` hops, the service every pipeline
//! stage, and shutdown dumps the flight recorder. Trace ids are pure
//! functions of `(seed, node, tick)`, so two equal-seed invocations
//! write byte-identical `fleet_gateway_trace.jsonl` and
//! `flightrec_shutdown.jsonl` artifacts (ci.sh checks exactly that).
//! The offline replay is deliberately untraced — trace identity is a
//! live-vs-live contract; replay identity is judged on the event log.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `ALBA_GATEWAY_OUT=<dir>` — artifact directory (default `results`):
//!   `fleet_gateway_events.jsonl`, `fleet_gateway_capture.bin`,
//!   `fleet_gateway_metrics.prom`, `fleet_gateway_trace.jsonl`,
//!   `flightrec_shutdown.jsonl`.
//! * `ALBA_GATEWAY_CHAOS=storm` — run the client under a seeded
//!   reconnect-storm fault plan; identity must still hold because the
//!   journal records what was *accepted*, not what was attempted.
//! * `ALBA_GATEWAY_SEED=<n>` — campaign seed (default 42).
//!
//! Run with: `cargo run --release --example fleet_gateway`

use std::path::Path;
use std::sync::Arc;

use albadross_repro::chaos::{NetChaosConfig, NetFaultPlan};
use albadross_repro::framework::{MonitorConfig, System};
use albadross_repro::net::{
    ByteStream, Gateway, GatewayConfig, IngestLogReplay, Lockstep, TcpByteStream, TcpDoor,
    TenantConfig, WireClient,
};
use albadross_repro::obs::{MemorySink, Obs, TickClock};
use albadross_repro::serve::{FleetService, ServeConfig, Tracer};
use albadross_repro::telemetry::Scale;

fn config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

fn observed_service(seed: u64, tracer: Tracer) -> (FleetService, Arc<MemorySink>) {
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    (FleetService::with_tracer(config(seed), obs, tracer), sink)
}

/// Scrapes `GET <path>` from the gateway's control plane over a fresh
/// TCP connection, pumping the gateway until the response completes.
fn scrape(
    harness: &mut Lockstep,
    svc: &FleetService,
    addr: &std::net::SocketAddr,
    path: &str,
) -> String {
    let mut probe = TcpByteStream::connect(addr).expect("connect control plane");
    let request = format!("GET {path} HTTP/1.1\r\nHost: gw\r\n\r\n");
    probe.write(request.as_bytes()).expect("send scrape");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    for now in 0..50usize {
        harness.gateway.pump(100_000 + now, Some(svc));
        while let Ok(n) = probe.read(&mut chunk) {
            if n == 0 {
                break;
            }
            raw.extend_from_slice(&chunk[..n]);
        }
        if raw.windows(4).any(|w| w == b"\r\n\r\n") {
            harness.gateway.pump(100_000 + now + 1, Some(svc));
            while let Ok(n) = probe.read(&mut chunk) {
                if n == 0 {
                    break;
                }
                raw.extend_from_slice(&chunk[..n]);
            }
            break;
        }
    }
    let raw = String::from_utf8(raw).expect("scrape is text");
    assert!(raw.starts_with("HTTP/1.1 200 OK"), "scrape failed: {}", &raw[..raw.len().min(120)]);
    raw.split("\r\n\r\n").nth(1).expect("scrape has a body").to_string()
}

fn main() {
    let out = std::env::var("ALBA_GATEWAY_OUT").unwrap_or_else(|_| "results".into());
    let out = Path::new(&out);
    let seed: u64 =
        std::env::var("ALBA_GATEWAY_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let chaos = std::env::var("ALBA_GATEWAY_CHAOS").is_ok_and(|v| v == "storm");
    std::fs::create_dir_all(out).expect("create output directory");

    // --- live session over loopback TCP -----------------------------
    // The tracer is shared by the gateway and the service: one seed,
    // one clock, one flight recorder spanning net + shards + service.
    let tracer = Tracer::new(seed, Arc::new(TickClock::new()), Tracer::DEFAULT_RING);
    let trace_sink = Arc::new(MemorySink::new());
    tracer.set_sink(trace_sink.clone());
    tracer.set_dump_dir(out);
    let (mut svc, sink) = observed_service(seed, tracer.clone());
    let door = TcpDoor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = door.addr();
    // The gateway shares the service's metric registry so one scrape
    // covers the whole stack; it emits counters/gauges/histograms only,
    // never events, so replay identity is unaffected.
    let gateway = Gateway::with_tracer(
        GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
        Box::new(door),
        svc.obs().clone(),
        tracer.clone(),
    );
    let mut client = WireClient::new(
        Box::new(move || Box::new(TcpByteStream::connect(&addr).expect("dial gateway"))),
        "volta",
        "tok",
        svc.fleet_batches(),
    );
    if chaos {
        let horizon = svc.fleet_batches().len();
        client = client.with_faults(NetFaultPlan::generate(
            &NetChaosConfig::reconnect_storm(4),
            seed,
            horizon,
        ));
        println!("chaos: reconnect storm enabled (4 mid-stream reconnects)");
    }
    let mut harness = Lockstep { client, gateway };

    println!(
        "serving {} fleet batches over TCP {addr} (seed {seed})...",
        svc.fleet_batches().len()
    );
    let max_ticks = svc.fleet_batches().len() + 60;
    let stats = svc.run_frontier(&mut harness, max_ticks);
    assert!(!harness.client.is_failed(), "wire session must complete cleanly");

    let tenant = stats.tenants.first().expect("tenant stats present");
    println!(
        "  live: {} frames accepted, {} samples delivered, {} connects, {} busy sheds",
        tenant.frames_accepted,
        tenant.samples_delivered,
        tenant.connects,
        tenant.frames_no_credit + tenant.frames_queue_full,
    );
    println!("  live: {} alarms, {} retrains", svc.alarms().len(), stats.feedback.retrains);
    if chaos {
        let cs = harness.client.stats();
        println!(
            "  chaos: {} reconnects survived, {} busy frames seen",
            cs.reconnects, cs.busy_seen
        );
        assert!(cs.reconnects >= 1, "the storm must actually reconnect");
    }

    // --- control-plane scrapes on the same listener ------------------
    let metrics = scrape(&mut harness, &svc, &addr, "/metrics");
    assert!(metrics.contains("# TYPE"), "scrape must be Prometheus text exposition");
    assert!(
        metrics.contains("net_tenant_frames_accepted_total"),
        "scrape must carry the per-tenant admission counters"
    );
    std::fs::write(out.join("fleet_gateway_metrics.prom"), &metrics).expect("write metrics");

    let node_trace = scrape(&mut harness, &svc, &addr, "/trace/0");
    let parsed = serde_json::parse_value(&node_trace).expect("/trace/0 body is JSON");
    assert!(
        matches!(parsed, serde::Value::Array(_)),
        "/trace/0 returns the node's recent hops as a JSON array"
    );
    let flightrec = scrape(&mut harness, &svc, &addr, "/flightrec");
    assert!(flightrec.starts_with("{\"ts\":"), "/flightrec leads with its header line");
    println!(
        "  trace: {} hops recorded, {} flight-recorder dumps, /trace/0 + /flightrec scraped",
        tracer.hops_recorded(),
        tracer.dumps_taken()
    );

    // --- artifacts ----------------------------------------------------
    let live_events = sink.lines();
    let capture = harness.gateway.ingest_log().as_bytes().to_vec();
    std::fs::write(out.join("fleet_gateway_events.jsonl"), live_events.join("\n") + "\n")
        .expect("write event log");
    std::fs::write(out.join("fleet_gateway_capture.bin"), &capture).expect("write capture");
    std::fs::write(out.join("fleet_gateway_trace.jsonl"), trace_sink.lines().join("\n") + "\n")
        .expect("write trace log");
    let live_model = svc.model().to_json();

    // --- offline replay of the captured journal ----------------------
    println!("replaying the captured journal ({} bytes) offline...", capture.len());
    let (mut replay_svc, replay_sink) = observed_service(seed, Tracer::disabled());
    let mut replay = IngestLogReplay::from_bytes(&capture).expect("capture parses");
    replay_svc.run_frontier(&mut replay, max_ticks);

    assert_eq!(replay_sink.lines(), live_events, "event logs must be byte-identical");
    assert_eq!(replay_svc.model().to_json(), live_model, "models must be bit-identical");
    assert_eq!(replay_svc.alarms().len(), svc.alarms().len());
    println!(
        "  replay: {} events byte-identical, model bit-identical, {} alarms match",
        live_events.len(),
        svc.alarms().len()
    );

    println!("artifacts: events/capture/metrics/trace/flightrec -> {}", out.display());
    println!("\nall gateway acceptance checks passed");
}
