//! Experiment grid tour: a declarative sweep, run cold, then resumed
//! from its memo store without recomputing a single cell.
//!
//! A `GridSpec` (the same JSON the `repro --grid` flag accepts) expands
//! into content-addressed cells — one active-learning session per
//! (extractor, model, strategy, budget, seed) point. The runner fans
//! the cells out over a fixed worker pool, persists each finished cell
//! into an `alba-store` keyed by the cell's canonical hash, and merges
//! results in expansion order, so the report bytes are identical at any
//! worker count.
//!
//! The second run here opens the same store and finds every cell
//! already present: zero cells computed, byte-identical report — which
//! is exactly what resuming a killed sweep looks like.
//!
//! Run with: `cargo run --release --example experiment_grid`

use albadross_repro::grid::{run_grid, GridSpec, RunOptions};
use albadross_repro::obs::Obs;
use albadross_repro::store::TelemetryStore;
use albadross_repro::trace::Tracer;

const SPEC: &str = r#"{
  "name": "tour",
  "mode": "sweep",
  "system": "volta",
  "campaign": "smoke",
  "extractors": ["mvts"],
  "strategies": ["uncertainty", "margin", "random"],
  "models": ["RF"],
  "budgets": [6],
  "seeds": [17, 18],
  "top_k_features": 120
}"#;

fn main() {
    let spec = GridSpec::parse(SPEC, None).expect("spec parses");
    let store_dir = std::env::temp_dir().join("alba_example_grid");
    let _ = std::fs::remove_dir_all(&store_dir);

    let open = || Some(TelemetryStore::open(&store_dir).expect("open memo store"));
    let run = |store| {
        let opts = RunOptions { workers: 2, store, obs: Obs::wall(), tracer: Tracer::disabled() };
        run_grid(&spec, &opts).expect("grid run")
    };

    println!("cold run: every cell computed and persisted...");
    let cold = run(open());
    println!(
        "  {} cells, {} memoised, {} computed\n",
        cold.stats.cells, cold.stats.memo_hits, cold.stats.computed
    );

    println!("second run against the same store (a resume):");
    let warm = run(open());
    println!(
        "  {} cells, {} memoised, {} computed",
        warm.stats.cells, warm.stats.memo_hits, warm.stats.computed
    );
    assert_eq!(warm.stats.computed, 0, "resume recomputes nothing");
    assert_eq!(warm.json, cold.json, "memoised report is byte-identical");
    println!("  report bytes identical to the cold run\n");

    println!("leaderboard (paired t + Wilcoxon vs the top pipeline):\n");
    println!("{}", warm.leaderboard_md);

    let _ = std::fs::remove_dir_all(&store_dir);
}
