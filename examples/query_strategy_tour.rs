//! Query-strategy tour: compare uncertainty, margin, entropy, Random and
//! Equal-App head-to-head on the same splits, reproducing the qualitative
//! ordering of the paper's Fig. 3 in miniature — informative strategies
//! reach a given F1 with far fewer labeled samples than Random.
//!
//! Run with: `cargo run --release --example query_strategy_tour`

use albadross_repro::active::MethodCurves;
use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{prepare_split, seed_and_pool, SplitConfig};

fn main() {
    println!("generating a reduced Volta campaign...");
    let data = SystemData::generate_best(System::Volta, Scale::Smoke, 11);
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);

    // Two stratified splits; every strategy sees the same seed/pool/test.
    let mut sessions_per_strategy: Vec<(Strategy, Vec<_>)> =
        Strategy::ALL.iter().map(|&s| (s, Vec::new())).collect();
    for rep in 0..2u64 {
        let split = prepare_split(
            &data.dataset,
            &SplitConfig { train_fraction: 0.5, top_k_features: 300 },
            100 + rep,
        );
        let sp = seed_and_pool(&split.train, None, 200 + rep);
        for (strategy, sessions) in &mut sessions_per_strategy {
            let session = run_session(
                &spec,
                &sp.seed_set,
                &sp.pool,
                &split.test,
                &SessionConfig {
                    strategy: *strategy,
                    budget: 30,
                    target_f1: None,
                    seed: 300 + rep,
                },
            );
            sessions.push(session);
        }
    }

    println!("\nmean F1 trajectory (2 splits, 30 queries):");
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "strategy", "start", "q10", "q20", "q30");
    for (strategy, sessions) in &sessions_per_strategy {
        let curves = MethodCurves::from_sessions(strategy.name(), sessions);
        let f1 = &curves.f1.mean;
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            strategy.name(),
            f1[0],
            f1[10.min(f1.len() - 1)],
            f1[20.min(f1.len() - 1)],
            f1[f1.len() - 1]
        );
    }

    // Which labels did the best strategy ask for? (Fig. 4's drill-down.)
    let (_, uncertainty_sessions) = &sessions_per_strategy[0];
    let names: Vec<String> = data.dataset.encoder.names().to_vec();
    let drill = albadross_repro::active::QueryDrilldown::compute(uncertainty_sessions, 15, &names);
    println!("\nuncertainty's first 15 queries asked about:");
    for (label, count) in &drill.label_counts {
        println!("  {label:<10} {count:.1} samples on average");
    }
    if let Some((label, _)) = drill.top_label() {
        println!(
            "-> most-requested label: {label} (the seed set contains no healthy samples,\n   \
             so strategies hunt for healthy labels first — exactly the paper's Fig. 4)"
        );
    }
}
