//! Chaos drill: the 52-node Volta fleet served end to end *while a
//! seeded fault plan attacks every layer of the pipeline*.
//!
//! A `FaultPlan` (generated deterministically from the seed) schedules
//! node blackouts, stuck and garbage sensors, clock skew, burst sample
//! loss, retransmission storms, worker-shard panics, oracle outages and
//! store/journal I/O failures. The service self-heals through all of
//! it: a supervisor catches shard panics and respawns the shard with
//! the last journaled model, garbage-spewing nodes are quarantined with
//! hysteresis, oracle and journal operations retry under bounded seeded
//! backoff, and a torn journal append heals by reopening.
//!
//! Everything is deterministic — the plan is a pure function of the
//! seed, injection decisions are hash-derived, and events are stamped
//! by a tick clock — so re-running this example produces an identical
//! `results/chaos_drill_events.jsonl`, and the saved
//! `results/chaos_drill_plan.json` replays the exact same faults
//! through `repro --chaos-plan`.
//!
//! A causal [`Tracer`] rides along: every fault firing and shard panic
//! dumps the bounded flight recorder into
//! `results/flightrec_fault_<kind>.jsonl` /
//! `results/flightrec_panic_shard<id>.jsonl` — the last moments of
//! every lane, captured at the instant the fault hit.
//!
//! Run with: `cargo run --release --example chaos_drill`

use std::sync::Arc;

use albadross_repro::chaos::{ChaosConfig, FaultKind};
use albadross_repro::framework::{MonitorConfig, System};
use albadross_repro::obs::{FileSink, Obs, TickClock};
use albadross_repro::serve::{FleetService, ServeConfig, Tracer};
use albadross_repro::telemetry::Scale;

fn main() {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 52, 42);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.n_shards = 4;
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    // The default taxonomy: every fault class represented, nothing so
    // hot the fleet cannot stay live.
    cfg.chaos = Some(ChaosConfig::default());

    let clock = Arc::new(TickClock::new());
    let obs = Obs::with_clock(clock.clone());
    std::fs::create_dir_all("results").expect("create results directory");
    let events_path = std::path::Path::new("results/chaos_drill_events.jsonl");
    obs.set_sink(Arc::new(FileSink::create(events_path).expect("create event log")));

    // Flight recorder only (no JSONL sink): fault firings and shard
    // panics dump the per-lane rings into results/flightrec_*.jsonl.
    let tracer = Tracer::new(42, clock.clone(), Tracer::DEFAULT_RING);
    tracer.set_dump_dir("results");

    println!("training the initial model and building the 52-node fleet...");
    let mut svc = FleetService::with_tracer(cfg, obs.clone(), tracer.clone());
    let plan = svc.chaos_plan().expect("chaotic service carries a plan").clone();
    std::fs::write("results/chaos_drill_plan.json", plan.to_json().expect("serialise plan"))
        .expect("write plan");
    println!(
        "  fault plan: {} events over {} ticks (seed {})",
        plan.len(),
        plan.horizon,
        plan.seed
    );
    for kind in [
        FaultKind::NodeBlackout,
        FaultKind::GarbageSensor,
        FaultKind::ShardPanic,
        FaultKind::OracleOutage,
    ] {
        let n = plan.events.iter().filter(|e| e.kind == kind).count();
        println!("    {:<16} x{}", kind.name(), n);
    }

    println!("serving under fault injection...");
    while svc.tick() {
        clock.advance(1_000_000_000);
    }
    let stats = svc.run_to_completion();
    let chaos = stats.chaos.clone().expect("chaotic run exports chaos stats");

    println!(
        "  {} ticks, {} windows diagnosed, {} alarms, hot-swaps at {:?}",
        stats.ticks, stats.windows, stats.alarms, stats.swap_ticks
    );
    println!(
        "  injected: {} total ({} blackout drops, {} garbage readings, {} storm duplicates)",
        chaos.total_injected(),
        chaos.injected.blackout_drops,
        chaos.injected.garbage_readings,
        chaos.injected.storm_duplicates
    );
    println!(
        "  recovered: {} total ({} shard restarts, {} quarantines entered / {} released, \
         {} oracle recoveries, {} journal recoveries)",
        chaos.total_recoveries(),
        chaos.shard_restarts,
        chaos.quarantines_entered,
        chaos.quarantines_released,
        chaos.oracle_recoveries,
        chaos.journal_recoveries
    );
    println!(
        "  backoff: {} simulated waits totalling {:.3} ms",
        chaos.backoff_waits,
        chaos.backoff_ns as f64 / 1e6
    );
    println!(
        "observability: {} events -> {}, plan -> results/chaos_drill_plan.json",
        svc.obs().events_emitted(),
        events_path.display()
    );
    println!(
        "flight recorder: {} hops, {} dumps -> results/flightrec_*.jsonl",
        tracer.hops_recorded(),
        tracer.dumps_taken()
    );

    // The acceptance bar: faults were injected at multiple layers, the
    // self-healing machinery recovered from them, and the service still
    // did its job (diagnosed windows, raised alarms, swapped models).
    assert!(chaos.faults_started > 0, "fault windows must open");
    assert!(chaos.total_injected() > 0, "faults must be injected");
    assert!(chaos.total_recoveries() > 0, "the service must self-heal");
    assert!(stats.windows > 0, "the fleet must keep diagnosing under chaos");
    assert!(!stats.swap_ticks.is_empty(), "the AL loop must survive the chaos");
    assert_eq!(stats.errors.journal_failures, 0, "no label may be abandoned");
    assert!(tracer.dumps_taken() > 0, "faults must trip the flight recorder");
    println!("\nall chaos-drill acceptance checks passed");
}
