//! Robustness scenario: previously unseen application inputs (Fig. 8).
//!
//! Every application runs with three input decks; the initial labeled set
//! only covers two of them, while the test set contains exclusively the
//! held-out deck. The seed-only model collapses (the paper reports an 0.2
//! starting F1 and an 80 % false-alarm rate) and active learning repairs it
//! by querying exactly the held-out-deck samples it is uncertain about.
//!
//! Run with: `cargo run --release --example unseen_inputs`

use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{prepare_split, seed_and_pool_filtered, SplitConfig};

fn main() {
    let held_out_deck = 2usize;
    println!("generating a reduced Volta campaign; holding out input deck {held_out_deck}...");
    let data = SystemData::generate_best(System::Volta, Scale::Smoke, 8);

    let split =
        prepare_split(&data.dataset, &SplitConfig { train_fraction: 0.5, top_k_features: 300 }, 9);
    // Seed labels only from the decks the operators have already seen.
    let sp = seed_and_pool_filtered(&split.train, |m| m.input_deck != held_out_deck, 9);
    // Test only on the never-before-labeled deck.
    let test_idx = split.test.indices_where(|m, _| m.input_deck == held_out_deck);
    let test = split.test.select(&test_idx);
    println!(
        "  seed {} samples (decks != {held_out_deck}), pool {}, test {} (deck {held_out_deck} only)",
        sp.seed_set.len(),
        sp.pool.len(),
        test.len()
    );

    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    for strategy in [Strategy::Uncertainty, Strategy::Random] {
        let session = run_session(
            &spec,
            &sp.seed_set,
            &sp.pool,
            &test,
            &SessionConfig { strategy, budget: 30, target_f1: None, seed: 9 },
        );
        let final_f1 = session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1);
        // How many of the queried samples came from the held-out deck?
        let held_out_queries = session
            .records
            .iter()
            .filter(|r| sp.pool.meta[r.pool_index].input_deck == held_out_deck)
            .count();
        println!(
            "\n{}: start F1={:.3} FAR={:.3}  ->  final F1={:.3} FAR={:.3}",
            strategy.name(),
            session.initial_scores.f1,
            session.initial_scores.false_alarm_rate,
            final_f1,
            session.records.last().map_or(0.0, |r| r.scores.false_alarm_rate),
        );
        println!(
            "   {held_out_queries}/{} queries targeted the unseen deck",
            session.records.len()
        );
    }

    println!(
        "\nuncertainty spends its query budget on the distribution shift itself,\n\
         which is how ALBADross stays robust to inputs nobody has labeled yet"
    );
}
