//! Volta campaign walk-through: build the telemetry substrate by hand —
//! system spec, metric catalog, application signatures, HPAS injections —
//! and inspect what an anomaly does to the raw 1 Hz time series before any
//! ML sees it.
//!
//! Run with: `cargo run --release --example volta_campaign`

use albadross_repro::data::MetricKind;
use albadross_repro::telemetry::{
    build_signature, find_application, generate_run, AnomalyKind, Injection, MetricCatalog,
    MetricGroup, NoiseConfig, RunConfig, SignatureConfig, SystemSpec,
};

fn mean(xs: &[f64]) -> f64 {
    let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    finite.iter().sum::<f64>() / finite.len().max(1) as f64
}

fn main() {
    // The Cray XC30m testbed of Sec. IV-A.
    let volta = SystemSpec::volta();
    println!(
        "{}: {} nodes, {} cores/node, {} GiB/node ({} LDMS metrics in the paper)",
        volta.name,
        volta.nodes,
        volta.cores_per_node(),
        volta.mem_gib,
        volta.paper_metric_count
    );

    // An LDMS-like metric catalog: 4 metrics per latent utilisation group.
    let catalog = MetricCatalog::build(&volta, 4);
    println!("simulated catalog: {} metrics across subsystems:", catalog.len());
    for subsystem in ["procstat", "perfevent", "meminfo", "procnetdev", "lustre", "cray_aries"] {
        let n = catalog.metrics.iter().filter(|m| m.def.subsystem == subsystem).count();
        println!("  {subsystem:<12} {n} metrics");
    }

    // Application signatures: how Kripke's resource usage differs from CG's.
    let cfg = SignatureConfig::default();
    let kripke = build_signature(&find_application("Kripke").unwrap(), 0, 4, &cfg);
    let cg = build_signature(&find_application("CG").unwrap(), 0, 4, &cfg);
    println!("\nhealthy signature levels (Kripke vs CG, input deck 0):");
    for g in [
        MetricGroup::CpuUser,
        MetricGroup::CacheMiss,
        MetricGroup::MemBandwidth,
        MetricGroup::NetTx,
    ] {
        println!("  {g:?}: {:.2} vs {:.2}", kripke.pattern(g).level, cg.pattern(g).level);
    }

    // Run Kripke on 4 nodes for 5 minutes with a cache-contention stressor
    // on the first allocated node (the paper's injection protocol).
    let run = RunConfig {
        app: find_application("Kripke").unwrap(),
        input_deck: 0,
        node_count: 4,
        duration_s: 300,
        injection: Some(Injection::new(AnomalyKind::CacheCopy, 100)),
        run_id: 0,
        seed: 2022,
    };
    let nodes = generate_run(&run, &catalog, &cfg, &NoiseConfig::testbed());
    println!("\ngenerated {} node series of {} samples each", nodes.len(), nodes[0].series.len());

    // Compare an LLC-miss gauge on the injected node vs a clean node.
    let mi = catalog
        .metrics
        .iter()
        .position(|m| m.group == MetricGroup::CacheMiss && m.def.kind == MetricKind::Gauge)
        .expect("an LLC gauge exists");
    let name = &catalog.metrics[mi].def.name;
    let injected = mean(nodes[0].series.metric(mi));
    let clean = mean(nodes[1].series.metric(mi));
    println!("\nmetric {name}:");
    println!("  node 0 (cachecopy @100%): mean {injected:.1}  [label: {}]", nodes[0].label);
    println!("  node 1 (clean):           mean {clean:.1}  [label: {}]", nodes[1].label);
    println!(
        "  -> the stressor inflates LLC misses {:.1}x on the injected node only",
        injected / clean
    );
}
