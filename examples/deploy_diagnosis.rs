//! Deployment scenario (paper Sec. III-E): train with active learning until
//! a target score, store the final model ("as a pickle object" — here,
//! serde JSON), reload it, and diagnose freshly collected node telemetry,
//! returning the anomaly label *and its confidence* per node.
//!
//! Run with: `cargo run --release --example deploy_diagnosis`

use albadross_repro::features::{extract_features, Mvts, PreprocessConfig};
use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{prepare_split, seed_and_pool, SplitConfig};
use albadross_repro::ml::{DiagnosisModel, FittedModel, RandomForest};
use albadross_repro::telemetry::{
    class_names, find_application, generate_run, AnomalyKind, Injection, NoiseConfig, RunConfig,
    SignatureConfig,
};

fn main() {
    // --- Training phase: active learning to a target, as in Fig. 1. -----
    println!("training with active learning...");
    let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 77);
    let split_cfg = SplitConfig { train_fraction: 0.5, top_k_features: 300 };
    let split = prepare_split(&data.dataset, &split_cfg, 77);
    let sp = seed_and_pool(&split.train, None, 77);
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig {
            strategy: Strategy::Uncertainty,
            budget: 40,
            target_f1: Some(0.85),
            seed: 77,
        },
    );
    println!(
        "  stopped after {} queries at F1={:.3}",
        session.records.len(),
        session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1)
    );

    // Re-fit the final model on seed + queried labels (the learner state).
    let queried: Vec<usize> = session.records.iter().map(|r| r.pool_index).collect();
    let labeled = sp.seed_set.concat(&sp.pool.select(&queried));
    let mut forest = RandomForest::new(match spec {
        ModelSpec::Forest(p) => p,
        _ => unreachable!(),
    });
    use albadross_repro::ml::Classifier;
    forest.fit(&labeled.x, &labeled.y, labeled.n_classes());

    // --- Store the model (the paper's pickle step). ----------------------
    let model = DiagnosisModel::new(FittedModel::Forest(forest), labeled.encoder.names().to_vec());
    let path = std::env::temp_dir().join("albadross_model.json");
    model.save(&path).expect("write model");
    println!("  stored model at {} ({} bytes)", path.display(), model.to_json().len());

    // --- Deployment: reload and diagnose fresh telemetry. ----------------
    let restored = DiagnosisModel::load(&path).expect("reload model");
    println!("\ndiagnosing a fresh MiniAMR run with a membw stressor on node 0...");
    let campaign = System::Volta.campaign(Scale::Smoke, 77);
    let catalog = campaign.catalog();
    let fresh = generate_run(
        &RunConfig {
            app: find_application("MiniAMR").unwrap(),
            input_deck: 1,
            node_count: 4,
            duration_s: 90,
            injection: Some(Injection::new(AnomalyKind::MemBw, 100)),
            run_id: 999,
            seed: 4242,
        },
        &catalog,
        &SignatureConfig::default(),
        &NoiseConfig::testbed(),
    );
    // Same preprocessing + extraction + feature view + scaling as training:
    // the prepared split carries the fitted selector and scaler.
    let fresh_ds = extract_features(&fresh, &Mvts, &PreprocessConfig::default(), &class_names());
    let projected = split.project(&fresh_ds);
    let x = projected.x;

    for (node, d) in restored.diagnose(&x).iter().enumerate() {
        println!(
            "  node {node}: {:<10} (confidence {:.2})  [ground truth: {}]",
            d.label, d.confidence, fresh[node].label
        );
    }
    std::fs::remove_file(&path).ok();
}
