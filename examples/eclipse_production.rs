//! Production-system scenario: Eclipse, with real-application workloads on
//! mixed allocation sizes and production-grade run-to-run variability —
//! plus the Proctor semi-supervised baseline for comparison (Sec. IV-D).
//!
//! Demonstrates the paper's Eclipse findings in miniature: the diagnosis
//! task starts from a much lower F1 than on the Volta testbed, and the
//! margin strategy closes the gap with informative queries while Proctor's
//! random labels barely move its score.
//!
//! Run with: `cargo run --release --example eclipse_production`

use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{prepare_split, seed_and_pool, RunScale, SplitConfig};

fn main() {
    println!("generating a reduced Eclipse campaign (LAMMPS, HACC, sw4, ...)...");
    let data = SystemData::generate_best(System::Eclipse, Scale::Smoke, 3);
    println!(
        "  {} node samples across allocations of 4/8/16 nodes; applications: {:?}",
        data.dataset.len(),
        data.dataset.applications()
    );

    let split =
        prepare_split(&data.dataset, &SplitConfig { train_fraction: 0.5, top_k_features: 300 }, 5);
    let sp = seed_and_pool(&split.train, None, 5);
    println!(
        "  seed: {} labeled samples (one per application/anomaly pair; Eclipse has 6 apps x 5 anomalies)",
        sp.seed_set.len()
    );

    // Margin strategy (the paper's best on Eclipse) with the Eclipse-tuned
    // random forest.
    let spec = ModelSpec::tuned(ModelFamily::Rf, false);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig { strategy: Strategy::Margin, budget: 25, target_f1: None, seed: 5 },
    );
    println!(
        "\nmargin strategy:  F1 {:.3} -> {:.3} after {} queries (FAR {:.3} -> {:.3})",
        session.initial_scores.f1,
        session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1),
        session.records.len(),
        session.initial_scores.false_alarm_rate,
        session.records.last().map_or(0.0, |r| r.scores.false_alarm_rate),
    );

    // Proctor: autoencoder representation + logistic-regression head,
    // re-trained with *random* labels each iteration.
    let scale = RunScale::smoke(5);
    let proctor = run_proctor_session(&sp.seed_set, &sp.pool, &split.test, &{
        let mut cfg = scale.proctor(5);
        cfg.budget = 25;
        cfg
    });
    println!(
        "proctor baseline: F1 {:.3} -> {:.3} after {} random labels (FAR {:.3} -> {:.3})",
        proctor.initial_scores.f1,
        proctor.records.last().map_or(proctor.initial_scores.f1, |r| r.scores.f1),
        proctor.records.len(),
        proctor.initial_scores.false_alarm_rate,
        proctor.records.last().map_or(0.0, |r| r.scores.false_alarm_rate),
    );

    println!(
        "\nthe same production effects the paper reports: a harder starting point than\n\
         the testbed, and informative queries buying far more F1 per label than random ones"
    );
}
