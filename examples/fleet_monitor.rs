//! Fleet-scale online monitoring: the full 52-node Volta testbed served
//! end to end by `alba-serve`.
//!
//! The service trains an initial forest on an offline campaign, then
//! streams a *held-out* campaign as 52 concurrent 1 Hz node feeds:
//! bounded ingest queues, sharded batched inference, hysteresis alarms,
//! and the online active-learning loop — uncertain windows become label
//! requests, the oracle (ground truth) answers them, and the refreshed
//! forest is hot-swapped into every monitor mid-run.
//!
//! The run is fully observed through `alba-obs`: a tick clock advances
//! one second per service tick (so timestamps are deterministic),
//! structured events stream to `results/fleet_monitor_events.jsonl`,
//! and the metric registry plus the per-shard histograms are dumped to
//! `results/fleet_monitor_metrics.prom` in text-exposition format.
//!
//! Run with: `cargo run --release --example fleet_monitor`
//!
//! Environment knobs (used by `scripts/ci.sh`'s parallel smoke, which
//! byte-compares the artifacts of a 1-worker and a 4-worker run):
//!
//! * `ALBA_WORKERS=<n>` — shard pool worker threads (default: auto).
//! * `ALBA_MONITOR_OUT=<dir>` — output directory (default: `results`).

use std::sync::Arc;

use albadross_repro::framework::{MonitorConfig, System};
use albadross_repro::obs::{FileSink, Obs, TickClock};
use albadross_repro::serve::{FleetService, ServeConfig};
use albadross_repro::telemetry::Scale;

fn main() {
    // The Volta testbed: 52 nodes. Smoke-scale runs keep this example
    // fast; the same code serves Eclipse fleets up to 1488 nodes.
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 52, 42);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.n_shards = 4;
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 12;
    cfg.max_retrains = 2;
    cfg.n_workers = std::env::var("ALBA_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);

    // Observe the run on a deterministic tick clock, with structured
    // events streaming to a JSONL file.
    let clock = Arc::new(TickClock::new());
    let obs = Obs::with_clock(clock.clone());
    let out_dir = std::env::var("ALBA_MONITOR_OUT").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create results directory");
    let events_path = std::path::Path::new(&out_dir).join("fleet_monitor_events.jsonl");
    let events_path = events_path.as_path();
    obs.set_sink(Arc::new(FileSink::create(events_path).expect("create event log")));

    println!("training the initial model and building the 52-node fleet...");
    let mut svc = FleetService::with_obs(cfg, obs.clone());
    let anomalous: Vec<usize> = (0..svc.n_nodes()).filter(|&n| svc.truth(n) != "healthy").collect();
    println!(
        "  {} nodes streaming ({} carry injected anomalies), {} shards",
        svc.n_nodes(),
        anomalous.len(),
        svc.config().n_shards
    );

    println!("serving...");
    // Drive the ticks by hand so the obs clock tracks stream time (1 s
    // per tick); run_to_completion then settles any leftover feedback.
    while svc.tick() {
        clock.advance(1_000_000_000);
    }
    let stats = svc.run_to_completion();

    println!(
        "  {} ticks, {} samples in ({} dropped), {} windows diagnosed ({:.0}/s wall)",
        stats.ticks,
        stats.samples_emitted,
        stats.ingest.dropped,
        stats.windows,
        stats.windows_per_s
    );
    println!(
        "  feedback: {} label requests, {} serviced, {} retrain(s), hot-swaps at ticks {:?}",
        stats.feedback.requested,
        stats.feedback.serviced,
        stats.feedback.retrains,
        stats.swap_ticks
    );

    println!("alarms:");
    for na in svc.alarms() {
        let truth = svc.truth(na.node);
        println!(
            "  t={:>4}  node {:>2}  {:<12} conf {:.2}  (truth: {}{})",
            na.alarm.at,
            na.node,
            na.alarm.label,
            na.alarm.confidence,
            truth,
            if na.alarm.label == truth { ", correct" } else { "" }
        );
    }

    let correct = svc.alarms().iter().filter(|na| na.alarm.label == svc.truth(na.node)).count();
    println!("  {}/{} alarms match the injected ground truth", correct, svc.alarms().len());

    println!("\nservice stats (JSON):\n{}", stats.to_json_pretty().expect("stats serialise"));

    // Dump everything the registry saw: counters, stage histograms and
    // the per-shard busy/latency histograms.
    let metrics_path = std::path::Path::new(&out_dir).join("fleet_monitor_metrics.prom");
    let metrics_path = metrics_path.as_path();
    std::fs::write(metrics_path, svc.prometheus()).expect("write metrics dump");
    println!(
        "observability: {} events -> {}, metrics -> {}",
        svc.obs().events_emitted(),
        events_path.display(),
        metrics_path.display()
    );

    // The acceptance bar for this scenario: confirmed alarms that match
    // the injections, a serviced label request, and a completed hot-swap
    // with no window lost (every emitted sample was either diagnosed
    // into windows or accounted as dropped).
    assert!(!svc.alarms().is_empty(), "fleet must raise confirmed alarms");
    assert!(correct * 2 > svc.alarms().len(), "alarms must mostly match injections");
    assert!(stats.feedback.serviced >= 1, "the AL loop must service a label request");
    assert!(stats.feedback.retrains >= 1, "the model must be hot-swapped at least once");
    assert_eq!(stats.ingest.pushed + stats.ingest.dropped, stats.samples_emitted);
    assert!(svc.obs().events_emitted() > 0, "the observed run must log events");
    println!("\nall fleet-monitoring acceptance checks passed");
}
