//! Quickstart: the whole ALBADross pipeline on a small simulated Volta
//! campaign — generate telemetry, extract features, split, seed one label
//! per (application, anomaly) pair, and let the uncertainty strategy pick
//! which samples a human annotator should label next.
//!
//! Run with: `cargo run --release --example quickstart`

use albadross_repro::framework::prelude::*;
use albadross_repro::framework::{seed_and_pool, SplitConfig};

fn main() {
    // 1. Simulate a data-collection campaign on the Volta testbed
    //    (11 applications x 3 input decks, HPAS anomalies on node 0)
    //    and extract TSFRESH-style statistical features.
    println!("generating telemetry + extracting features...");
    let data = SystemData::generate_best(System::Volta, Scale::Smoke, 42);
    println!(
        "  {} node samples, {} features, classes {:?}",
        data.dataset.len(),
        data.dataset.x.cols(),
        data.dataset.encoder.names()
    );

    // 2. Stratified train/test split, chi-square top-k selection and
    //    Min-Max scaling (fitted on the training side only).
    let split = albadross_repro::framework::prepare_split(
        &data.dataset,
        &SplitConfig { train_fraction: 0.5, top_k_features: 300 },
        7,
    );

    // 3. The initial labeled dataset: one sample per (application, anomaly)
    //    pair; everything else is the unlabeled pool.
    let sp = seed_and_pool(&split.train, None, 7);
    println!(
        "  seed set {} samples, unlabeled pool {} samples, test {} samples",
        sp.seed_set.len(),
        sp.pool.len(),
        split.test.len()
    );

    // 4. Active learning: a tuned random forest plus the classification-
    //    uncertainty query strategy (Eq. 1 of the paper).
    let spec = ModelSpec::tuned(ModelFamily::Rf, true);
    let session = run_session(
        &spec,
        &sp.seed_set,
        &sp.pool,
        &split.test,
        &SessionConfig {
            strategy: Strategy::Uncertainty,
            budget: 25,
            target_f1: Some(0.95),
            seed: 7,
        },
    );

    println!(
        "\nstarting scores: F1={:.3} false-alarm={:.3} miss={:.3}",
        session.initial_scores.f1,
        session.initial_scores.false_alarm_rate,
        session.initial_scores.anomaly_miss_rate
    );
    for (q, r) in session.records.iter().enumerate() {
        println!(
            "query {:>2}: asked about {:<28} -> label {:<10} | F1={:.3} FAR={:.3}",
            q + 1,
            r.app.clone(),
            session
                .records
                .first()
                .map(|_| sp.pool.encoder.decode(r.true_label).unwrap_or("?"))
                .unwrap_or("?"),
            r.scores.f1,
            r.scores.false_alarm_rate
        );
    }
    match session.queries_to_reach(0.9) {
        Some(q) => println!("\nreached 0.90 F1 after {q} labeled samples"),
        None => println!("\ndid not reach 0.90 F1 within the budget (try Scale::Default)"),
    }
}
