#!/usr/bin/env python3
"""Renders the "Perf trajectory" markdown table from results/BENCH_*.json.

The one renderer behind both `scripts/bench_gate.sh --table` and the
block between the `PERF_TABLE` markers in README.md (spliced by
`scripts/fill_experiments.py`): every numeric metric key of every bench
artifact, in filename order — counts and rates alike, not just the keys
the regression gate tracks.
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def fmt(val: float) -> str:
    """Small non-integral values keep two decimals (an overhead of
    1.03% must not render as "1"); everything else gets space-grouped
    integer formatting."""
    if isinstance(val, float) and abs(val) < 100 and val != int(val):
        return f"{val:.2f}"
    return f"{val:,.0f}".replace(",", " ")


def render() -> str:
    benches = sorted(ROOT.glob("results/BENCH_*.json"))
    if not benches:
        raise SystemExit("perf_table: no results/BENCH_*.json artifacts found")
    lines = ["| bench | metric | value |", "|-------|--------|-------|"]
    for path in benches:
        data = json.load(open(path))
        name = data.get("bench", path.stem)
        for key, val in data.items():
            # "bench" is the name, "quick" a bool flag; neither is a metric.
            if key == "bench" or isinstance(val, bool) or not isinstance(val, (int, float)):
                continue
            lines.append(f"| {name} | `{key}` | {fmt(val)} |")
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    sys.stdout.write(render())
