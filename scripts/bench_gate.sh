#!/usr/bin/env bash
# CI perf-regression gate over the committed bench trajectory.
#
# Usage: scripts/bench_gate.sh [--table]
#
# Compares every fresh results/BENCH_*.json against the version
# committed at HEAD (`git show HEAD:results/BENCH_x.json`) and fails
# when any throughput/latency key regresses by more than the tolerance
# (default 20%, override with ALBA_BENCH_GATE_TOL=<pct>).
#
# Key direction is inferred from its name:
#   higher-is-better:  *per_sec*, *per_s*, *throughput*, *speedup*
#   lower-is-better:   *latency*, *ns_per*, *_p50_*, *_p99_*, *overhead*
# Everything else (counts, flags, metadata) is informational only.
# Keys whose baseline magnitude is below 10 are skipped — a 0-tick p50
# moving to 1 tick is not a 20% story the gate can tell honestly.
#
# --table prints a markdown "Perf trajectory" table of the *current*
# bench artifacts instead of gating, and never fails. It delegates to
# scripts/perf_table.py — the same renderer fill_experiments.py splices
# into the README — so the two can never drift apart.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE=gate
for arg in "${@:-}"; do
    case "$arg" in
        --table) MODE=table ;;
        "") ;;
        *) echo "unknown argument: $arg (usage: scripts/bench_gate.sh [--table])" >&2; exit 2 ;;
    esac
done

if [ "$MODE" = table ]; then
    exec python3 scripts/perf_table.py
fi

TOL="${ALBA_BENCH_GATE_TOL:-20}"
export TOL

fail=0
shopt -s nullglob
benches=(results/BENCH_*.json)
if [ "${#benches[@]}" -eq 0 ]; then
    echo "bench_gate: no results/BENCH_*.json artifacts found" >&2
    exit 1
fi

for f in "${benches[@]}"; do
    # The committed trajectory point; a brand-new bench has no baseline
    # yet and passes trivially.
    if ! git show "HEAD:$f" > /tmp/bench_baseline.json 2>/dev/null; then
        echo "bench_gate: $f has no committed baseline yet (new bench) — skipped"
        continue
    fi
    CURRENT="$f" python3 - "$f" /tmp/bench_baseline.json <<'PY' || fail=1
import json, os, sys

cur_path, base_path = sys.argv[1], sys.argv[2]
cur = json.load(open(cur_path))
base = json.load(open(base_path))
tol = float(os.environ["TOL"])
name = cur.get("bench", os.path.basename(cur_path))

HIGHER = ("per_sec", "per_s", "throughput", "speedup")
LOWER = ("latency", "ns_per", "p50", "p99", "overhead")

def direction(key):
    k = key.lower()
    if any(tag in k for tag in HIGHER):
        return "higher"
    if any(tag in k for tag in LOWER):
        return "lower"
    return None

bad = []
for key, val in cur.items():
    d = direction(key)
    if d is None or not isinstance(val, (int, float)):
        continue
    ref = base.get(key)
    if not isinstance(ref, (int, float)):
        continue
    if abs(ref) < 10:
        continue  # sub-resolution baseline; a ratio would be noise
    change = (val - ref) / abs(ref) * 100.0
    regressed = change < -tol if d == "higher" else change > tol
    marker = "REGRESSED" if regressed else "ok"
    print(f"bench_gate: {name:>16} {key:<42} {ref:>14.0f} -> {val:>14.0f} ({change:+6.1f}%) {marker}")
    if regressed:
        bad.append(key)

if bad:
    print(f"bench_gate: {name}: {len(bad)} key(s) regressed beyond {tol}%: {', '.join(bad)}", file=sys.stderr)
    sys.exit(1)
PY
done

if [ "$fail" -ne 0 ]; then
    echo "bench_gate: FAILED (regressions beyond ${TOL}%)" >&2
    exit 1
fi
echo "bench_gate: OK (all tracked keys within ${TOL}% of the committed baseline)"
