#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: scripts/ci.sh [--full]
# Runs everything the tree must pass before a merge; exits non-zero on
# the first failure. --full additionally runs the #[ignore]d slow
# suites (exhaustive store byte-flip sweep, long chaos cases, the
# 24-cell parallel determinism stress matrix) and the sanitizer jobs
# (tsan over the threaded crates, miri over the linter), each skipped
# with a notice when the toolchain lacks the component.

set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
for arg in "$@"; do
    case "$arg" in
        --full) FULL=1 ;;
        *) echo "unknown argument: $arg (usage: scripts/ci.sh [--full])" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> alba-lint (determinism & robustness rules)"
if [ "$FULL" = "1" ]; then
    # --check-stale additionally fails on baseline entries that no
    # longer fire, forcing the grandfathered-findings file to shrink.
    cargo run --release -q -p alba-lint -- --check-stale
else
    cargo run --release -q -p alba-lint
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

if [ "$FULL" = "1" ]; then
    echo "==> slow suites (--full: #[ignore]d tests)"
    cargo test --workspace -q -- --ignored

    echo "==> ThreadSanitizer (--full: par + chaos suites under tsan)"
    # The shard pool and chaos supervisor are the only crates that
    # spawn threads; tsan re-runs their suites with full happens-before
    # tracking. Needs nightly (-Zsanitizer) AND rust-src: std must be
    # rebuilt instrumented (-Zbuild-std), because a prebuilt std hides
    # Mutex/futex edges from tsan and every critical section then
    # reports as a false race. --target keeps the sanitizer flags off
    # host build units (the vendored proc macros). A separate target
    # dir keeps instrumented artifacts out of the normal cache.
    if cargo +nightly --version >/dev/null 2>&1 \
        && [ -d "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library/std" ]; then
        HOST=$(rustc +nightly -vV | sed -n 's/^host: //p')
        RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
            cargo +nightly test -q -Zbuild-std -p alba-par -p alba-chaos --target "$HOST"
    else
        echo "  nightly rust-src unavailable — skipped (tsan needs an instrumented std)"
    fi

    echo "==> Miri (--full: alba-lint analysis passes under miri)"
    # The linter's parser/call-graph/dataflow stack is pure in-memory
    # code — exactly what miri checks well. Gated on the component
    # actually being installed (offline images often lack it).
    if cargo +nightly miri --version >/dev/null 2>&1; then
        CARGO_TARGET_DIR=target/miri \
            cargo +nightly miri test -q -p alba-lint --lib -- \
            lexer suppress parse callgraph dataflow
    else
        echo "  miri unavailable on this toolchain — skipped"
    fi
fi

echo "==> observability smoke (fleet_monitor example + artifact checks)"
cargo run --release --example fleet_monitor >/dev/null
python3 - <<'EOF'
import json

# Every event line must be a JSON object with ts and kind.
kinds = set()
with open("results/fleet_monitor_events.jsonl") as f:
    lines = [line.rstrip("\n") for line in f]
assert lines, "the observed example must emit events"
for line in lines:
    ev = json.loads(line)
    assert isinstance(ev["ts"], int), line
    kinds.add(ev["kind"])
assert "label_request" in kinds and "model_swap" in kinds, kinds

# The exposition dump must parse: TYPE headers, then name{labels} value.
with open("results/fleet_monitor_metrics.prom") as f:
    metrics = [line.rstrip("\n") for line in f if line.strip()]
names = set()
for line in metrics:
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        assert kind in ("counter", "gauge", "histogram"), line
        names.add(name)
        continue
    name, value = line.rsplit(" ", 1)
    float(value)
    assert any(name.startswith(n) for n in names), f"sample before TYPE: {line}"
for expected in ("stage_ns", "shard_busy_ns", "ingest_accepted_total"):
    assert expected in names, f"missing metric family {expected}"
print(f"  {len(lines)} events, {len(names)} metric families: OK")
EOF

echo "==> store smoke (cold run populates, warm run hits, results identical)"
STORE_DIR=$(mktemp -d)
OUT_COLD=$(mktemp -d)
OUT_WARM=$(mktemp -d)
trap 'rm -rf "$STORE_DIR" "$OUT_COLD" "$OUT_WARM"' EXIT
cargo run --release -p alba-bench --bin repro -- \
    --exp fig3 --scale smoke --store "$STORE_DIR" --out "$OUT_COLD" >/dev/null
cargo run --release -p alba-bench --bin repro -- \
    --exp fig3 --scale smoke --store "$STORE_DIR" --out "$OUT_WARM" >/dev/null
python3 - "$OUT_COLD" "$OUT_WARM" <<'EOF'
import json
import pathlib
import sys

cold, warm = (pathlib.Path(p) for p in sys.argv[1:3])
a = (cold / "fig3_smoke.json").read_bytes()
b = (warm / "fig3_smoke.json").read_bytes()
assert a == b, "warm-store run must reproduce fig3 byte-identically"

for run, expect_hits in (("cold", False), ("warm", True)):
    stats = json.loads(((cold if run == "cold" else warm) / "store_stats_smoke.json").read_text())
    hits = sum(k["cache_hits"] for k in stats["kinds"])
    misses = sum(k["cache_misses"] for k in stats["kinds"])
    if expect_hits:
        assert hits > 0, f"warm run must hit the store cache: {stats}"
        assert all(k["corrupt_entries"] == 0 for k in stats["kinds"]), stats
    else:
        assert misses > 0, f"cold run must populate the store: {stats}"
print(f"  fig3 byte-identical across cold/warm store runs, {hits} warm cache hits: OK")
EOF

echo "==> chaos smoke (seeded drill: recovery counters > 0, log replay byte-identical)"
OUT_CHAOS_A=$(mktemp -d)
OUT_CHAOS_B=$(mktemp -d)
trap 'rm -rf "$STORE_DIR" "$OUT_COLD" "$OUT_WARM" "$OUT_CHAOS_A" "$OUT_CHAOS_B"' EXIT
# The drill itself exits non-zero unless faults were injected *and*
# recovered from; two runs of one seeded plan must log identically.
cargo run --release -p alba-bench --bin repro -- \
    --chaos --seed 42 --out "$OUT_CHAOS_A" >/dev/null
cargo run --release -p alba-bench --bin repro -- \
    --chaos --seed 42 --chaos-plan "$OUT_CHAOS_A/chaos_plan_42.json" \
    --out "$OUT_CHAOS_B" >/dev/null
cmp "$OUT_CHAOS_A/chaos_events_42.jsonl" "$OUT_CHAOS_B/chaos_events_42.jsonl" \
    || { echo "chaos event logs diverged across an identical plan" >&2; exit 1; }
python3 - "$OUT_CHAOS_A" <<'EOF'
import json
import pathlib
import sys

out = pathlib.Path(sys.argv[1])
stats = json.loads((out / "chaos_stats_42.json").read_text())
chaos = stats["chaos"]
assert chaos is not None, "chaotic run must export chaos stats"
injected = (
    sum(chaos["injected"].values()) + chaos["store_faults_fired"] + chaos["shard_restarts"]
)
recovered = (
    chaos["quarantines_released"]
    + chaos["shard_restarts"]
    + chaos["oracle_recoveries"]
    + chaos["journal_recoveries"]
)
assert chaos["faults_started"] > 0, chaos
assert injected > 0, f"no faults injected: {chaos}"
assert recovered > 0, f"nothing recovered: {chaos}"
plan = json.loads((out / "chaos_plan_42.json").read_text())
assert plan["events"], "the saved plan must be replayable"
events = (out / "chaos_events_42.jsonl").read_text().splitlines()
kinds = {json.loads(line)["kind"] for line in events}
assert "fault_injected" in kinds, kinds
print(f"  {injected} injected, {recovered} recoveries, {len(events)} events: OK")
EOF

echo "==> store I/O bench (warm reads must be >= 10x faster than cold)"
ALBA_BENCH_QUICK=1 ALBA_STORE_IO_ASSERT=10 \
    cargo bench -p alba-bench --bench store_io

echo "==> gateway smoke (two equal-seed TCP runs byte-identical, Prometheus scrape parses)"
OUT_GW_A=$(mktemp -d)
OUT_GW_B=$(mktemp -d)
trap 'rm -rf "$STORE_DIR" "$OUT_COLD" "$OUT_WARM" "$OUT_CHAOS_A" "$OUT_CHAOS_B" "$OUT_GW_A" "$OUT_GW_B"' EXIT
# The example itself asserts that the captured wire session replays
# byte-identically offline (and that /trace/0 + /flightrec scrape
# cleanly); CI additionally pins down that two independent live TCP
# runs with equal seeds agree byte-for-byte — event log, ingest
# journal, causal trace log, and flight-recorder dump alike.
ALBA_GATEWAY_OUT="$OUT_GW_A" cargo run --release --example fleet_gateway >/dev/null
ALBA_GATEWAY_OUT="$OUT_GW_B" cargo run --release --example fleet_gateway >/dev/null
cmp "$OUT_GW_A/fleet_gateway_events.jsonl" "$OUT_GW_B/fleet_gateway_events.jsonl" \
    || { echo "gateway event logs diverged across equal-seed runs" >&2; exit 1; }
cmp "$OUT_GW_A/fleet_gateway_capture.bin" "$OUT_GW_B/fleet_gateway_capture.bin" \
    || { echo "gateway ingest journals diverged across equal-seed runs" >&2; exit 1; }
cmp "$OUT_GW_A/fleet_gateway_trace.jsonl" "$OUT_GW_B/fleet_gateway_trace.jsonl" \
    || { echo "gateway trace logs diverged across equal-seed runs" >&2; exit 1; }
cmp "$OUT_GW_A/flightrec_shutdown.jsonl" "$OUT_GW_B/flightrec_shutdown.jsonl" \
    || { echo "flight-recorder dumps diverged across equal-seed runs" >&2; exit 1; }
python3 - "$OUT_GW_A" <<'EOF'
import json
import pathlib
import sys

out = pathlib.Path(sys.argv[1])
# The scrape came over the gateway's own HTTP control plane; it must be
# well-formed text exposition with the frontier's metric families.
names = set()
for line in (out / "fleet_gateway_metrics.prom").read_text().splitlines():
    if not line.strip():
        continue
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        assert kind in ("counter", "gauge", "histogram"), line
        names.add(name)
        continue
    name, value = line.rsplit(" ", 1)
    float(value)
    assert any(name.startswith(n) for n in names), f"sample before TYPE: {line}"
for expected in (
    "net_frames_total",
    "net_samples_delivered_total",
    "ingest_accepted_total",
    "net_tenant_frames_accepted_total",
):
    assert expected in names, f"missing metric family {expected}: {sorted(names)}"
events = (out / "fleet_gateway_events.jsonl").read_text().splitlines()
assert events and all(json.loads(e)["ts"] >= 0 for e in events)
assert (out / "fleet_gateway_capture.bin").stat().st_size > 0

# The causal trace log: every hop line is JSON with the trace-id tuple,
# and the chain spans the net lane, at least one shard lane, and the
# service lane (decode -> pipeline -> stage timings joined up).
lanes = set()
hops = (out / "fleet_gateway_trace.jsonl").read_text().splitlines()
assert hops, "a traced run must record hops"
for line in hops:
    hop = json.loads(line)
    for key in ("ts", "trace", "lane", "tick", "stage"):
        assert key in hop, f"hop missing {key}: {line}"
    int(hop["trace"], 16)
    lanes.add(hop["lane"])
assert "net" in lanes and "service" in lanes, lanes
assert any(l.startswith("shard") for l in lanes), lanes
header = json.loads((out / "flightrec_shutdown.jsonl").read_text().splitlines()[0])
assert header["kind"] == "flightrec" and header["reason"] == "shutdown", header
print(f"  {len(events)} events, {len(names)} metric families, capture present,")
print(f"  {len(hops)} trace hops across {len(lanes)} lanes, shutdown dump present: OK")
EOF
if [ "$FULL" = "1" ]; then
    echo "==> gateway chaos smoke (--full: reconnect storm, replay identity must hold)"
    # The example itself asserts the storm run's capture replays
    # byte-identically; CI pins down that the storm is deterministic
    # too — two equal-seed storm runs agree byte-for-byte. (The storm
    # capture legitimately differs from the clean one: reconnect pauses
    # shift sample *arrival* ticks, which the journal records.)
    OUT_GW_S1=$(mktemp -d)
    OUT_GW_S2=$(mktemp -d)
    ALBA_GATEWAY_OUT="$OUT_GW_S1" ALBA_GATEWAY_CHAOS=storm \
        cargo run --release --example fleet_gateway >/dev/null
    ALBA_GATEWAY_OUT="$OUT_GW_S2" ALBA_GATEWAY_CHAOS=storm \
        cargo run --release --example fleet_gateway >/dev/null
    cmp "$OUT_GW_S1/fleet_gateway_events.jsonl" "$OUT_GW_S2/fleet_gateway_events.jsonl" \
        || { echo "storm event logs diverged across equal-seed runs" >&2; exit 1; }
    cmp "$OUT_GW_S1/fleet_gateway_capture.bin" "$OUT_GW_S2/fleet_gateway_capture.bin" \
        || { echo "storm ingest journals diverged across equal-seed runs" >&2; exit 1; }
    cmp "$OUT_GW_S1/fleet_gateway_trace.jsonl" "$OUT_GW_S2/fleet_gateway_trace.jsonl" \
        || { echo "storm trace logs diverged across equal-seed runs" >&2; exit 1; }
    cmp "$OUT_GW_S1/flightrec_shutdown.jsonl" "$OUT_GW_S2/flightrec_shutdown.jsonl" \
        || { echo "storm flight-recorder dumps diverged across equal-seed runs" >&2; exit 1; }
    rm -rf "$OUT_GW_S1" "$OUT_GW_S2"
    echo "  equal-seed storm runs byte-identical (events + capture + trace + flightrec): OK"

    echo "==> chaos flight recorder (--full: fault firings dump the rings)"
    # chaos_drill writes its artifacts into results/ directly; every
    # fault kind that fired must have dumped a bounded flight record.
    rm -f results/flightrec_fault_*.jsonl
    cargo run --release --example chaos_drill >/dev/null
    ls results/flightrec_fault_*.jsonl >/dev/null 2>&1 \
        || { echo "chaos drill produced no flight-recorder fault dumps" >&2; exit 1; }
    python3 - <<'EOF'
import json
import pathlib

dumps = sorted(pathlib.Path("results").glob("flightrec_fault_*.jsonl"))
assert dumps, "fault dumps must exist"
for dump in dumps:
    lines = dump.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "flightrec", f"{dump}: {lines[0]}"
    assert header["reason"].startswith("fault_"), f"{dump}: {lines[0]}"
    assert header["events"] == len(lines) - 1, f"{dump}: ring body must match header"
print(f"  {len(dumps)} fault-kind flight-recorder dumps, headers consistent: OK")
EOF
fi

echo "==> net throughput bench (BENCH_net.json exists and parses)"
ALBA_BENCH_QUICK=1 cargo bench -p alba-bench --bench net_throughput
python3 - <<'EOF'
import json

bench = json.load(open("results/BENCH_net.json"))
assert bench["bench"] == "net_throughput"
for key in (
    "codec_decode_frames_per_sec_per_core",
    "gateway_frames_per_sec_per_core",
    "ingest_to_diagnosis_latency_p99_ticks",
):
    assert isinstance(bench[key], (int, float)) and bench[key] >= 0, key
assert bench["gateway_frames_accepted"] > 0
print(f"  codec {bench['codec_decode_frames_per_sec_per_core']:.0f} f/s, "
      f"gateway {bench['gateway_frames_per_sec_per_core']:.0f} f/s, "
      f"p99 {bench['ingest_to_diagnosis_latency_p99_ticks']} ticks: OK")
EOF

echo "==> trace overhead bench (enabled tracing must stay under 10%)"
# The bound is a percentage of the *untraced* pipeline, so it tightens
# every time the pipeline itself speeds up: the selective-extraction
# work cut the base path ~3x, which re-based a ~5 us/window tracing
# cost from ~2% to ~5-6%. 10% keeps a real gate (a 2x tracing
# regression still fails) without flaking on the shrunken denominator;
# absolute regressions are separately caught by bench_gate.sh on
# ns_per_window_traced.
ALBA_BENCH_QUICK=1 ALBA_TRACE_ASSERT=10 cargo bench -p alba-bench --bench trace_overhead
python3 - <<'EOF'
import json

bench = json.load(open("results/BENCH_trace.json"))
assert bench["bench"] == "trace_overhead"
assert bench["trace_hops_recorded"] > 0
assert bench["trace_overhead_pct"] <= 10.0, bench
print(f"  {bench['trace_overhead_pct']:.2f}% overhead, "
      f"{bench['trace_hops_per_sec_per_core']:.0f} hops/s/core: OK")
EOF

echo "==> grid smoke (resume from a partial store byte-identical, memo hits asserted)"
GRID_STORE=$(mktemp -d)
OUT_GRID_COLD=$(mktemp -d)
OUT_GRID_PART=$(mktemp -d)
OUT_GRID_RES=$(mktemp -d)
trap 'rm -rf "$STORE_DIR" "$OUT_COLD" "$OUT_WARM" "$OUT_CHAOS_A" "$OUT_CHAOS_B" "$OUT_GW_A" "$OUT_GW_B" "$GRID_STORE" "$OUT_GRID_COLD" "$OUT_GRID_PART" "$OUT_GRID_RES"' EXIT
# Reference: the full CI spec, storeless — every cell computed fresh.
cargo run --release -p alba-bench --bin repro -- \
    --grid specs/grid_ci.json --grid-workers 2 --out "$OUT_GRID_COLD" >/dev/null
# Prime the store with the partial spec (the first seed only — what a
# sweep killed mid-flight leaves behind), then resume the full spec.
cargo run --release -p alba-bench --bin repro -- \
    --grid specs/grid_ci_partial.json --grid-workers 2 \
    --store "$GRID_STORE" --out "$OUT_GRID_PART" >/dev/null
cargo run --release -p alba-bench --bin repro -- \
    --grid specs/grid_ci.json --grid-workers 2 \
    --store "$GRID_STORE" --out "$OUT_GRID_RES" >/dev/null
cmp "$OUT_GRID_COLD/grid_ci.json" "$OUT_GRID_RES/grid_ci.json" \
    || { echo "resumed grid report diverged from the storeless run" >&2; exit 1; }
cmp "$OUT_GRID_COLD/grid_ci_leaderboard.md" "$OUT_GRID_RES/grid_ci_leaderboard.md" \
    || { echo "resumed grid leaderboard diverged from the storeless run" >&2; exit 1; }
python3 - "$OUT_GRID_PART" "$OUT_GRID_RES" <<'EOF'
import json
import pathlib
import sys

part, res = (pathlib.Path(p) for p in sys.argv[1:3])

def cell_row(out):
    stats = json.loads((out / "store_stats_grid_ci.json").read_text())
    (row,) = [k for k in stats["kinds"] if k["kind"] == "cell"]
    return row

primed = cell_row(part)
assert primed["cache_misses"] == 3 and primed["cache_hits"] == 0, primed
resumed = cell_row(res)
assert resumed["cache_hits"] == 3, f"resume must memo-hit the primed cells: {resumed}"
assert resumed["cache_misses"] == 3, f"resume must compute only the new seed: {resumed}"
assert resumed["corrupt_entries"] == 0, resumed
print(f"  6 cells: 3 primed, resume hit {resumed['cache_hits']} + computed "
      f"{resumed['cache_misses']}, report byte-identical to storeless run: OK")
EOF

echo "==> grid throughput bench (BENCH_grid.json exists, memo replay hits 100%)"
ALBA_BENCH_QUICK=1 cargo bench -p alba-bench --bench grid_throughput
python3 - <<'EOF'
import json

bench = json.load(open("results/BENCH_grid.json"))
assert bench["bench"] == "grid_throughput"
assert bench["cells"] > 0
assert bench["memo_hit_rate_pct"] == 100.0, bench
for key in ("cell_throughput_per_min_per_core", "warm_replay_ns_per_cell"):
    assert isinstance(bench[key], (int, float)) and bench[key] > 0, key
print(f"  {bench['cell_throughput_per_min_per_core']:.0f} cells/min/core cold, "
      f"{bench['warm_replay_ns_per_cell']:.0f} ns/cell warm replay, "
      f"resume {bench['resume_overhead_pct']:+.2f}% over cold rate: OK")
EOF

echo "==> parallel smoke (fleet_monitor at 1 vs 4 workers: artifacts byte-identical)"
OUT_PAR_1=$(mktemp -d)
OUT_PAR_4=$(mktemp -d)
trap 'rm -rf "$STORE_DIR" "$OUT_COLD" "$OUT_WARM" "$OUT_CHAOS_A" "$OUT_CHAOS_B" "$OUT_GW_A" "$OUT_GW_B" "$GRID_STORE" "$OUT_GRID_COLD" "$OUT_GRID_PART" "$OUT_GRID_RES" "$OUT_PAR_1" "$OUT_PAR_4"' EXIT
ALBA_WORKERS=1 ALBA_MONITOR_OUT="$OUT_PAR_1" \
    cargo run --release --example fleet_monitor >/dev/null
ALBA_WORKERS=4 ALBA_MONITOR_OUT="$OUT_PAR_4" \
    cargo run --release --example fleet_monitor >/dev/null
cmp "$OUT_PAR_1/fleet_monitor_events.jsonl" "$OUT_PAR_4/fleet_monitor_events.jsonl" \
    || { echo "event logs diverged between 1-worker and 4-worker runs" >&2; exit 1; }
# The per-worker pool gauges (par_worker_*) legitimately depend on the
# worker count; every other exposition line must agree exactly.
diff <(grep -v 'par_worker' "$OUT_PAR_1/fleet_monitor_metrics.prom") \
     <(grep -v 'par_worker' "$OUT_PAR_4/fleet_monitor_metrics.prom") \
    || { echo "metric expositions diverged beyond par_worker_* across worker counts" >&2; exit 1; }
echo "  1-worker and 4-worker artifacts identical (modulo par_worker_* gauges): OK"

echo "==> parallel throughput bench (zero-copy extract must be >= 2x materialized)"
ALBA_BENCH_QUICK=1 cargo bench -p alba-bench --bench parallel_throughput
python3 - <<'EOF'
import json

bench = json.load(open("results/BENCH_parallel.json"))
assert bench["bench"] == "parallel_throughput"
for key in (
    "extract_rows_per_sec_per_core_materialized",
    "extract_rows_per_sec_per_core_zero_copy",
    "serve_node_metrics_per_sec_per_core_w1",
    "serve_node_metrics_per_sec_per_core_w4",
    "merge_barrier_p99_ns",
):
    assert isinstance(bench[key], (int, float)) and bench[key] > 0, key
speedup = bench["extract_zero_copy_speedup"]
assert speedup >= 2.0, (
    f"zero-copy selective extraction must be >= 2x the materialized path: {speedup}"
)
print(f"  extract {bench['extract_rows_per_sec_per_core_zero_copy']:.0f} rows/s/core "
      f"({speedup:.2f}x materialized), "
      f"serve {bench['serve_node_metrics_per_sec_per_core_w4']:.0f} node-metrics/s/core @4w, "
      f"barrier p99 {bench['merge_barrier_p99_ns']:.0f} ns: OK")
EOF

echo "==> lint throughput bench (BENCH_lint.json exists, tree analyzes clean)"
ALBA_BENCH_QUICK=1 cargo bench -p alba-bench --bench lint_throughput
python3 - <<'EOF'
import json

bench = json.load(open("results/BENCH_lint.json"))
assert bench["bench"] == "lint_throughput"
assert bench["fns_analyzed"] > 300 and bench["call_edges"] > 300, bench
for key in ("token_files_per_sec", "lint_files_per_sec", "lint_lines_per_sec",
            "interproc_ns_per_fn"):
    assert isinstance(bench[key], (int, float)) and bench[key] > 0, key
print(f"  {bench['lint_files_per_sec']:.0f} files/s full pipeline over "
      f"{bench['fns_analyzed']} fns / {bench['call_edges']} call edges: OK")
EOF

echo "==> bench gate (no >20% regression vs the committed trajectory)"
scripts/bench_gate.sh

echo "==> perf table (README rows agree with the bench_gate renderer)"
python3 - <<'EOF'
import pathlib
import re
import subprocess
import sys

table = subprocess.run(
    [sys.executable, "scripts/perf_table.py"], capture_output=True, text=True, check=True
).stdout

def rows(text):
    out = []
    for line in text.splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) != 3 or cells[0] == "bench" or set(cells[0]) <= {"-"}:
            continue
        out.append((cells[0], cells[1]))
    return out

want = rows(table)
readme = pathlib.Path("README.md").read_text()
m = re.search(r"<!-- PERF_TABLE_START -->\n(.*?)<!-- PERF_TABLE_END -->", readme, re.S)
assert m, "README.md must carry the PERF_TABLE markers"
have = rows(m.group(1))
# Values drift with every quick bench rerun; the committed README must
# track the *shape* — every bench and metric the renderer emits.
assert want == have, (
    "README perf table out of date (regenerate with scripts/fill_experiments.py "
    f"or bench_gate.sh --table):\n  renderer: {want}\n  README:   {have}"
)
print(f"  {len(want)} metric rows, README in sync with the renderer: OK")
EOF

echo "CI green."
