#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: scripts/ci.sh
# Runs everything the tree must pass before a merge; exits non-zero on
# the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "CI green."
