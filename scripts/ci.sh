#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: scripts/ci.sh
# Runs everything the tree must pass before a merge; exits non-zero on
# the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> observability smoke (fleet_monitor example + artifact checks)"
cargo run --release --example fleet_monitor >/dev/null
python3 - <<'EOF'
import json

# Every event line must be a JSON object with ts and kind.
kinds = set()
with open("results/fleet_monitor_events.jsonl") as f:
    lines = [line.rstrip("\n") for line in f]
assert lines, "the observed example must emit events"
for line in lines:
    ev = json.loads(line)
    assert isinstance(ev["ts"], int), line
    kinds.add(ev["kind"])
assert "label_request" in kinds and "model_swap" in kinds, kinds

# The exposition dump must parse: TYPE headers, then name{labels} value.
with open("results/fleet_monitor_metrics.prom") as f:
    metrics = [line.rstrip("\n") for line in f if line.strip()]
names = set()
for line in metrics:
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        assert kind in ("counter", "gauge", "histogram"), line
        names.add(name)
        continue
    name, value = line.rsplit(" ", 1)
    float(value)
    assert any(name.startswith(n) for n in names), f"sample before TYPE: {line}"
for expected in ("stage_ns", "shard_busy_ns", "ingest_accepted_total"):
    assert expected in names, f"missing metric family {expected}"
print(f"  {len(lines)} events, {len(names)} metric families: OK")
EOF

echo "CI green."
