#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from a `repro` run log.

Usage: python3 scripts/fill_experiments.py <repro.log>

Looks for the rendered sections of fig5/fig6/fig7/fig8, Table V and the
ablation suite in the log and splices them into EXPERIMENTS.md at the
corresponding `<!-- ..._RESULTS -->` markers. Idempotent: run once per
placeholder (already-filled markers are left untouched).

Also refreshes the "Perf trajectory" table in README.md between the
`PERF_TABLE_START`/`PERF_TABLE_END` markers from the current
`results/BENCH_*.json` artifacts, through the same renderer
(`scripts/perf_table.py`) that `bench_gate.sh --table` prints — so the
README can never disagree with the gate's view of the trajectory.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import perf_table  # noqa: E402  (sibling module, needs the path tweak)


def block(log: str, start: str, end: str) -> str | None:
    i = log.find(start)
    if i < 0:
        return None
    j = log.find(end, i)
    if j < 0:
        return None
    return log[i:j].rstrip()


def fill(exp: str, marker: str, content: str | None, preamble: str) -> str:
    if content is None or marker not in exp:
        return exp
    return exp.replace(marker, f"{preamble}\n\n```\n{content}\n```")


def refresh_perf_table() -> None:
    start, end = "<!-- PERF_TABLE_START -->", "<!-- PERF_TABLE_END -->"
    readme = open("README.md").read()
    if start not in readme or end not in readme:
        print("README.md has no PERF_TABLE markers; perf table left alone")
        return
    head, _, rest = readme.partition(start)
    _, _, tail = rest.partition(end)
    open("README.md", "w").write(f"{head}{start}\n{perf_table.render()}{end}{tail}")
    print("README.md perf trajectory table refreshed")


def main() -> None:
    log = open(sys.argv[1]).read()
    exp = open("EXPERIMENTS.md").read()

    exp = fill(
        exp,
        "<!-- FIG5_RESULTS -->",
        block(log, "== Eclipse / MVTS", "[fig5 in"),
        "Measured:",
    )
    exp = fill(
        exp,
        "<!-- TABLE5_RESULTS -->",
        block(log, "== Table V-style summary ==", "[table5 in"),
        "Measured:",
    )
    exp = fill(
        exp,
        "<!-- FIG6_RESULTS -->",
        block(log, "== Fig.6-style", "[fig6 in"),
        "Measured:",
    )
    exp = fill(
        exp,
        "<!-- FIG7_RESULTS -->",
        block(log, "== Fig.7-style", "[fig7 in"),
        "Measured:",
    )
    exp = fill(
        exp,
        "<!-- FIG8_RESULTS -->",
        block(log, "== Fig.8-style", "[fig8 in"),
        "Measured:",
    )
    exp = fill(
        exp,
        "<!-- ABLATION_RESULTS -->",
        block(log, "== Ablation: query strategy", "[ablations in"),
        "Measured:",
    )

    # Table V quick cells.
    m = re.search(r"\| Volta\s+\|[^\n]+", log)
    e = re.search(r"\| Eclipse\s+\|[^\n]+", log)

    def cells(row: str) -> list[str]:
        return [c.strip() for c in row.strip("|").split("|")]

    if m and e:
        v, ec = cells(m.group(0)), cells(e.group(0))
        # columns: dataset, extractor, strategy, initial, start f1,
        # 0.85, 0.90, 0.95, pool, cv
        for marker, value in [
            ("<!--V_STRAT-->", v[2]),
            ("<!--V_SEED-->", v[3]),
            ("<!--V_START-->", v[4]),
            ("<!--V_T85-->", v[5]),
            ("<!--V_POOL-->", v[8]),
            ("<!--V_CV-->", v[9]),
            ("<!--E_STRAT-->", ec[2]),
            ("<!--E_SEED-->", ec[3]),
            ("<!--E_START-->", ec[4]),
            ("<!--E_T85-->", ec[5]),
            ("<!--E_POOL-->", ec[8]),
            ("<!--E_CV-->", ec[9]),
        ]:
            exp = exp.replace(marker, value)

    open("EXPERIMENTS.md", "w").write(exp)
    remaining = exp.count("<!--")
    print(f"filled; {remaining} markers remaining")
    refresh_perf_table()


if __name__ == "__main__":
    main()
