//! Bounded per-node ingest queues with backpressure accounting.
//!
//! The aggregator side of a production deployment pushes samples at 1 Hz
//! regardless of how fast diagnosis keeps up, so each node gets a
//! *bounded* FIFO between the replay source and its monitor. When a
//! queue is full the **newest** sample is dropped (a live feed cannot be
//! paused) and the loss is counted — the service stats expose per-fleet
//! drop totals and peak queue depth so saturation is observable instead
//! of silent.

use crate::replay::TelemetrySample;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One node's bounded sample FIFO.
#[derive(Clone, Debug)]
pub struct SampleQueue {
    buf: VecDeque<TelemetrySample>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
    peak_depth: usize,
}

impl SampleQueue {
    /// An empty queue holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        Self { buf: VecDeque::new(), capacity, pushed: 0, dropped: 0, peak_depth: 0 }
    }

    /// Enqueues one sample; returns `false` (and counts a drop) when the
    /// queue is full.
    pub fn push(&mut self, sample: TelemetrySample) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.buf.push_back(sample);
        self.pushed += 1;
        self.peak_depth = self.peak_depth.max(self.buf.len());
        true
    }

    /// Removes and returns every queued sample, oldest first.
    pub fn drain(&mut self) -> Vec<TelemetrySample> {
        self.buf.drain(..).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Aggregate ingest counters, serialisable into the service stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Samples accepted across all queues.
    pub pushed: u64,
    /// Samples dropped on full queues (backpressure losses).
    pub dropped: u64,
    /// Deepest any single queue ever got.
    pub peak_depth: usize,
}

/// The fleet's ingest layer: one bounded queue per node.
#[derive(Clone, Debug)]
pub struct IngestLayer {
    queues: Vec<SampleQueue>,
}

impl IngestLayer {
    /// One queue of `capacity` samples per fleet node.
    pub fn new(n_nodes: usize, capacity: usize) -> Self {
        Self { queues: (0..n_nodes).map(|_| SampleQueue::new(capacity)).collect() }
    }

    /// Routes one sample to its node's queue; returns `false` on drop.
    pub fn offer(&mut self, sample: TelemetrySample) -> bool {
        self.queues[sample.node].push(sample)
    }

    /// Drains one node's queue (oldest first).
    pub fn drain_node(&mut self, node: usize) -> Vec<TelemetrySample> {
        self.queues[node].drain()
    }

    /// Current depth of one node's queue.
    pub fn depth(&self, node: usize) -> usize {
        self.queues[node].len()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(SampleQueue::is_empty)
    }

    /// Aggregated counters over all queues.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            pushed: self.queues.iter().map(|q| q.pushed).sum(),
            dropped: self.queues.iter().map(|q| q.dropped).sum(),
            peak_depth: self.queues.iter().map(|q| q.peak_depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: usize, at: usize) -> TelemetrySample {
        TelemetrySample { node, at, values: vec![at as f64] }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = SampleQueue::new(8);
        for t in 0..5 {
            assert!(q.push(sample(0, t)));
        }
        let drained = q.drain();
        assert_eq!(drained.iter().map(|s| s.at).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let mut q = SampleQueue::new(3);
        for t in 0..5 {
            q.push(sample(0, t));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        // The oldest samples survive; the late arrivals were shed.
        assert_eq!(q.drain().iter().map(|s| s.at).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn layer_routes_by_node_and_aggregates_stats() {
        let mut layer = IngestLayer::new(3, 2);
        assert!(layer.offer(sample(0, 0)));
        assert!(layer.offer(sample(2, 0)));
        assert!(layer.offer(sample(2, 1)));
        assert!(!layer.offer(sample(2, 2)), "third sample overflows capacity 2");
        assert_eq!(layer.depth(0), 1);
        assert_eq!(layer.depth(1), 0);
        assert_eq!(layer.depth(2), 2);
        let st = layer.stats();
        assert_eq!(st.pushed, 3);
        assert_eq!(st.dropped, 1);
        assert_eq!(st.peak_depth, 2);
        assert_eq!(layer.drain_node(2).len(), 2);
        assert!(!layer.is_empty());
        layer.drain_node(0);
        assert!(layer.is_empty());
    }
}
