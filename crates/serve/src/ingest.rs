//! Bounded per-node ingest queues with backpressure accounting.
//!
//! The aggregator side of a production deployment pushes samples at 1 Hz
//! regardless of how fast diagnosis keeps up, so each node gets a
//! *bounded* FIFO between the replay source and its monitor. When a
//! queue is full the **newest** sample is dropped (a live feed cannot be
//! paused) and the loss is counted — the service stats expose per-fleet
//! drop totals and peak queue depth so saturation is observable instead
//! of silent.
//!
//! Drop accounting distinguishes *why* a sample was lost: a queue-full
//! drop is backpressure (the fleet outran diagnosis), a malformed drop
//! is corruption (the reading vector disagrees with the metric catalog),
//! and an unroutable drop is misaddressing. The three surface as
//! separate [`ErrorStats`](crate::ErrorStats) counters, because the
//! operator responses differ: add capacity, fix the feed, fix the
//! routing.

use crate::replay::TelemetrySample;
use alba_obs::{Counter, Obs, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One node's bounded sample FIFO.
#[derive(Clone, Debug)]
pub struct SampleQueue {
    buf: VecDeque<TelemetrySample>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
    peak_depth: usize,
}

impl SampleQueue {
    /// An empty queue holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            dropped: 0,
            peak_depth: 0,
        }
    }

    /// Enqueues one sample; returns `false` (and counts a drop) when the
    /// queue is full.
    pub fn push(&mut self, sample: TelemetrySample) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.buf.push_back(sample);
        self.pushed += 1;
        self.peak_depth = self.peak_depth.max(self.buf.len());
        true
    }

    /// Removes and returns every queued sample, oldest first.
    pub fn drain(&mut self) -> Vec<TelemetrySample> {
        self.buf.drain(..).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples dropped because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Aggregate ingest counters, serialisable into the service stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Samples accepted across all queues.
    pub pushed: u64,
    /// Samples dropped on full queues (backpressure losses).
    pub dropped: u64,
    /// Samples addressed to a node outside the fleet — a corrupt or
    /// misconfigured feed must be counted, never an index panic.
    pub unroutable: u64,
    /// Samples rejected because their reading vector's width disagreed
    /// with the metric catalog — corruption, *not* backpressure.
    pub malformed: u64,
    /// Deepest any single queue ever got.
    pub peak_depth: usize,
}

/// The fleet's ingest layer: one bounded queue per node.
#[derive(Clone, Debug)]
pub struct IngestLayer {
    queues: Vec<SampleQueue>,
    /// Node ids of each shard, in the service's (seeded) assignment
    /// order — [`IngestLayer::drain_shard`] drains them in exactly this
    /// order, so a shard's tick batch is identical to draining its
    /// nodes one by one.
    shards: Vec<Vec<usize>>,
    unroutable: u64,
    malformed: u64,
    /// Required reading-vector width (`None` disables the check).
    expected_width: Option<usize>,
    obs: Obs,
    accepted_c: Counter,
    dropped_c: Counter,
}

impl IngestLayer {
    /// One queue of `capacity` samples per fleet node, unobserved.
    pub fn new(n_nodes: usize, capacity: usize) -> Self {
        Self::with_obs(n_nodes, capacity, Obs::disabled())
    }

    /// One queue per node, with drops counted in the obs registry
    /// (`ingest_dropped_total`) and emitted as `sample_drop` events.
    pub fn with_obs(n_nodes: usize, capacity: usize, obs: Obs) -> Self {
        Self {
            queues: (0..n_nodes).map(|_| SampleQueue::new(capacity)).collect(),
            shards: Vec::new(),
            unroutable: 0,
            malformed: 0,
            expected_width: None,
            accepted_c: obs.counter("ingest_accepted_total", &[]),
            dropped_c: obs.counter("ingest_dropped_total", &[]),
            obs,
        }
    }

    /// Enables reading-vector validation: samples whose value count is
    /// not `width` are rejected as malformed before they reach a queue.
    pub fn expect_width(mut self, width: usize) -> Self {
        self.expected_width = Some(width);
        self
    }

    /// Routes one sample to its node's queue; returns `false` on drop.
    /// Backpressure losses are structured events, not silence: a shed
    /// sample emits `sample_drop` with the node, tick and queue depth.
    /// A sample addressed outside the fleet is counted unroutable (and
    /// emits `sample_unroutable`); one whose reading vector disagrees
    /// with the catalog is counted malformed (and emits
    /// `sample_malformed`) — never an index panic, and never lumped in
    /// with queue-full backpressure.
    pub fn offer(&mut self, sample: TelemetrySample) -> bool {
        let (node, at) = (sample.node, sample.at);
        if node >= self.queues.len() {
            self.unroutable += 1;
            self.obs.counter("ingest_unroutable_total", &[]).inc();
            self.obs.event(
                "sample_unroutable",
                &[("node", Value::from(node)), ("at", Value::from(at))],
            );
            return false;
        }
        if let Some(width) = self.expected_width {
            if sample.values.len() != width {
                self.malformed += 1;
                self.obs.counter("ingest_malformed_total", &[]).inc();
                self.obs.event(
                    "sample_malformed",
                    &[
                        ("node", Value::from(node)),
                        ("at", Value::from(at)),
                        ("width", Value::from(sample.values.len())),
                        ("expected", Value::from(width)),
                    ],
                );
                return false;
            }
        }
        if self.queues[node].push(sample) {
            self.accepted_c.inc();
            return true;
        }
        self.dropped_c.inc();
        self.obs.event(
            "sample_drop",
            &[
                ("node", Value::from(node)),
                ("at", Value::from(at)),
                ("depth", Value::from(self.queues[node].len())),
            ],
        );
        false
    }

    /// Drains one node's queue (oldest first). Unknown nodes drain empty.
    pub fn drain_node(&mut self, node: usize) -> Vec<TelemetrySample> {
        self.queues.get_mut(node).map(SampleQueue::drain).unwrap_or_default()
    }

    /// Installs the node→shard partition [`IngestLayer::drain_shard`]
    /// drains by. `shards[s]` lists shard `s`'s nodes in the order their
    /// queues are concatenated into the shard's tick batch.
    pub fn assign_shards(&mut self, shards: Vec<Vec<usize>>) {
        self.shards = shards;
    }

    /// Drains every queue of one shard's nodes into a single batch, in
    /// assignment order (each queue oldest first). Unknown shards drain
    /// empty. Byte-for-byte equal to calling [`IngestLayer::drain_node`]
    /// over the shard's nodes and concatenating.
    pub fn drain_shard(&mut self, shard: usize) -> Vec<TelemetrySample> {
        let Some(nodes) = self.shards.get(shard) else { return Vec::new() };
        let mut out = Vec::new();
        for &n in nodes {
            if let Some(q) = self.queues.get_mut(n) {
                out.extend(q.drain());
            }
        }
        out
    }

    /// Current depth of one node's queue (0 for unknown nodes).
    pub fn depth(&self, node: usize) -> usize {
        self.queues.get(node).map(SampleQueue::len).unwrap_or(0)
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(SampleQueue::is_empty)
    }

    /// Aggregated counters over all queues.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            pushed: self.queues.iter().map(|q| q.pushed).sum(),
            dropped: self.queues.iter().map(|q| q.dropped).sum(),
            unroutable: self.unroutable,
            malformed: self.malformed,
            peak_depth: self.queues.iter().map(|q| q.peak_depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: usize, at: usize) -> TelemetrySample {
        TelemetrySample { node, at, values: vec![at as f64] }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = SampleQueue::new(8);
        for t in 0..5 {
            assert!(q.push(sample(0, t)));
        }
        let drained = q.drain();
        assert_eq!(drained.iter().map(|s| s.at).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let mut q = SampleQueue::new(3);
        for t in 0..5 {
            q.push(sample(0, t));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        // The oldest samples survive; the late arrivals were shed.
        assert_eq!(q.drain().iter().map(|s| s.at).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn sustained_overflow_counts_every_drop() {
        let mut q = SampleQueue::new(4);
        for t in 0..1_000 {
            q.push(sample(0, t));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.dropped(), 996);
        // Accounting is conserved: everything offered is either queued
        // (pushed) or counted as dropped.
        assert_eq!(q.pushed + q.dropped(), 1_000);
    }

    #[test]
    fn peak_depth_is_monotone_across_drain_cycles() {
        let mut layer = IngestLayer::new(1, 16);
        let mut last_peak = 0;
        for (cycle, burst) in [9, 3, 12, 1, 5].into_iter().enumerate() {
            for t in 0..burst {
                layer.offer(sample(0, cycle * 100 + t));
            }
            let peak = layer.stats().peak_depth;
            assert!(peak >= last_peak, "peak_depth may never regress");
            assert!(peak >= burst.min(16), "peak covers the current burst");
            last_peak = peak;
            layer.drain_node(0);
            assert_eq!(layer.stats().peak_depth, last_peak, "drain keeps the high-water mark");
        }
        assert_eq!(last_peak, 12, "the largest burst sets the mark");
    }

    #[test]
    fn drain_preserves_arrival_order_under_partial_overflow() {
        let mut q = SampleQueue::new(6);
        for t in [5, 1, 9, 2, 8, 3, 7, 4] {
            q.push(sample(0, t));
        }
        // Oldest six survive in arrival (not tick) order.
        assert_eq!(q.drain().iter().map(|s| s.at).collect::<Vec<_>>(), vec![5, 1, 9, 2, 8, 3]);
        assert_eq!(q.dropped(), 2);
        // The queue is reusable after a drain, order still FIFO.
        q.push(sample(0, 11));
        q.push(sample(0, 10));
        assert_eq!(q.drain().iter().map(|s| s.at).collect::<Vec<_>>(), vec![11, 10]);
    }

    #[test]
    fn drops_emit_structured_obs_events() {
        let obs = alba_obs::Obs::wall();
        let sink = std::sync::Arc::new(alba_obs::MemorySink::new());
        obs.set_sink(sink.clone());
        let mut layer = IngestLayer::with_obs(2, 2, obs.clone());
        for t in 0..4 {
            layer.offer(sample(1, t));
        }
        assert_eq!(layer.stats().dropped, 2);
        assert_eq!(obs.counter("ingest_dropped_total", &[]).get(), 2);
        assert_eq!(obs.counter("ingest_accepted_total", &[]).get(), 2);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "one event per shed sample");
        assert!(lines[0].contains(r#""kind":"sample_drop""#));
        assert!(lines[0].contains(r#""node":1"#));
        assert!(lines[0].contains(r#""at":2"#));
        assert!(lines[1].contains(r#""at":3"#));
    }

    #[test]
    fn out_of_fleet_samples_are_counted_not_panics() {
        let mut layer = IngestLayer::new(2, 4);
        assert!(!layer.offer(sample(99, 0)), "unknown node is rejected");
        assert!(!layer.offer(sample(2, 1)), "one past the end too");
        let st = layer.stats();
        assert_eq!(st.unroutable, 2);
        assert_eq!(st.pushed, 0);
        assert!(layer.drain_node(99).is_empty(), "draining unknown nodes is safe");
        assert_eq!(layer.depth(99), 0);
    }

    #[test]
    fn malformed_and_queue_full_drops_are_distinct_buckets() {
        let obs = alba_obs::Obs::wall();
        let sink = std::sync::Arc::new(alba_obs::MemorySink::new());
        obs.set_sink(sink.clone());
        let mut layer = IngestLayer::with_obs(1, 2, obs.clone()).expect_width(3);
        let wide = TelemetrySample { node: 0, at: 0, values: vec![1.0; 4] };
        let narrow = TelemetrySample { node: 0, at: 1, values: vec![1.0] };
        assert!(!layer.offer(wide), "over-wide readings are rejected");
        assert!(!layer.offer(narrow), "under-wide readings are rejected");
        for t in 0..3 {
            layer.offer(TelemetrySample { node: 0, at: 2 + t, values: vec![0.0; 3] });
        }
        let st = layer.stats();
        assert_eq!(st.malformed, 2, "corruption counted separately");
        assert_eq!(st.dropped, 1, "backpressure counted separately");
        assert_eq!(st.pushed, 2);
        assert_eq!(obs.counter("ingest_malformed_total", &[]).get(), 2);
        assert_eq!(obs.counter("ingest_dropped_total", &[]).get(), 1);
        let kinds: Vec<String> = sink
            .lines()
            .iter()
            .filter_map(|l| {
                l.split(r#""kind":""#).nth(1).map(|s| s.split('"').next().unwrap_or("").to_string())
            })
            .collect();
        assert_eq!(kinds, vec!["sample_malformed", "sample_malformed", "sample_drop"]);
    }

    #[test]
    fn width_check_is_off_by_default() {
        let mut layer = IngestLayer::new(1, 4);
        assert!(layer.offer(TelemetrySample { node: 0, at: 0, values: vec![1.0; 7] }));
        assert!(layer.offer(TelemetrySample { node: 0, at: 1, values: Vec::new() }));
        assert_eq!(layer.stats().malformed, 0);
    }

    #[test]
    fn drain_shard_equals_per_node_drains_in_assignment_order() {
        let mut a = IngestLayer::new(4, 8);
        let mut b = IngestLayer::new(4, 8);
        a.assign_shards(vec![vec![2, 0], vec![3, 1]]);
        for t in 0..5 {
            for n in 0..4 {
                a.offer(sample(n, t));
                b.offer(sample(n, t));
            }
        }
        let got: Vec<(usize, usize)> = a.drain_shard(0).iter().map(|s| (s.node, s.at)).collect();
        let mut want = Vec::new();
        for n in [2, 0] {
            want.extend(b.drain_node(n).iter().map(|s| (s.node, s.at)));
        }
        assert_eq!(got, want);
        assert!(a.drain_shard(0).is_empty(), "second drain is empty");
        assert!(a.drain_shard(9).is_empty(), "unknown shards drain empty");
        assert_eq!(a.drain_shard(1).len(), 10);
    }

    #[test]
    fn layer_routes_by_node_and_aggregates_stats() {
        let mut layer = IngestLayer::new(3, 2);
        assert!(layer.offer(sample(0, 0)));
        assert!(layer.offer(sample(2, 0)));
        assert!(layer.offer(sample(2, 1)));
        assert!(!layer.offer(sample(2, 2)), "third sample overflows capacity 2");
        assert_eq!(layer.depth(0), 1);
        assert_eq!(layer.depth(1), 0);
        assert_eq!(layer.depth(2), 2);
        let st = layer.stats();
        assert_eq!(st.pushed, 3);
        assert_eq!(st.dropped, 1);
        assert_eq!(st.peak_depth, 2);
        assert_eq!(layer.drain_node(2).len(), 2);
        assert!(!layer.is_empty());
        layer.drain_node(0);
        assert!(layer.is_empty());
    }
}
