//! The active-learning feedback loop: uncertainty-gated label requests,
//! a bounded request queue, oracle labelling and model retraining.
//!
//! The paper's framework keeps an analyst in the loop — ALBADross asks
//! for labels only where the deployed model is unsure (Sec. III-C). The
//! service reproduces that online: windows whose least-confidence
//! uncertainty clears a threshold become [`LabelRequest`]s in a bounded
//! queue (an analyst has finite attention; overflow is counted, not
//! buffered). Serviced requests are labelled by the replay oracle
//! (ground truth), folded into the training set, and a fresh forest is
//! fitted and hot-swapped into every shard.

use crate::shard::WindowOutcome;
use alba_data::{Dataset, Matrix};
use alba_ml::Diagnosis;
use alba_ml::{Classifier, DiagnosisModel, FittedModel, ForestParams, RandomForest};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// One pending "please label this window" request.
#[derive(Clone, Debug)]
pub struct LabelRequest {
    /// Fleet node the window came from.
    pub node: usize,
    /// Tick of the window's last sample.
    pub at: usize,
    /// What the model thought (kept for drilldown/auditing).
    pub predicted: Diagnosis,
    /// The uncertainty that triggered the request.
    pub uncertainty: f64,
    /// Scaled model-input row — becomes a training sample once labelled.
    pub row: Vec<f64>,
}

impl LabelRequest {
    /// Builds a request from a gated window outcome.
    pub fn from_window(w: &WindowOutcome) -> Self {
        Self {
            node: w.node,
            at: w.at,
            predicted: w.diagnosis.clone(),
            uncertainty: w.uncertainty,
            row: w.row.clone(),
        }
    }
}

/// Feedback-loop counters, serialisable into the service stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FeedbackStats {
    /// Requests enqueued.
    pub requested: u64,
    /// Requests shed on a full queue.
    pub dropped: u64,
    /// Requests labelled by the oracle and folded into training.
    pub serviced: u64,
    /// Retrain rounds completed.
    pub retrains: u64,
}

/// Bounded FIFO of pending label requests.
#[derive(Clone, Debug)]
pub struct LabelQueue {
    buf: VecDeque<LabelRequest>,
    capacity: usize,
    stats: FeedbackStats,
}

impl LabelQueue {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "label queue capacity must be positive");
        Self { buf: VecDeque::new(), capacity, stats: FeedbackStats::default() }
    }

    /// Enqueues a request; returns `false` (and counts a drop) when full.
    pub fn offer(&mut self, req: LabelRequest) -> bool {
        if self.buf.len() >= self.capacity {
            self.stats.dropped += 1;
            return false;
        }
        self.stats.requested += 1;
        self.buf.push_back(req);
        true
    }

    /// Dequeues up to `n` requests, oldest first, counting them serviced.
    pub fn take(&mut self, n: usize) -> Vec<LabelRequest> {
        let n = n.min(self.buf.len());
        let out: Vec<LabelRequest> = self.buf.drain(..n).collect();
        self.stats.serviced += out.len() as u64;
        out
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Read-only view of the pending requests, oldest first — the
    /// control plane's "what does the analyst owe us" query.
    pub fn pending(&self) -> impl Iterator<Item = &LabelRequest> + '_ {
        self.buf.iter()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The queue's counters (retrains are tallied by the caller).
    pub fn stats(&self) -> FeedbackStats {
        self.stats
    }

    /// Counts one completed retrain round.
    pub fn record_retrain(&mut self) {
        self.stats.retrains += 1;
    }
}

/// Accumulates the labelled training set and refits the deployed model.
#[derive(Clone, Debug)]
pub struct Retrainer {
    rows: Vec<Vec<f64>>,
    y: Vec<usize>,
    class_names: Vec<String>,
    params: ForestParams,
    rounds: u64,
}

impl Retrainer {
    /// Seeds the retrainer with the offline training split (already
    /// projected and scaled — the same space the shards emit rows in).
    pub fn new(train: &Dataset, params: ForestParams) -> Self {
        Self {
            rows: train.x.rows_iter().map(<[f64]>::to_vec).collect(),
            y: train.y.clone(),
            class_names: train.encoder.names().to_vec(),
            params,
            rounds: 0,
        }
    }

    /// Class names, index-aligned with the fitted model's outputs.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Current training-set size.
    pub fn n_samples(&self) -> usize {
        self.rows.len()
    }

    /// Fits a forest on the current training set.
    pub fn fit(&self) -> Arc<DiagnosisModel> {
        let mut f = RandomForest::new(ForestParams {
            // Vary the bootstrap per round so a refit is a genuinely new
            // model, while staying deterministic in the base seed.
            seed: self.params.seed.wrapping_add(self.rounds),
            ..self.params
        });
        let x = Matrix::from_rows(&self.rows);
        f.fit(&x, &self.y, self.class_names.len());
        Arc::new(DiagnosisModel::new(FittedModel::Forest(f), self.class_names.clone()))
    }

    /// Folds oracle-labelled rows into the training set and refits.
    /// Rows with labels outside the known classes are skipped.
    pub fn fold_in(&mut self, labelled: Vec<(Vec<f64>, String)>) -> Arc<DiagnosisModel> {
        for (row, label) in labelled {
            if let Some(y) = self.class_names.iter().position(|n| *n == label) {
                self.rows.push(row);
                self.y.push(y);
            }
        }
        self.rounds += 1;
        self.fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at: usize) -> LabelRequest {
        LabelRequest {
            node: 0,
            at,
            predicted: Diagnosis { label: "healthy".into(), confidence: 0.4 },
            uncertainty: 0.6,
            row: vec![0.0, 1.0],
        }
    }

    #[test]
    fn queue_bounds_and_counts() {
        let mut q = LabelQueue::new(2);
        assert!(q.offer(req(0)));
        assert!(q.offer(req(1)));
        assert!(!q.offer(req(2)), "queue is bounded");
        let taken = q.take(5);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].at, 0, "oldest first");
        let st = q.stats();
        assert_eq!((st.requested, st.dropped, st.serviced), (2, 1, 2));
    }

    fn toy_train() -> Dataset {
        let rows = vec![vec![0.1, 0.0], vec![0.2, 0.1], vec![0.9, 1.0], vec![0.8, 0.9]];
        let y = vec![0, 0, 1, 1];
        let meta = (0..4)
            .map(|i| alba_data::SampleMeta {
                app: "BT".into(),
                input_deck: 0,
                run_id: i,
                node: 0,
                node_count: 1,
                intensity_pct: 0,
            })
            .collect();
        let encoder = alba_data::LabelEncoder::from_names(&["healthy", "memleak"]);
        Dataset::new(Matrix::from_rows(&rows), y, encoder, meta, vec!["f0".into(), "f1".into()])
    }

    #[test]
    fn fold_in_grows_training_set_and_refits() {
        let params = ForestParams { n_estimators: 7, ..ForestParams::default() };
        let mut rt = Retrainer::new(&toy_train(), params);
        assert_eq!(rt.n_samples(), 4);
        let before = rt.fit();
        let model = rt.fold_in(vec![
            (vec![0.15, 0.05], "healthy".into()),
            (vec![0.85, 0.95], "memleak".into()),
            (vec![0.5, 0.5], "not-a-class".into()),
        ]);
        assert_eq!(rt.n_samples(), 6, "unknown labels are skipped");
        let x = Matrix::from_rows(&[vec![0.1, 0.0], vec![0.9, 1.0]]);
        let d = model.diagnose(&x);
        assert_eq!(d[0].label, "healthy");
        assert_eq!(d[1].label, "memleak");
        // The refreshed model is a distinct artifact.
        assert!(!Arc::ptr_eq(&before, &model));
    }
}
