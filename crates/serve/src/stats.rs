//! Aggregated service statistics, serialisable to JSON for dashboards.
//!
//! Distribution summaries (busy time, queueing latency) are derived
//! from the shards' [`Histogram`]s at snapshot time, so the export
//! carries tail percentiles — p50/p90/p95/p99/max — not just means.
//! Export is fallible by signature ([`ServiceStats::to_json`] returns
//! `Result`): a stats dump must never panic the service it describes.

use crate::chaos::ChaosStats;
use crate::feedback::FeedbackStats;
use crate::frontier::TenantStats;
use crate::ingest::IngestStats;
use crate::shard::ShardStats;
use alba_obs::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Five-number summary of a latency histogram (units are whatever was
/// recorded: nanoseconds for busy time, ticks for queueing delay).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Values recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl LatencySummary {
    /// Summarises a histogram snapshot.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Self {
            count: s.count,
            mean: s.mean(),
            p50: s.quantile(0.50).unwrap_or(0),
            p90: s.quantile(0.90).unwrap_or(0),
            p95: s.quantile(0.95).unwrap_or(0),
            p99: s.quantile(0.99).unwrap_or(0),
            max: s.max,
        }
    }

    /// Summarises a live histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self::from_snapshot(&h.snapshot())
    }
}

/// One shard's counters plus derived rates, as exported.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub id: usize,
    /// Nodes assigned to the shard.
    pub nodes: usize,
    /// Raw counters.
    pub counters: ShardStats,
    /// Total busy time in milliseconds (rounded).
    pub busy_ms: u64,
    /// Windows diagnosed per busy second.
    pub windows_per_busy_s: f64,
    /// Busy time per [`process`](crate::Shard::process) call, ns.
    pub busy: LatencySummary,
    /// Queueing delay between sample emission and diagnosis, ticks.
    pub latency: LatencySummary,
}

impl ShardSnapshot {
    /// Derives the exported snapshot from the shard's raw counters and
    /// timing histograms.
    pub fn new(
        id: usize,
        nodes: usize,
        c: ShardStats,
        busy: &Histogram,
        latency: &Histogram,
    ) -> Self {
        let busy_s = busy.sum() as f64 / 1e9;
        Self {
            id,
            nodes,
            counters: c,
            busy_ms: busy.sum() / 1_000_000,
            windows_per_busy_s: if busy_s > 0.0 { c.windows as f64 / busy_s } else { 0.0 },
            busy: LatencySummary::from_histogram(busy),
            latency: LatencySummary::from_histogram(latency),
        }
    }
}

/// Typed error counters: every fallible path the service survives is
/// counted here instead of panicking or silently swallowing the fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Samples addressed outside the fleet (ingest routing guard).
    pub unroutable_samples: u64,
    /// Samples shed on full ingest queues — *backpressure*: the fleet
    /// outran diagnosis. Distinct from the malformed counters, which are
    /// corruption; conflating the two hides whether the fix is capacity
    /// or feed integrity.
    pub queue_full_drops: u64,
    /// Samples the ingest layer rejected because their reading vector's
    /// width disagreed with the metric catalog — corruption at the
    /// boundary, before any queue was consulted.
    pub malformed_ingest_drops: u64,
    /// Samples whose readings disagreed with the metric catalog at the
    /// shard (defence in depth behind the ingest-layer width check).
    pub malformed_samples: u64,
    /// Label requests whose node had no oracle truth entry.
    pub oracle_misses: u64,
    /// Journal tears healed by reopen-and-retry.
    pub journal_reopens: u64,
    /// Journal appends abandoned after the retry budget (labels lost to
    /// durable storage; the in-memory round still completes).
    pub journal_failures: u64,
}

impl ErrorStats {
    /// Sum of every error counter.
    pub fn total(&self) -> u64 {
        self.unroutable_samples
            + self.queue_full_drops
            + self.malformed_ingest_drops
            + self.malformed_samples
            + self.oracle_misses
            + self.journal_reopens
            + self.journal_failures
    }
}

/// Whole-service statistics after (or during) a run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Service ticks executed.
    pub ticks: usize,
    /// Samples emitted by the replay source.
    pub samples_emitted: u64,
    /// Ingest-layer counters (accepted / dropped / peak depth).
    pub ingest: IngestStats,
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Windows diagnosed fleet-wide.
    pub windows: u64,
    /// Fleet-wide queueing-delay summary (per-shard histograms merged).
    pub latency: LatencySummary,
    /// Alarms confirmed fleet-wide.
    pub alarms: u64,
    /// Confirmed alarms per diagnosed label.
    pub alarms_by_label: BTreeMap<String, u64>,
    /// Feedback-loop counters.
    pub feedback: FeedbackStats,
    /// Typed error counters (survived faults, not crashes).
    pub errors: ErrorStats,
    /// Chaos injection/recovery counters (present iff the run was
    /// driven by a fault plan).
    pub chaos: Option<ChaosStats>,
    /// Per-tenant network-frontier accounting (populated iff the run was
    /// driven through a [`NetFrontier`](crate::NetFrontier); empty for
    /// in-process replay). Sorted by tenant name by the frontier.
    pub tenants: Vec<TenantStats>,
    /// Model hot-swaps performed (ticks at which they happened).
    pub swap_ticks: Vec<usize>,
    /// Wall-clock run time in milliseconds.
    pub wall_ms: u64,
    /// Windows diagnosed per wall-clock second.
    pub windows_per_s: f64,
}

impl ServiceStats {
    /// Compact JSON export.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Pretty-printed JSON export.
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_json() {
        let mut busy = Histogram::new();
        busy.record(1_500_000);
        busy.record(500_000);
        let mut latency = Histogram::new();
        latency.record(1);
        latency.record(3);
        let mut s = ServiceStats {
            ticks: 10,
            samples_emitted: 520,
            windows: 42,
            alarms: 3,
            wall_ms: 17,
            windows_per_s: 2470.6,
            swap_ticks: vec![7],
            latency: LatencySummary::from_histogram(&latency),
            ..ServiceStats::default()
        };
        s.alarms_by_label.insert("memleak".into(), 2);
        s.alarms_by_label.insert("dcopy".into(), 1);
        s.shards.push(ShardSnapshot::new(
            0,
            13,
            ShardStats { windows: 42, ..Default::default() },
            &busy,
            &latency,
        ));
        let back: ServiceStats = serde_json::from_str(&s.to_json().unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.shards[0].busy_ms, 2);
        assert_eq!(back.shards[0].latency.mean, 2.0);
        assert_eq!(back.shards[0].latency.p50, 1);
        assert_eq!(back.shards[0].latency.max, 3);
        assert_eq!(back.latency.count, 2);
    }

    #[test]
    fn summary_of_exact_small_values() {
        let mut h = Histogram::new();
        for t in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(t);
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn empty_service_stats_export() {
        let s = ServiceStats::default();
        let json = s.to_json_pretty().unwrap();
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
