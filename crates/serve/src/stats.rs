//! Aggregated service statistics, serialisable to JSON for dashboards.

use crate::feedback::FeedbackStats;
use crate::ingest::IngestStats;
use crate::shard::ShardStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One shard's counters plus derived rates, as exported.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub id: usize,
    /// Nodes assigned to the shard.
    pub nodes: usize,
    /// Raw counters.
    pub counters: ShardStats,
    /// Busy time in milliseconds (rounded).
    pub busy_ms: u64,
    /// Windows diagnosed per busy second.
    pub windows_per_busy_s: f64,
    /// Mean queueing delay between sample emission and diagnosis, in
    /// ticks.
    pub mean_latency_ticks: f64,
}

impl ShardSnapshot {
    /// Derives the exported snapshot from raw counters.
    pub fn from_counters(id: usize, nodes: usize, c: ShardStats) -> Self {
        let busy_s = c.busy_ns as f64 / 1e9;
        Self {
            id,
            nodes,
            counters: c,
            busy_ms: c.busy_ns / 1_000_000,
            windows_per_busy_s: if busy_s > 0.0 { c.windows as f64 / busy_s } else { 0.0 },
            mean_latency_ticks: if c.windows > 0 {
                c.latency_ticks as f64 / c.windows as f64
            } else {
                0.0
            },
        }
    }
}

/// Whole-service statistics after (or during) a run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Service ticks executed.
    pub ticks: usize,
    /// Samples emitted by the replay source.
    pub samples_emitted: u64,
    /// Ingest-layer counters (accepted / dropped / peak depth).
    pub ingest: IngestStats,
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Windows diagnosed fleet-wide.
    pub windows: u64,
    /// Alarms confirmed fleet-wide.
    pub alarms: u64,
    /// Confirmed alarms per diagnosed label.
    pub alarms_by_label: BTreeMap<String, u64>,
    /// Feedback-loop counters.
    pub feedback: FeedbackStats,
    /// Model hot-swaps performed (ticks at which they happened).
    pub swap_ticks: Vec<usize>,
    /// Wall-clock run time in milliseconds.
    pub wall_ms: u64,
    /// Windows diagnosed per wall-clock second.
    pub windows_per_s: f64,
}

impl ServiceStats {
    /// Compact JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("stats serialise")
    }

    /// Pretty-printed JSON export.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_json() {
        let mut s = ServiceStats {
            ticks: 10,
            samples_emitted: 520,
            windows: 42,
            alarms: 3,
            wall_ms: 17,
            windows_per_s: 2470.6,
            swap_ticks: vec![7],
            ..ServiceStats::default()
        };
        s.alarms_by_label.insert("memleak".into(), 2);
        s.alarms_by_label.insert("dcopy".into(), 1);
        s.shards.push(ShardSnapshot::from_counters(
            0,
            13,
            ShardStats { windows: 42, busy_ns: 2_000_000, latency_ticks: 84, ..Default::default() },
        ));
        let back: ServiceStats = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.shards[0].busy_ms, 2);
        assert_eq!(back.shards[0].mean_latency_ticks, 2.0);
    }
}
