//! # alba-serve
//!
//! Fleet-scale online diagnosis for the ALBADross reproduction — the
//! deployment scenario the paper leaves as future work (Sec. VI),
//! built on the workspace's offline pipeline:
//!
//! * [`replay`] — a deterministic streaming telemetry source replaying a
//!   held-out campaign as a fleet of 1 Hz node feeds,
//! * [`ingest`] — bounded per-node queues with backpressure (drop)
//!   accounting,
//! * [`frontier`] — the [`NetFrontier`] seam through which samples
//!   produced *outside* the process (the `alba-net` wire gateway, or
//!   its journaled ingest log replayed offline) feed the service,
//! * [`shard`] — worker shards running *batched* feature extraction and
//!   inference over their nodes' due windows, reusing the
//!   [`NodeMonitor`](albadross::NodeMonitor) hysteresis logic,
//! * [`feedback`] — the online active-learning loop: uncertainty-gated
//!   label requests, oracle labelling, forest refits and atomic model
//!   hot-swaps,
//! * [`stats`] — JSON-serialisable service statistics with per-shard
//!   latency percentiles (p50/p90/p95/p99/max),
//! * [`chaos`] — the plan-driven fault-injection runtime and the
//!   self-healing counters ([`alba_chaos`] supplies the plan; the
//!   service supplies shard supervision, quarantine, bounded backoff
//!   and journal healing),
//! * [`service`] — the [`FleetService`] tick loop tying it together.
//!
//! The whole pipeline is instrumented with
//! [`alba-obs`](alba_obs): build the service with
//! [`FleetService::with_obs`] and every stage records spans into the
//! metric registry, the shards keep busy/latency histograms, and
//! structured events (`alarm`, `label_request`, `model_swap`,
//! `sample_drop`) stream to the registry's JSONL sink.
//! [`FleetService::prometheus`] dumps it all in text-exposition format.
//! With a [`TickClock`](alba_obs::TickClock) two equally-seeded runs
//! emit identical event logs (see the integration suite).
//!
//! Causal tracing rides the same discipline: build with
//! [`FleetService::with_tracer`] and every pipeline hop (ingest →
//! drain → diagnose → alarm → AL gate → oracle → retrain) records a
//! trace event keyed by the deterministic `(seed, node, tick)` id from
//! [`alba_trace`], while the bounded flight recorder captures the
//! causal window around shard panics, chaos faults and shutdown.
//!
//! ```no_run
//! use alba_serve::{FleetService, ServeConfig};
//! use albadross::System;
//! use alba_telemetry::Scale;
//!
//! // Monitor the 52-node Volta testbed end to end, observed.
//! let cfg = ServeConfig::new(System::Volta, Scale::Smoke, 52, 42);
//! let mut svc = FleetService::with_obs(cfg, alba_obs::Obs::wall());
//! let stats = svc.run_to_completion();
//! println!("{}", stats.to_json_pretty().expect("stats serialise"));
//! println!("{}", svc.prometheus());
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod feedback;
pub mod frontier;
pub mod ingest;
pub mod replay;
pub mod service;
pub mod shard;
pub mod stats;

pub use alba_trace::{Lane, TraceCtx, Tracer};
pub use chaos::{plan_for, ChaosRuntime, ChaosStats, InjectedPanic};
pub use feedback::{FeedbackStats, LabelQueue, LabelRequest, Retrainer};
pub use frontier::{BatchFrontier, NetFrontier, TenantStats};
pub use ingest::{IngestLayer, IngestStats, SampleQueue};
pub use replay::{FleetConfig, NodeStream, ReplaySource, TelemetrySample};
pub use service::{FleetService, ServeConfig};
pub use shard::{NodeAlarm, Shard, ShardReport, ShardStats, WindowOutcome};
pub use stats::{ErrorStats, LatencySummary, ServiceStats, ShardSnapshot};
