//! The network-frontier seam: how samples produced *outside* the
//! process reach the [`FleetService`](crate::FleetService).
//!
//! The offline replay path drives the service from an in-process
//! [`ReplaySource`](crate::ReplaySource); a production deployment is fed
//! over the wire instead (E2EWatch deploys this exact pipeline behind a
//! backend web service). A [`NetFrontier`] is anything that can hand the
//! service one deterministic batch of samples per tick — the live
//! `alba-net` gateway, or the gateway's journaled ingest log replayed
//! offline. The seam is what keeps the byte-identical-replay invariant
//! across the network boundary: a captured session and its replay feed
//! the service the *same samples at the same ticks*, so everything
//! downstream (alarms, label requests, retrains, the event log) is
//! identical.

use crate::replay::TelemetrySample;
use serde::{Deserialize, Serialize};

/// A per-tick sample source feeding the service from across a network
/// boundary (or from a captured session's ingest log).
///
/// Contract: for a given frontier state, [`NetFrontier::poll`] must
/// return the tick's samples in a deterministic order (the gateway
/// drains its per-connection queues in session order; the log replay
/// returns records in capture order). The service offers them to its
/// bounded ingest layer exactly as it would replayed samples.
pub trait NetFrontier {
    /// Samples delivered for service tick `now`, in deterministic order.
    fn poll(&mut self, now: usize) -> Vec<TelemetrySample>;

    /// True once the frontier will never produce another sample — every
    /// session has closed (live) or the log is exhausted (replay).
    fn is_done(&self, now: usize) -> bool;

    /// Per-tenant accounting, surfaced into
    /// [`ServiceStats::tenants`](crate::ServiceStats). Non-multi-tenant
    /// frontiers (log replay) report nothing.
    fn tenant_stats(&self) -> Vec<TenantStats> {
        Vec::new()
    }
}

/// One tenant's admission / ingest / flow-control counters, as exported
/// in the service stats. Every frame a tenant offers is accounted to
/// exactly one bucket: accepted, shed for missing credit, shed on a full
/// connection queue, or rejected as malformed — backpressure and
/// corruption are *distinct* failure modes and must stay distinguishable.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant name (stable configuration identifier).
    pub tenant: String,
    /// Connections admitted.
    pub connects: u64,
    /// Connection attempts rejected by admission control (over the
    /// tenant's connection quota).
    pub admission_rejects: u64,
    /// Telemetry frames accepted into a connection queue.
    pub frames_accepted: u64,
    /// Telemetry frames shed because the sender was out of flow-control
    /// credits (answered with a BUSY frame).
    pub frames_no_credit: u64,
    /// Telemetry frames shed because the connection queue was full
    /// (answered with a BUSY frame).
    pub frames_queue_full: u64,
    /// Frames dropped for failing CRC or payload validation.
    pub frames_corrupt: u64,
    /// Flow-control credits granted back to the tenant's connections.
    pub credits_granted: u64,
    /// Samples actually delivered into the service.
    pub samples_delivered: u64,
}

impl TenantStats {
    /// A zeroed stats row for `tenant`.
    pub fn new(tenant: &str) -> Self {
        Self { tenant: tenant.to_string(), ..Self::default() }
    }

    /// Frames shed for backpressure (credit or queue exhaustion) —
    /// losses the tenant can avoid by honouring BUSY/credit frames.
    pub fn backpressure_sheds(&self) -> u64 {
        self.frames_no_credit + self.frames_queue_full
    }
}

/// Adapts a pre-materialised per-tick batch list into a [`NetFrontier`]
/// — the simplest frontier, used by tests and as the glue for sources
/// that already know their full schedule.
#[derive(Clone, Debug)]
pub struct BatchFrontier {
    batches: Vec<Vec<TelemetrySample>>,
    cursor: usize,
}

impl BatchFrontier {
    /// A frontier delivering `batches[t]` at tick `t` (empty after).
    pub fn new(batches: Vec<Vec<TelemetrySample>>) -> Self {
        Self { batches, cursor: 0 }
    }
}

impl NetFrontier for BatchFrontier {
    fn poll(&mut self, _now: usize) -> Vec<TelemetrySample> {
        let batch = self.batches.get_mut(self.cursor).map(std::mem::take).unwrap_or_default();
        self.cursor += 1;
        batch
    }

    fn is_done(&self, _now: usize) -> bool {
        self.cursor >= self.batches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: usize, at: usize) -> TelemetrySample {
        TelemetrySample { node, at, values: vec![at as f64] }
    }

    #[test]
    fn batch_frontier_delivers_in_schedule_order_then_finishes() {
        let mut f = BatchFrontier::new(vec![
            vec![sample(0, 0), sample(1, 0)],
            Vec::new(),
            vec![sample(0, 2)],
        ]);
        assert!(!f.is_done(0));
        assert_eq!(f.poll(0).len(), 2);
        assert!(f.poll(1).is_empty());
        assert!(!f.is_done(2), "one batch still pending");
        assert_eq!(f.poll(2).len(), 1);
        assert!(f.is_done(3));
        assert!(f.poll(3).is_empty(), "an exhausted frontier yields nothing");
        assert!(f.tenant_stats().is_empty());
    }

    #[test]
    fn tenant_stats_bucket_arithmetic() {
        let mut t = TenantStats::new("volta");
        t.frames_no_credit = 3;
        t.frames_queue_full = 4;
        assert_eq!(t.backpressure_sheds(), 7);
        let json = serde_json::to_string(&t).unwrap();
        let back: TenantStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
