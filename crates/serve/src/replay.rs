//! Streaming telemetry replay — the service's stand-in for an LDMS
//! aggregator feed.
//!
//! A [`ReplaySource`] materialises one campaign's worth of per-node runs
//! (via the [`alba_telemetry`] generator) and replays them as a fleet:
//! every fleet slot is one `(run, node)` telemetry stream with its
//! ground-truth label, and [`ReplaySource::tick`] emits one 1 Hz sample
//! per still-active node. Replay is fully deterministic in the master
//! seed — the integration suite asserts bit-identical streams — and the
//! ground truth doubles as the feedback loop's labelling oracle.

use alba_data::MetricDef;
use alba_telemetry::{generate_run, NodeTelemetry, Scale};
use albadross::System;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fleet simulation shape: which system, how many nodes, which seed.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FleetConfig {
    /// System whose campaign generator feeds the fleet.
    pub system: System,
    /// Campaign scale (controls metric-catalog width and run durations).
    pub scale: Scale,
    /// Number of fleet nodes (52 covers the Volta testbed; Eclipse
    /// supports up to 1488).
    pub n_nodes: usize,
    /// Master seed: drives run generation, durations and injections.
    pub seed: u64,
    /// When set, every run's steady-state duration is overridden (tests
    /// use this to guarantee enough samples per stream for windowing).
    pub duration_override_s: Option<usize>,
}

impl FleetConfig {
    /// A fleet of `n_nodes` nodes on `system` at the given scale.
    pub fn new(system: System, scale: Scale, n_nodes: usize, seed: u64) -> Self {
        Self { system, scale, n_nodes, seed, duration_override_s: None }
    }
}

/// One fleet node's replayable telemetry stream plus its ground truth.
#[derive(Clone, Debug)]
pub struct NodeStream {
    /// The generated node telemetry (series + provenance + label).
    pub telemetry: NodeTelemetry,
    /// Application that produced the stream (provenance shortcut).
    pub app: String,
}

/// One emitted telemetry sample: all metric readings of one node at one
/// tick.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// Fleet node index.
    pub node: usize,
    /// Emission tick (1 Hz ⇒ seconds since replay start).
    pub at: usize,
    /// One reading per catalog metric.
    pub values: Vec<f64>,
}

/// Deterministic fleet-wide telemetry replay.
#[derive(Clone, Debug)]
pub struct ReplaySource {
    streams: Vec<NodeStream>,
    metrics: Vec<MetricDef>,
    cursor: usize,
}

impl ReplaySource {
    /// Generates the fleet's streams. Runs are taken from the system's
    /// campaign in configuration order (cycling with re-derived seeds if
    /// the campaign is smaller than the fleet) and generated in parallel;
    /// the assignment of streams to fleet slots is deterministic in
    /// `cfg.seed`.
    pub fn build(cfg: &FleetConfig) -> Self {
        assert!(cfg.n_nodes >= 1, "a fleet needs at least one node");
        let campaign = cfg.system.campaign(cfg.scale, cfg.seed);
        let catalog = campaign.catalog();
        let base = campaign.run_configs();
        assert!(!base.is_empty(), "campaign produced no runs");

        // Enough run configs to cover the fleet: cycle the campaign,
        // re-deriving per-round seeds so repeated rounds differ.
        let mut picked = Vec::new();
        let mut covered = 0usize;
        let mut round = 0u64;
        while covered < cfg.n_nodes {
            for rc in &base {
                let mut rc = rc.clone();
                if let Some(d) = cfg.duration_override_s {
                    rc.duration_s = d;
                }
                rc.seed ^= round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                covered += rc.node_count;
                picked.push(rc);
                if covered >= cfg.n_nodes {
                    break;
                }
            }
            round += 1;
        }

        let mut streams: Vec<NodeStream> = picked
            .par_iter()
            .flat_map_iter(|rc| {
                let app = rc.app.name.clone();
                generate_run(rc, &catalog, &campaign.signature, &campaign.noise)
                    .into_iter()
                    .map(move |telemetry| NodeStream { telemetry, app: app.clone() })
            })
            .collect();
        streams.truncate(cfg.n_nodes);
        let metrics = streams[0].telemetry.series.metrics.clone();
        Self { streams, metrics, cursor: 0 }
    }

    /// Rebuilds a replay source from already-materialised streams — the
    /// path taken when a [`FleetService`](crate::FleetService) reads its
    /// fleet back from a warm `alba-store` entry instead of regenerating
    /// it. Streams must be in fleet-slot order and share one catalog.
    pub fn from_streams(streams: Vec<NodeStream>) -> Self {
        assert!(!streams.is_empty(), "a fleet needs at least one stream");
        let metrics = streams[0].telemetry.series.metrics.clone();
        Self { streams, metrics, cursor: 0 }
    }

    /// Number of fleet nodes.
    pub fn n_nodes(&self) -> usize {
        self.streams.len()
    }

    /// The metric catalog every stream reports (shared fleet-wide).
    pub fn metrics(&self) -> &[MetricDef] {
        &self.metrics
    }

    /// The fleet's per-node streams.
    pub fn streams(&self) -> &[NodeStream] {
        &self.streams
    }

    /// Ground-truth label of one node's stream (the labelling oracle).
    pub fn truth(&self, node: usize) -> &str {
        &self.streams[node].telemetry.label
    }

    /// Ground-truth labels for the whole fleet, indexed by node.
    pub fn truth_labels(&self) -> Vec<String> {
        self.streams.iter().map(|s| s.telemetry.label.clone()).collect()
    }

    /// Current replay tick.
    pub fn tick_index(&self) -> usize {
        self.cursor
    }

    /// Longest stream length — replay is exhausted after this many ticks.
    pub fn max_len(&self) -> usize {
        self.streams.iter().map(|s| s.telemetry.series.len()).max().unwrap_or(0)
    }

    /// True once every stream has been fully replayed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.max_len()
    }

    /// Emits one 1 Hz sample for every node still active at the current
    /// tick, in node order, then advances the clock.
    pub fn tick(&mut self) -> Vec<TelemetrySample> {
        let t = self.cursor;
        self.cursor += 1;
        let mut out = Vec::new();
        for (node, stream) in self.streams.iter().enumerate() {
            let series = &stream.telemetry.series;
            if t >= series.len() {
                continue;
            }
            let values = (0..series.n_metrics()).map(|m| series.metric(m)[t]).collect();
            out.push(TelemetrySample { node, at: t, values });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetConfig {
        FleetConfig::new(System::Volta, Scale::Smoke, 12, 7)
    }

    #[test]
    fn build_fills_every_fleet_slot() {
        let r = ReplaySource::build(&cfg());
        assert_eq!(r.n_nodes(), 12);
        assert!(!r.metrics().is_empty());
        assert_eq!(r.truth_labels().len(), 12);
        assert!(r.max_len() >= 60, "smoke streams are >= 60 samples");
    }

    #[test]
    fn fleet_larger_than_campaign_cycles_runs() {
        // Smoke Volta: 11 apps * 3 shapes * 4 runs * 4 nodes = 528 node
        // streams; ask for more to force a second round.
        let big = FleetConfig::new(System::Volta, Scale::Smoke, 600, 3);
        let r = ReplaySource::build(&big);
        assert_eq!(r.n_nodes(), 600);
    }

    #[test]
    fn tick_emits_only_active_nodes_and_advances() {
        let mut r = ReplaySource::build(&cfg());
        let first = r.tick();
        assert_eq!(first.len(), 12, "every stream is active at t=0");
        assert!(first.iter().enumerate().all(|(i, s)| s.node == i && s.at == 0));
        let mut emitted = first.len();
        while !r.is_exhausted() {
            emitted += r.tick().len();
        }
        let expected: usize = r.streams().iter().map(|s| s.telemetry.series.len()).sum();
        assert_eq!(emitted, expected, "every sample of every stream is emitted once");
        assert!(r.tick().is_empty(), "exhausted replay emits nothing");
    }

    #[test]
    fn replay_is_bit_identical_for_a_seed() {
        let mut a = ReplaySource::build(&cfg());
        let mut b = ReplaySource::build(&cfg());
        while !a.is_exhausted() {
            let (sa, sb) = (a.tick(), b.tick());
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(&sb) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.at, y.at);
                for (u, v) in x.values.iter().zip(&y.values) {
                    assert_eq!(u.to_bits(), v.to_bits(), "replay must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ReplaySource::build(&cfg());
        let b = ReplaySource::build(&FleetConfig { seed: 8, ..cfg() });
        let sa = &a.streams()[0].telemetry.series;
        let sb = &b.streams()[0].telemetry.series;
        assert!(
            sa.metric(0)[..20] != sb.metric(0)[..20],
            "different seeds must produce different telemetry"
        );
    }

    #[test]
    fn duration_override_is_applied() {
        let r = ReplaySource::build(&FleetConfig { duration_override_s: Some(150), ..cfg() });
        // 150 steady-state seconds plus two transients.
        assert!(r.max_len() >= 150, "override lengthens smoke runs");
    }
}
