//! The fleet service: replay → bounded ingest → sharded batched
//! diagnosis → alarm bus → active-learning feedback → hot-swap.
//!
//! [`FleetService::tick`] advances the simulated clock by one second:
//! the replay source emits one sample per active node, the ingest layer
//! buffers them per node (shedding on overflow), every shard drains its
//! nodes' queues and diagnoses the due windows as one batch (shards run
//! on rayon workers), alarms and window outcomes are merged in shard
//! order, uncertain windows become label requests, and once enough
//! requests are pending the oracle labels them, the forest is refitted
//! and hot-swapped into every monitor *between* ticks — no in-flight
//! window is lost or diagnosed by a half-swapped model.
//!
//! Every stochastic choice — replay streams, shard assignment, forest
//! bootstraps — derives from `ServeConfig::fleet.seed`, so two services
//! with the same config produce identical alarms, verdicts and swap
//! ticks (asserted by the integration suite).

use crate::feedback::{LabelQueue, LabelRequest, Retrainer};
use crate::ingest::IngestLayer;
use crate::replay::{FleetConfig, NodeStream, ReplaySource, TelemetrySample};
use crate::shard::{NodeAlarm, Shard, ShardReport};
use crate::stats::{LatencySummary, ServiceStats, ShardSnapshot};
use alba_features::{FeatureExtractor, Mvts, TsFresh};
use alba_ml::{DiagnosisModel, ForestParams};
use alba_obs::{Histogram, Obs, Value};
use alba_store::{key_of, LabelJournal, TelemetryStore, KIND_LABEL, KIND_RETRAIN};
use albadross::{
    prepare_split, FeatureMethod, MonitorConfig, NodeMonitor, SplitConfig, SystemData,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Replay streams must be *held-out* runs, not the training campaign:
/// the replay seed is salted so the fleet never streams a run the model
/// was fitted on.
const REPLAY_SALT: u64 = 0x5E_EDF1_EED0_5A17;
/// Salt for the node→shard shuffle.
const SHARD_SALT: u64 = 0x5AAD_0F5A_A2D5;

/// Full service configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Fleet shape (system, scale, node count, master seed).
    pub fleet: FleetConfig,
    /// Per-node windowing/hysteresis configuration.
    pub monitor: MonitorConfig,
    /// Offline split used to train the initial model.
    pub split: SplitConfig,
    /// Feature extractor (must match between training and serving).
    pub method: FeatureMethod,
    /// Worker shards the fleet is partitioned across.
    pub n_shards: usize,
    /// Per-node ingest queue capacity (samples).
    pub queue_capacity: usize,
    /// Batched inference (one model call per shard per tick) versus the
    /// node-at-a-time baseline (one call per window).
    pub batched: bool,
    /// Least-confidence uncertainty above which a window becomes a label
    /// request.
    pub uncertainty_threshold: f64,
    /// Bounded label-request queue capacity.
    pub label_queue_capacity: usize,
    /// Requests serviced (and folded in) per retrain round.
    pub retrain_batch: usize,
    /// Maximum retrain/hot-swap rounds.
    pub max_retrains: usize,
    /// Forest hyper-parameters for the initial fit and every refit.
    pub forest: ForestParams,
    /// Root of an `alba-store` directory. When set, the offline campaign,
    /// its feature matrix and the replay fleet's streams are memoised
    /// there, and every labelled window is journalled for warm restart.
    /// An unusable store degrades to the in-memory path (with a
    /// `store_fallback` event), never a failed service.
    pub store_dir: Option<String>,
}

impl ServeConfig {
    /// A reasonable configuration for `n_nodes` nodes of `system`.
    pub fn new(
        system: albadross::System,
        scale: alba_telemetry::Scale,
        n_nodes: usize,
        seed: u64,
    ) -> Self {
        Self {
            fleet: FleetConfig::new(system, scale, n_nodes, seed),
            monitor: MonitorConfig::default(),
            split: SplitConfig { train_fraction: 0.6, top_k_features: 300 },
            method: FeatureMethod::Mvts,
            n_shards: 4,
            queue_capacity: 128,
            batched: true,
            uncertainty_threshold: 0.45,
            label_queue_capacity: 64,
            retrain_batch: 12,
            max_retrains: 2,
            forest: ForestParams { n_estimators: 15, seed, ..ForestParams::default() },
            store_dir: None,
        }
    }
}

/// The running service.
#[derive(Clone)]
pub struct FleetService {
    cfg: ServeConfig,
    replay: ReplaySource,
    ingest: IngestLayer,
    shards: Vec<Shard>,
    /// node → shard index.
    shard_of: Vec<usize>,
    model: Arc<DiagnosisModel>,
    label_queue: LabelQueue,
    retrainer: Retrainer,
    /// Write-ahead label journal (present iff `cfg.store_dir` is usable).
    journal: Option<LabelJournal>,
    /// Ground-truth label per node (the labelling oracle).
    oracle: Vec<String>,
    alarm_log: Vec<NodeAlarm>,
    alarms_by_label: BTreeMap<String, u64>,
    swap_ticks: Vec<usize>,
    tick: usize,
    samples_emitted: u64,
    wall_ns: u64,
    obs: Obs,
}

impl FleetService {
    /// Trains the initial model on the system's offline campaign, builds
    /// the (held-out) replay fleet and partitions it into shards —
    /// unobserved. [`FleetService::with_obs`] attaches a registry.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_obs(cfg, Obs::disabled())
    }

    /// [`FleetService::new`] with an observability registry: pipeline
    /// stages record spans, shards keep per-stage histograms, and the
    /// service emits structured events (`alarm`, `label_request`,
    /// `model_swap`, `sample_drop`) to the registry's sink.
    pub fn with_obs(cfg: ServeConfig, obs: Obs) -> Self {
        assert!(cfg.n_shards >= 1, "need at least one shard");
        assert!(cfg.retrain_batch >= 1, "retrain batch must be positive");

        // Durable memoisation (optional): an unusable store degrades to
        // the purely in-memory path rather than failing the service.
        let store = cfg.store_dir.as_deref().and_then(|dir| {
            TelemetryStore::with_obs(dir, obs.clone())
                .map_err(|e| {
                    obs.event(
                        "store_fallback",
                        &[("dir", dir.into()), ("error", e.to_string().into())],
                    );
                })
                .ok()
        });

        // Offline phase: campaign → features → split → initial forest.
        let init_span = obs.span("service_init_ns", &[("stage", "train_initial")]);
        let sd = Self::system_data(&cfg, store.as_ref(), &obs);
        let split = prepare_split(&sd.dataset, &cfg.split, cfg.fleet.seed);
        let mut retrainer = Retrainer::new(&split.train, cfg.forest);
        let mut model = retrainer.fit();
        let view = split.feature_view();
        init_span.finish();

        // Warm restart: replay the label journal, folding every committed
        // round back into the retrainer. Refits are round-seeded, so the
        // restored model is bit-identical to the pre-shutdown one without
        // re-spending the labelling budget.
        let mut swap_ticks = Vec::new();
        let journal = store.as_ref().and_then(|s| {
            Self::restore_from_journal(s, &cfg, &obs, &mut retrainer, &mut model, &mut swap_ticks)
        });

        // Online phase: a fresh (salted-seed) campaign streams the fleet.
        let build_span = obs.span("service_init_ns", &[("stage", "build_replay")]);
        let replay_cfg = FleetConfig { seed: cfg.fleet.seed ^ REPLAY_SALT, ..cfg.fleet };
        let replay = match &store {
            Some(s) => Self::replay_via_store(s, &replay_cfg, &obs),
            None => ReplaySource::build(&replay_cfg),
        };
        let oracle = replay.truth_labels();
        let ingest = IngestLayer::with_obs(replay.n_nodes(), cfg.queue_capacity, obs.clone());

        // Seeded node→shard assignment: shuffle, then round-robin.
        let mut nodes: Vec<usize> = (0..replay.n_nodes()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.fleet.seed ^ SHARD_SALT);
        nodes.shuffle(&mut rng);
        let n_shards = cfg.n_shards.min(nodes.len());
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        let mut shard_of = vec![0usize; nodes.len()];
        for (i, &n) in nodes.iter().enumerate() {
            per_shard[i % n_shards].push(n);
            shard_of[n] = i % n_shards;
        }
        let extractor: Arc<dyn FeatureExtractor + Send + Sync> = match cfg.method {
            FeatureMethod::Mvts => Arc::new(Mvts),
            FeatureMethod::TsFresh => Arc::new(TsFresh),
        };
        let shards = per_shard
            .into_iter()
            .enumerate()
            .map(|(id, ns)| {
                Shard::new(
                    id,
                    ns,
                    Arc::clone(&model),
                    Arc::clone(&extractor),
                    replay.metrics(),
                    view.clone(),
                    &cfg.monitor,
                    cfg.batched,
                    obs.clone(),
                )
            })
            .collect();
        build_span.finish();

        let label_queue = LabelQueue::new(cfg.label_queue_capacity);
        Self {
            cfg,
            replay,
            ingest,
            shards,
            shard_of,
            model,
            label_queue,
            retrainer,
            journal,
            oracle,
            alarm_log: Vec::new(),
            alarms_by_label: BTreeMap::new(),
            swap_ticks,
            tick: 0,
            samples_emitted: 0,
            wall_ns: 0,
            obs,
        }
    }

    /// Offline training data, through the store when one is configured.
    fn system_data(cfg: &ServeConfig, store: Option<&TelemetryStore>, obs: &Obs) -> SystemData {
        let (system, method, scale, seed) =
            (cfg.fleet.system, cfg.method, cfg.fleet.scale, cfg.fleet.seed);
        let Some(s) = store else {
            return SystemData::generate(system, method, scale, seed);
        };
        match SystemData::generate_stored(s, system, method, scale, seed) {
            Ok(sd) => sd,
            Err(e) => {
                obs.event(
                    "store_fallback",
                    &[
                        ("dir", s.root().display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                SystemData::generate(system, method, scale, seed)
            }
        }
    }

    /// Opens the service's label journal and folds every committed round
    /// back into `retrainer`/`model`. A round is committed iff its labels
    /// are followed by a retrain marker; trailing unmarked labels (a
    /// crash mid-round) are dropped. Restored rounds land in
    /// `swap_ticks`, so they count against `max_retrains`.
    fn restore_from_journal(
        store: &TelemetryStore,
        cfg: &ServeConfig,
        obs: &Obs,
        retrainer: &mut Retrainer,
        model: &mut Arc<DiagnosisModel>,
        swap_ticks: &mut Vec<usize>,
    ) -> Option<LabelJournal> {
        // The journal is keyed by the full service config *minus* the
        // store location, so moving a store does not orphan its journals.
        let mut key_cfg = cfg.clone();
        key_cfg.store_dir = None;
        let path = store.journal_path(&key_of("serve", &key_cfg));
        let (journal, records) = match LabelJournal::open(&path) {
            Ok(v) => v,
            Err(e) => {
                obs.event(
                    "store_fallback",
                    &[("dir", path.display().to_string().into()), ("error", e.to_string().into())],
                );
                return None;
            }
        };
        if !records.is_empty() {
            let _span = obs.span("service_init_ns", &[("stage", "replay_journal")]);
            let mut batch = Vec::new();
            for rec in &records {
                match rec.kind.as_str() {
                    KIND_LABEL => batch.push((rec.row.clone(), rec.label.clone())),
                    KIND_RETRAIN => {
                        *model = retrainer.fold_in(std::mem::take(&mut batch));
                        swap_ticks.push(rec.at);
                    }
                    _ => {}
                }
            }
            obs.event(
                "warm_restart",
                &[
                    ("rounds", Value::from(swap_ticks.len())),
                    ("records", Value::from(records.len())),
                    ("uncommitted", Value::from(batch.len())),
                ],
            );
        }
        Some(journal)
    }

    /// The replay fleet through the store: a warm entry skips stream
    /// generation entirely, a miss generates and persists, and a corrupt
    /// entry self-heals. Store write failures only cost the memoisation.
    fn replay_via_store(store: &TelemetryStore, cfg: &FleetConfig, obs: &Obs) -> ReplaySource {
        let key = key_of("fleet", cfg);
        match store.read_samples("fleet", &key) {
            Ok(Some(samples)) => {
                obs.counter("store_cache_hits_total", &[("kind", "fleet")]).inc();
                let streams = samples
                    .into_iter()
                    .map(|telemetry| {
                        let app = telemetry.meta.app.clone();
                        NodeStream { telemetry, app }
                    })
                    .collect();
                return ReplaySource::from_streams(streams);
            }
            Ok(None) => {}
            Err(e) => {
                obs.counter("store_corrupt_entries_total", &[("kind", "fleet")]).inc();
                obs.event(
                    "store_self_heal",
                    &[("kind", "fleet".into()), ("error", e.to_string().into())],
                );
            }
        }
        obs.counter("store_cache_misses_total", &[("kind", "fleet")]).inc();
        let replay = ReplaySource::build(cfg);
        let telemetry: Vec<_> = replay.streams().iter().map(|s| s.telemetry.clone()).collect();
        let config_json = serde_json::to_string(cfg).unwrap_or_default();
        if let Err(e) = store.write_samples("fleet", &key, &config_json, &telemetry) {
            obs.event(
                "store_fallback",
                &[
                    ("dir", store.root().display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
        replay
    }

    /// Advances the service by one second of fleet time. Returns `false`
    /// once the replay is exhausted and every queue has drained.
    pub fn tick(&mut self) -> bool {
        let start = Instant::now();
        let now = self.tick;

        // 1. Replay emits; the ingest layer buffers (or sheds).
        let ingest_span = self.obs.span("stage_ns", &[("stage", "ingest")]);
        let emitted = self.replay.tick();
        self.samples_emitted += emitted.len() as u64;
        for s in emitted {
            self.ingest.offer(s);
        }
        ingest_span.finish();

        // 2. Each shard drains its nodes' queues into one tick batch.
        let drain_span = self.obs.span("stage_ns", &[("stage", "drain")]);
        let batches: Vec<Vec<TelemetrySample>> = self
            .shards
            .iter()
            .map(|sh| {
                let mut batch = Vec::new();
                for &n in sh.nodes() {
                    batch.extend(self.ingest.drain_node(n));
                }
                batch
            })
            .collect();
        drain_span.finish();

        // 3. Shards process in parallel; reports come back in shard
        //    order, so the merge below is deterministic.
        let process_span = self.obs.span("stage_ns", &[("stage", "process")]);
        let reports: Vec<ShardReport> = self
            .shards
            .par_chunks_mut(1)
            .map(|chunk| {
                let sh = &mut chunk[0];
                sh.process(&batches[sh.id()], now)
            })
            .collect();
        process_span.finish();

        // 4. Alarm bus + uncertainty gate. Events are emitted here, on
        //    the tick thread in shard order — never from the parallel
        //    section above — so event logs are deterministic.
        let alarm_span = self.obs.span("stage_ns", &[("stage", "alarm")]);
        let gating_open = self.swap_ticks.len() < self.cfg.max_retrains;
        for report in reports {
            for na in report.alarms {
                self.obs.event(
                    "alarm",
                    &[
                        ("node", Value::from(na.node)),
                        ("label", Value::from(na.alarm.label.as_str())),
                        ("confidence", Value::from(na.alarm.confidence)),
                        ("tick", Value::from(now)),
                    ],
                );
                *self.alarms_by_label.entry(na.alarm.label.clone()).or_insert(0) += 1;
                self.alarm_log.push(na);
            }
            if gating_open {
                for w in &report.windows {
                    if w.uncertainty >= self.cfg.uncertainty_threshold {
                        let accepted = self.label_queue.offer(LabelRequest::from_window(w));
                        self.obs.event(
                            "label_request",
                            &[
                                ("node", Value::from(w.node)),
                                ("at", Value::from(w.at)),
                                ("uncertainty", Value::from(w.uncertainty)),
                                ("accepted", Value::from(accepted)),
                            ],
                        );
                    }
                }
            }
        }
        alarm_span.finish();

        // 5. Feedback: enough pending requests → label, retrain, swap.
        let feedback_span = self.obs.span("stage_ns", &[("stage", "feedback")]);
        while self.label_queue.len() >= self.cfg.retrain_batch
            && self.swap_ticks.len() < self.cfg.max_retrains
        {
            self.retrain_round();
        }
        feedback_span.finish();

        self.tick += 1;
        self.wall_ns += start.elapsed().as_nanos() as u64;
        !(self.replay.is_exhausted() && self.ingest.is_empty())
    }

    /// Services one batch of label requests through the oracle, refits
    /// and hot-swaps the model into every shard.
    fn retrain_round(&mut self) {
        let reqs = self.label_queue.take(self.cfg.retrain_batch);
        if reqs.is_empty() {
            return;
        }
        let labelled: Vec<(Vec<f64>, String)> = reqs
            .into_iter()
            .map(|r| {
                let truth = self.oracle[r.node].clone();
                // Write-ahead: the labelled row hits the journal before
                // the retrainer ever sees it.
                if let Some(j) = &self.journal {
                    if let Err(e) = j.append_label(r.node, r.at, &truth, &r.row) {
                        self.obs.event("journal_error", &[("error", e.to_string().into())]);
                    }
                }
                (r.row, truth)
            })
            .collect();
        let retrain_span = self.obs.span("retrain_ns", &[]);
        let model = self.retrainer.fold_in(labelled);
        retrain_span.finish();
        for sh in &mut self.shards {
            sh.set_model(Arc::clone(&model));
        }
        self.model = model;
        self.label_queue.record_retrain();
        // The marker commits the round: journal replay folds in exactly
        // the label batches that reached this point.
        if let Some(j) = &self.journal {
            if let Err(e) = j.append_retrain(self.swap_ticks.len() as u64 + 1, self.tick) {
                self.obs.event("journal_error", &[("error", e.to_string().into())]);
            }
        }
        self.obs.event(
            "model_swap",
            &[
                ("tick", Value::from(self.tick)),
                ("round", Value::from(self.swap_ticks.len() + 1)),
                ("train_samples", Value::from(self.retrainer.n_samples())),
            ],
        );
        self.swap_ticks.push(self.tick);
    }

    /// Runs at most `max_ticks` ticks; returns how many actually ran.
    pub fn run(&mut self, max_ticks: usize) -> usize {
        let mut ran = 0;
        while ran < max_ticks {
            let more = self.tick();
            ran += 1;
            if !more {
                break;
            }
        }
        ran
    }

    /// Runs until the replay is exhausted and all queues are drained,
    /// then services any leftover label requests (a final retrain round,
    /// if the budget allows).
    pub fn run_to_completion(&mut self) -> ServiceStats {
        while self.tick() {}
        if !self.label_queue.is_empty() && self.swap_ticks.len() < self.cfg.max_retrains {
            self.retrain_round();
        }
        self.stats()
    }

    /// Snapshot of the service statistics.
    pub fn stats(&self) -> ServiceStats {
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .map(|sh| {
                ShardSnapshot::new(
                    sh.id(),
                    sh.nodes().len(),
                    *sh.stats(),
                    sh.busy_histogram(),
                    sh.latency_histogram(),
                )
            })
            .collect();
        let windows: u64 = shards.iter().map(|s| s.counters.windows).sum();
        let alarms: u64 = shards.iter().map(|s| s.counters.alarms).sum();
        // Fleet-wide latency: per-shard histograms merge exactly.
        let mut merged = Histogram::new();
        for sh in &self.shards {
            merged.merge(sh.latency_histogram());
        }
        let wall_s = self.wall_ns as f64 / 1e9;
        let mut feedback = self.label_queue.stats();
        feedback.retrains = self.swap_ticks.len() as u64;
        ServiceStats {
            ticks: self.tick,
            samples_emitted: self.samples_emitted,
            ingest: self.ingest.stats(),
            shards,
            windows,
            latency: LatencySummary::from_histogram(&merged),
            alarms,
            alarms_by_label: self.alarms_by_label.clone(),
            feedback,
            swap_ticks: self.swap_ticks.clone(),
            wall_ms: self.wall_ns / 1_000_000,
            windows_per_s: if wall_s > 0.0 { windows as f64 / wall_s } else { 0.0 },
        }
    }

    /// The observability handle the service was built with (disabled
    /// unless [`FleetService::with_obs`] was used).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Prometheus-style text exposition: every metric in the obs
    /// registry plus the per-shard busy/latency histograms.
    pub fn prometheus(&self) -> String {
        let mut out = self.obs.expose();
        for sh in &self.shards {
            let label = format!("shard=\"{}\"", sh.id());
            sh.busy_histogram().snapshot().expose_into("shard_busy_ns", &label, &mut out);
            sh.latency_histogram().snapshot().expose_into("shard_latency_ticks", &label, &mut out);
        }
        out
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Fleet size.
    pub fn n_nodes(&self) -> usize {
        self.replay.n_nodes()
    }

    /// Every confirmed alarm so far, in confirmation order.
    pub fn alarms(&self) -> &[NodeAlarm] {
        &self.alarm_log
    }

    /// Ticks at which a refreshed model was hot-swapped in.
    pub fn swap_ticks(&self) -> &[usize] {
        &self.swap_ticks
    }

    /// The currently deployed model.
    pub fn model(&self) -> &Arc<DiagnosisModel> {
        &self.model
    }

    /// Ground-truth label of one fleet node's stream.
    pub fn truth(&self, node: usize) -> &str {
        self.replay.truth(node)
    }

    /// The monitor serving one fleet node (for inspection).
    pub fn monitor(&self, node: usize) -> &NodeMonitor {
        self.shards[self.shard_of[node]].monitor(node)
    }

    /// Pending label requests.
    pub fn pending_label_requests(&self) -> usize {
        self.label_queue.len()
    }
}
