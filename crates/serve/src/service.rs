//! The fleet service: replay → bounded ingest → sharded batched
//! diagnosis → alarm bus → active-learning feedback → hot-swap.
//!
//! [`FleetService::tick`] advances the simulated clock by one second:
//! the replay source emits one sample per active node, the ingest layer
//! buffers them per node (shedding on overflow), every shard drains its
//! nodes' queues and diagnoses the due windows as one batch (shards are
//! moved onto a fixed [`alba_par::Pool`] of worker threads for the
//! epoch), alarms and window outcomes are merged in shard order behind
//! the pool's epoch barrier, uncertain windows become label requests,
//! and once enough requests are pending the oracle labels them, the
//! forest is refitted and hot-swapped into every monitor *between*
//! ticks — no in-flight window is lost or diagnosed by a half-swapped
//! model.
//!
//! Every stochastic choice — replay streams, shard assignment, forest
//! bootstraps — derives from `ServeConfig::fleet.seed`, so two services
//! with the same config produce identical alarms, verdicts and swap
//! ticks (asserted by the integration suite). The worker count is *not*
//! part of that identity: shard→worker assignment is static
//! (`slot % workers`), every event/trace/alarm is emitted on the tick
//! thread in shard order, and shard busy time is measured against the
//! obs clock — so 1, 2, 4 or 8 workers produce byte-identical event
//! logs, traces and models (asserted by `tests/parallel.rs`).

use crate::chaos::{plan_for, ChaosRuntime, ChaosStats};
use crate::feedback::{LabelQueue, LabelRequest, Retrainer};
use crate::frontier::NetFrontier;
use crate::ingest::IngestLayer;
use crate::replay::{FleetConfig, NodeStream, ReplaySource, TelemetrySample};
use crate::shard::{NodeAlarm, Shard, ShardReport};
use crate::stats::{ErrorStats, LatencySummary, ServiceStats, ShardSnapshot};
use alba_chaos::{Backoff, FaultKind, FaultPlan, InjectAction, TelemetryInjector, Transition};
use alba_features::{FeatureExtractor, FeatureView, Mvts, TsFresh};
use alba_ml::{DiagnosisModel, ForestParams};
use alba_obs::{Histogram, Obs, Value};
use alba_par::Pool;
use alba_store::{key_of, LabelJournal, StoreError, TelemetryStore, KIND_LABEL, KIND_RETRAIN};
use alba_trace::{Lane, Tracer};
use albadross::{
    prepare_split, FeatureMethod, MonitorConfig, NodeMonitor, SplitConfig, SystemData,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

/// Replay streams must be *held-out* runs, not the training campaign:
/// the replay seed is salted so the fleet never streams a run the model
/// was fitted on.
const REPLAY_SALT: u64 = 0x5E_EDF1_EED0_5A17;
/// Salt for the node→shard shuffle.
const SHARD_SALT: u64 = 0x5AAD_0F5A_A2D5;

/// Full service configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Fleet shape (system, scale, node count, master seed).
    pub fleet: FleetConfig,
    /// Per-node windowing/hysteresis configuration.
    pub monitor: MonitorConfig,
    /// Offline split used to train the initial model.
    pub split: SplitConfig,
    /// Feature extractor (must match between training and serving).
    pub method: FeatureMethod,
    /// Worker shards the fleet is partitioned across.
    pub n_shards: usize,
    /// Worker threads the shard pool runs on; `0` (the default) picks
    /// `min(available_parallelism, n_shards)`. Excluded — like
    /// `store_dir` and `chaos` — from the journal identity: every
    /// worker count produces byte-identical artifacts, so runs at
    /// different counts share a journal.
    pub n_workers: usize,
    /// Per-node ingest queue capacity (samples).
    pub queue_capacity: usize,
    /// Batched inference (one model call per shard per tick) versus the
    /// node-at-a-time baseline (one call per window).
    pub batched: bool,
    /// Least-confidence uncertainty above which a window becomes a label
    /// request.
    pub uncertainty_threshold: f64,
    /// Bounded label-request queue capacity.
    pub label_queue_capacity: usize,
    /// Requests serviced (and folded in) per retrain round.
    pub retrain_batch: usize,
    /// Maximum retrain/hot-swap rounds.
    pub max_retrains: usize,
    /// Forest hyper-parameters for the initial fit and every refit.
    pub forest: ForestParams,
    /// Root of an `alba-store` directory. When set, the offline campaign,
    /// its feature matrix and the replay fleet's streams are memoised
    /// there, and every labelled window is journalled for warm restart.
    /// An unusable store degrades to the in-memory path (with a
    /// `store_fallback` event), never a failed service.
    pub store_dir: Option<String>,
    /// When set, the service generates a seeded [`FaultPlan`] from this
    /// shape and runs under fault injection (see [`crate::chaos`]).
    /// Excluded — like `store_dir` — from the journal identity, so a
    /// chaotic run journals to (and warm-restarts from) the same journal
    /// as a fault-free one.
    pub chaos: Option<alba_chaos::ChaosConfig>,
}

impl ServeConfig {
    /// A reasonable configuration for `n_nodes` nodes of `system`.
    pub fn new(
        system: albadross::System,
        scale: alba_telemetry::Scale,
        n_nodes: usize,
        seed: u64,
    ) -> Self {
        Self {
            fleet: FleetConfig::new(system, scale, n_nodes, seed),
            monitor: MonitorConfig::default(),
            split: SplitConfig { train_fraction: 0.6, top_k_features: 300 },
            method: FeatureMethod::Mvts,
            n_shards: 4,
            n_workers: 0,
            queue_capacity: 128,
            batched: true,
            uncertainty_threshold: 0.45,
            label_queue_capacity: 64,
            retrain_batch: 12,
            max_retrains: 2,
            forest: ForestParams { n_estimators: 15, seed, ..ForestParams::default() },
            store_dir: None,
            chaos: None,
        }
    }
}

/// One shard's work for one pool epoch: the shard itself (moved onto
/// the worker for the tick) plus its drained batch.
struct ShardJob {
    shard: Shard,
    batch: Vec<TelemetrySample>,
    now: usize,
}

/// What an epoch hands back per slot: the shard (returned to the tick
/// thread) and its report — or the panic payload when the shard died
/// mid-batch (the shard itself survives for the supervisor to respawn).
struct ShardDone {
    shard: Shard,
    outcome: std::thread::Result<ShardReport>,
}

/// The service's worker pool. Deliberately *not* cloned with the
/// service: a cloned `FleetService` lazily builds its own pool on its
/// next tick, so clones never share worker threads.
struct PoolCell(Option<Pool<ShardJob, ShardDone>>);

impl Clone for PoolCell {
    fn clone(&self) -> Self {
        PoolCell(None)
    }
}

/// The running service.
#[derive(Clone)]
pub struct FleetService {
    cfg: ServeConfig,
    replay: ReplaySource,
    ingest: IngestLayer,
    shards: Vec<Shard>,
    /// node → shard index.
    shard_of: Vec<usize>,
    /// Epoch-barrier worker pool (built lazily on the first tick and
    /// rebuilt when the effective worker count changes).
    pool: PoolCell,
    /// Extractor/view the shards were built from — kept so a shard lost
    /// to a dead worker can be rebuilt from scratch.
    extractor: Arc<dyn FeatureExtractor + Send + Sync>,
    view: FeatureView,
    model: Arc<DiagnosisModel>,
    label_queue: LabelQueue,
    retrainer: Retrainer,
    /// Write-ahead label journal (present iff `cfg.store_dir` is usable).
    journal: Option<LabelJournal>,
    /// Ground-truth label per node (the labelling oracle).
    oracle: Vec<String>,
    alarm_log: Vec<NodeAlarm>,
    alarms_by_label: BTreeMap<String, u64>,
    swap_ticks: Vec<usize>,
    tick: usize,
    samples_emitted: u64,
    wall_ns: u64,
    /// Plan-driven fault injection (present iff built with a plan).
    chaos: Option<ChaosRuntime>,
    /// Retry policy for journal appends (always on; chaos only makes it
    /// fire more often). Seeded, so simulated waits are deterministic.
    journal_backoff: Backoff,
    /// Typed error counters not owned by a sub-layer.
    oracle_misses: u64,
    journal_reopens: u64,
    journal_failures: u64,
    obs: Obs,
    /// Causal tracing + flight recorder (disabled unless built with
    /// [`FleetService::with_tracer`]). Hops are recorded on the tick
    /// thread only, in shard order — the same discipline obs events
    /// follow — so trace logs are replay-deterministic.
    tracer: Tracer,
}

impl FleetService {
    /// Trains the initial model on the system's offline campaign, builds
    /// the (held-out) replay fleet and partitions it into shards —
    /// unobserved. [`FleetService::with_obs`] attaches a registry.
    pub fn new(cfg: ServeConfig) -> Self {
        Self::with_obs(cfg, Obs::disabled())
    }

    /// [`FleetService::new`] with an observability registry: pipeline
    /// stages record spans, shards keep per-stage histograms, and the
    /// service emits structured events (`alarm`, `label_request`,
    /// `model_swap`, `sample_drop`) to the registry's sink.
    ///
    /// When `cfg.chaos` is set, a seeded [`FaultPlan`] is generated from
    /// it (deterministically in `cfg.fleet.seed`) and the service runs
    /// under fault injection.
    pub fn with_obs(cfg: ServeConfig, obs: Obs) -> Self {
        Self::with_tracer(cfg, obs, Tracer::disabled())
    }

    /// [`FleetService::with_obs`] with causal tracing: every pipeline
    /// hop (ingest → windowing → diagnosis → alarm → AL gate → oracle →
    /// retrain) records a trace event keyed by the deterministic
    /// `(seed, node, tick)` trace id, and the bounded flight recorder
    /// captures the causal window around shard panics, chaos faults and
    /// shutdown. The tracer's seed should equal `cfg.fleet.seed` so ids
    /// minted at the net gateway match the ones derived here.
    pub fn with_tracer(cfg: ServeConfig, obs: Obs, tracer: Tracer) -> Self {
        let plan = cfg.chaos.as_ref().map(|cz| {
            plan_for(
                cz,
                cfg.fleet.seed,
                cfg.fleet.duration_override_s,
                cfg.fleet.n_nodes,
                cfg.n_shards,
            )
        });
        Self::build(cfg, plan, obs, tracer)
    }

    /// Builds the service under an *explicit* fault plan — the replay
    /// path for a `FaultPlan` loaded back from JSON. The plan is run
    /// as-is; `cfg.chaos` is ignored for scheduling (it still shapes
    /// nothing else).
    pub fn with_chaos_plan(cfg: ServeConfig, plan: FaultPlan, obs: Obs) -> Self {
        Self::build(cfg, Some(plan), obs, Tracer::disabled())
    }

    fn build(cfg: ServeConfig, plan: Option<FaultPlan>, obs: Obs, tracer: Tracer) -> Self {
        assert!(cfg.n_shards >= 1, "need at least one shard");
        assert!(cfg.retrain_batch >= 1, "retrain batch must be positive");

        // The chaos runtime exists before any store I/O so that startup
        // store faults (read/write failpoints) can fire during the
        // initial campaign and fleet reads.
        let chaos = plan.map(ChaosRuntime::new);

        // Durable memoisation (optional): an unusable store degrades to
        // the purely in-memory path rather than failing the service.
        let store = cfg.store_dir.as_deref().and_then(|dir| {
            TelemetryStore::with_obs(dir, obs.clone())
                .map(|mut s| {
                    if let Some(cz) = &chaos {
                        s.set_fault_hook(Arc::new(cz.failpoints.io_hook("store")));
                    }
                    s
                })
                .map_err(|e| {
                    obs.event(
                        "store_fallback",
                        &[("dir", Value::Str(dir.to_string())), ("error", e.to_string().into())],
                    );
                })
                .ok()
        });

        // Offline phase: campaign → features → split → initial forest.
        let init_span = obs.span("service_init_ns", &[("stage", "train_initial")]);
        let sd = Self::system_data(&cfg, store.as_ref(), &obs);
        let split = prepare_split(&sd.dataset, &cfg.split, cfg.fleet.seed);
        let mut retrainer = Retrainer::new(&split.train, cfg.forest);
        let mut model = retrainer.fit();
        let view = split.feature_view();
        init_span.finish();

        // Warm restart: replay the label journal, folding every committed
        // round back into the retrainer. Refits are round-seeded, so the
        // restored model is bit-identical to the pre-shutdown one without
        // re-spending the labelling budget.
        let mut swap_ticks = Vec::new();
        let journal = store.as_ref().and_then(|s| {
            Self::restore_from_journal(
                s,
                &cfg,
                &obs,
                &tracer,
                &mut retrainer,
                &mut model,
                &mut swap_ticks,
            )
        });
        if let (Some(j), Some(cz)) = (&journal, &chaos) {
            j.set_fault_hook(Arc::new(cz.failpoints.io_hook("journal")));
        }

        // Online phase: a fresh (salted-seed) campaign streams the fleet.
        let build_span = obs.span("service_init_ns", &[("stage", "build_replay")]);
        let replay_cfg = FleetConfig { seed: cfg.fleet.seed ^ REPLAY_SALT, ..cfg.fleet };
        let replay = match &store {
            Some(s) => Self::replay_via_store(s, &replay_cfg, &obs),
            None => ReplaySource::build(&replay_cfg),
        };
        // Root hop of every causal chain this run will mint: where the
        // fleet's telemetry came from (store-memoised or generated) and
        // how much journaled history the warm restart folded back in.
        tracer.hop(
            Lane::Service,
            &tracer.service_ctx(0),
            "store_read",
            &[
                ("stored", Value::from(store.is_some())),
                ("nodes", Value::from(replay.n_nodes())),
                ("restored_rounds", Value::from(swap_ticks.len())),
            ],
        );
        let oracle = replay.truth_labels();
        let mut ingest = IngestLayer::with_obs(replay.n_nodes(), cfg.queue_capacity, obs.clone())
            .expect_width(replay.metrics().len());

        // Seeded node→shard assignment: shuffle, then round-robin.
        let mut nodes: Vec<usize> = (0..replay.n_nodes()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.fleet.seed ^ SHARD_SALT);
        nodes.shuffle(&mut rng);
        let n_shards = cfg.n_shards.min(nodes.len());
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        let mut shard_of = vec![0usize; nodes.len()];
        for (i, &n) in nodes.iter().enumerate() {
            per_shard[i % n_shards].push(n);
            shard_of[n] = i % n_shards;
        }
        ingest.assign_shards(per_shard.clone());
        let extractor: Arc<dyn FeatureExtractor + Send + Sync> = match cfg.method {
            FeatureMethod::Mvts => Arc::new(Mvts),
            FeatureMethod::TsFresh => Arc::new(TsFresh),
        };
        let shards = per_shard
            .into_iter()
            .enumerate()
            .map(|(id, ns)| {
                Shard::new(
                    id,
                    ns,
                    Arc::clone(&model),
                    Arc::clone(&extractor),
                    replay.metrics(),
                    view.clone(),
                    &cfg.monitor,
                    cfg.batched,
                    obs.clone(),
                )
            })
            .collect();
        build_span.finish();

        let label_queue = LabelQueue::new(cfg.label_queue_capacity);
        let journal_backoff = Backoff { seed: cfg.fleet.seed, ..Backoff::default() };
        Self {
            cfg,
            replay,
            ingest,
            shards,
            shard_of,
            pool: PoolCell(None),
            extractor,
            view,
            model,
            label_queue,
            retrainer,
            journal,
            oracle,
            alarm_log: Vec::new(),
            alarms_by_label: BTreeMap::new(),
            swap_ticks,
            tick: 0,
            samples_emitted: 0,
            wall_ns: 0,
            chaos,
            journal_backoff,
            oracle_misses: 0,
            journal_reopens: 0,
            journal_failures: 0,
            obs,
            tracer,
        }
    }

    /// Offline training data, through the store when one is configured.
    fn system_data(cfg: &ServeConfig, store: Option<&TelemetryStore>, obs: &Obs) -> SystemData {
        let (system, method, scale, seed) =
            (cfg.fleet.system, cfg.method, cfg.fleet.scale, cfg.fleet.seed);
        let Some(s) = store else {
            return SystemData::generate(system, method, scale, seed);
        };
        match SystemData::generate_stored(s, system, method, scale, seed) {
            Ok(sd) => sd,
            Err(e) => {
                obs.event(
                    "store_fallback",
                    &[
                        ("dir", s.root().display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                );
                SystemData::generate(system, method, scale, seed)
            }
        }
    }

    /// Opens the service's label journal and folds every committed round
    /// back into `retrainer`/`model`. A round is committed iff its labels
    /// are followed by a retrain marker; trailing unmarked labels (a
    /// crash mid-round) are dropped. Restored rounds land in
    /// `swap_ticks`, so they count against `max_retrains`.
    #[allow(clippy::too_many_arguments)]
    fn restore_from_journal(
        store: &TelemetryStore,
        cfg: &ServeConfig,
        obs: &Obs,
        tracer: &Tracer,
        retrainer: &mut Retrainer,
        model: &mut Arc<DiagnosisModel>,
        swap_ticks: &mut Vec<usize>,
    ) -> Option<LabelJournal> {
        // The journal is keyed by the full service config *minus* the
        // store location and chaos shape, so moving a store does not
        // orphan its journals and a chaotic run shares its journal with
        // the fault-free equivalent (warm restart must converge to the
        // same model either way).
        let mut key_cfg = cfg.clone();
        key_cfg.store_dir = None;
        key_cfg.chaos = None;
        key_cfg.n_workers = 0;
        let path = store.journal_path(&key_of("serve", &key_cfg));
        let (journal, records) = match LabelJournal::open(&path) {
            Ok(v) => v,
            Err(e) => {
                obs.event(
                    "store_fallback",
                    &[("dir", path.display().to_string().into()), ("error", e.to_string().into())],
                );
                return None;
            }
        };
        if !records.is_empty() {
            let _span = obs.span("service_init_ns", &[("stage", "replay_journal")]);
            let mut batch = Vec::new();
            for rec in &records {
                match rec.kind.as_str() {
                    KIND_LABEL => batch.push((rec.row.clone(), rec.label.clone())),
                    KIND_RETRAIN => {
                        *model = retrainer.fold_in(std::mem::take(&mut batch));
                        swap_ticks.push(rec.at);
                    }
                    _ => {}
                }
            }
            obs.event(
                "warm_restart",
                &[
                    ("rounds", Value::from(swap_ticks.len())),
                    ("records", Value::from(records.len())),
                    ("uncommitted", Value::from(batch.len())),
                ],
            );
            tracer.hop(
                Lane::Service,
                &tracer.service_ctx(0),
                "journal_replay",
                &[
                    ("rounds", Value::from(swap_ticks.len())),
                    ("records", Value::from(records.len())),
                ],
            );
        }
        Some(journal)
    }

    /// The replay fleet through the store: a warm entry skips stream
    /// generation entirely, a miss generates and persists, and a corrupt
    /// entry self-heals. Store write failures only cost the memoisation.
    fn replay_via_store(store: &TelemetryStore, cfg: &FleetConfig, obs: &Obs) -> ReplaySource {
        let key = key_of("fleet", cfg);
        match store.read_samples("fleet", &key) {
            Ok(Some(samples)) => {
                obs.counter("store_cache_hits_total", &[("kind", "fleet")]).inc();
                let streams = samples
                    .into_iter()
                    .map(|telemetry| {
                        let app = telemetry.meta.app.clone();
                        NodeStream { telemetry, app }
                    })
                    .collect();
                return ReplaySource::from_streams(streams);
            }
            Ok(None) => {}
            Err(e) => {
                obs.counter("store_corrupt_entries_total", &[("kind", "fleet")]).inc();
                obs.event(
                    "store_self_heal",
                    &[("kind", "fleet".into()), ("error", e.to_string().into())],
                );
            }
        }
        obs.counter("store_cache_misses_total", &[("kind", "fleet")]).inc();
        let replay = ReplaySource::build(cfg);
        let telemetry: Vec<_> = replay.streams().iter().map(|s| s.telemetry.clone()).collect();
        let config_json = serde_json::to_string(cfg).unwrap_or_default();
        if let Err(e) = store.write_samples("fleet", &key, &config_json, &telemetry) {
            obs.event(
                "store_fallback",
                &[
                    ("dir", store.root().display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
        replay
    }

    /// Advances the service by one second of fleet time. Returns `false`
    /// once the replay is exhausted and every queue has drained.
    pub fn tick(&mut self) -> bool {
        // alba-lint: allow(no-ambient-time) reason="wall busy-time measurement only; excluded from replay-identity artifacts"
        let start = Instant::now();
        let now = self.tick;

        // 0. Chaos pre-stage: open this tick's fault windows (emitting
        //    `fault_injected` events on the tick thread, in plan order)
        //    and arm the machinery they target.
        if self.chaos.is_some() {
            self.open_fault_windows(now);
        }

        // 1. Replay emits; the ingest layer buffers (or sheds). Under
        //    chaos every sample first passes the telemetry injector and
        //    the quarantine gate.
        let trace_t0 = self.tracer.now_ns();
        let ingest_span = self.obs.span("stage_ns", &[("stage", "ingest")]);
        let emitted = self.replay.tick();
        let n_emitted = emitted.len();
        self.offer_batch(emitted, now);
        ingest_span.finish();
        self.trace_stage(now, "ingest", trace_t0, n_emitted as u64);

        self.tick_core(now);
        self.tick += 1;
        self.wall_ns += start.elapsed().as_nanos() as u64;
        !(self.replay.is_exhausted() && self.ingest.is_empty())
    }

    /// Advances the service by one tick fed from a [`NetFrontier`]
    /// instead of the in-process replay source — the entry point the
    /// `alba-net` gateway (and its ingest-log replay) drives. Everything
    /// downstream of ingest is identical to [`FleetService::tick`]:
    /// because the frontier hands over the *same samples at the same
    /// ticks* whether live or replayed, the event log, alarms and model
    /// evolution are byte-identical across the network boundary.
    ///
    /// Returns `false` once the frontier is done and every queue has
    /// drained.
    pub fn tick_from(&mut self, frontier: &mut dyn NetFrontier) -> bool {
        // alba-lint: allow(no-ambient-time) reason="wall busy-time measurement only; excluded from replay-identity artifacts"
        let start = Instant::now();
        let now = self.tick;
        if self.chaos.is_some() {
            self.open_fault_windows(now);
        }
        let trace_t0 = self.tracer.now_ns();
        let ingest_span = self.obs.span("stage_ns", &[("stage", "ingest")]);
        let emitted = frontier.poll(now);
        let n_emitted = emitted.len();
        self.offer_batch(emitted, now);
        ingest_span.finish();
        self.trace_stage(now, "ingest", trace_t0, n_emitted as u64);

        self.tick_core(now);
        self.tick += 1;
        self.wall_ns += start.elapsed().as_nanos() as u64;
        !(frontier.is_done(self.tick) && self.ingest.is_empty())
    }

    /// Offers one tick's emitted samples into ingest, through the chaos
    /// injector/quarantine gate when the run is chaotic.
    fn offer_batch(&mut self, emitted: Vec<TelemetrySample>, now: usize) {
        self.samples_emitted += emitted.len() as u64;
        if self.chaos.is_some() {
            for s in emitted {
                self.offer_through_chaos(s, now);
            }
        } else if self.tracer.is_enabled() {
            for s in emitted {
                let (node, at) = (s.node, s.at);
                let accepted = self.ingest.offer(s);
                Self::trace_ingest(
                    &self.tracer,
                    &self.shard_of,
                    node,
                    at,
                    if accepted { "accepted" } else { "shed" },
                );
            }
        } else {
            for s in emitted {
                self.ingest.offer(s);
            }
        }
    }

    /// Records one per-sample ingest hop on the owning shard's lane.
    /// The hop's trace id is derived from `(seed, node, at)` — the same
    /// id the net gateway minted when it decoded the sample's frame, so
    /// the chain is causal across the wire without carrying an id in it.
    /// (Associated fn over disjoint fields: callers hold `&mut
    /// self.chaos` while tracing.)
    fn trace_ingest(tracer: &Tracer, shard_of: &[usize], node: usize, at: usize, outcome: &str) {
        if !tracer.is_enabled() {
            return;
        }
        let lane = shard_of.get(node).map_or(Lane::Service, |&s| Lane::Shard(s as u32));
        tracer.hop(
            lane,
            &tracer.ctx(node, at),
            "ingest_offer",
            &[("outcome", Value::Str(outcome.to_string()))],
        );
    }

    /// Records one per-tick pipeline-stage hop on the service lane with
    /// its duration against the tracer's clock.
    fn trace_stage(&self, now: usize, stage: &str, t0: u64, items: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.hop(
            Lane::Service,
            &self.tracer.service_ctx(now),
            stage,
            &[
                ("dur_ns", Value::from(self.tracer.now_ns().saturating_sub(t0))),
                ("items", Value::from(items)),
            ],
        );
    }

    /// Stages 2–5 of a tick (drain → process → alarm bus → feedback),
    /// shared by the replay-driven and frontier-driven entry points.
    fn tick_core(&mut self, now: usize) {
        // 2. Each shard drains its nodes' queues into one tick batch —
        //    the ingest layer holds the shard partition, so the drain
        //    feeds per-shard input batches directly.
        let trace_t0 = self.tracer.now_ns();
        let drain_span = self.obs.span("stage_ns", &[("stage", "drain")]);
        let batches: Vec<Vec<TelemetrySample>> =
            (0..self.shards.len()).map(|sid| self.ingest.drain_shard(sid)).collect();
        drain_span.finish();
        self.trace_stage(
            now,
            "drain",
            trace_t0,
            batches.iter().map(Vec::len).sum::<usize>() as u64,
        );

        // 3. Shards process in parallel on the pool: each shard is moved
        //    onto its statically assigned worker (`slot % workers`) for
        //    the epoch, and the barrier hands results back in shard
        //    order, so the merge below is deterministic at any worker
        //    count. Each shard runs under its supervisor: a panicking
        //    shard is caught on the worker, returned with its panic
        //    payload, and restarted here (on the tick thread) with the
        //    current — i.e. last-journaled — model re-installed.
        let trace_t0 = self.tracer.now_ns();
        let process_span = self.obs.span("stage_ns", &[("stage", "process")]);
        let n_workers = self.effective_workers();
        let mut pool = match self.pool.0.take() {
            Some(p) if p.n_workers() == n_workers => p,
            _ => Pool::new(n_workers, self.obs.clone(), |_w, mut job: ShardJob| {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    job.shard.process(&job.batch, job.now)
                }));
                ShardDone { shard: job.shard, outcome }
            }),
        };
        let jobs: Vec<ShardJob> = std::mem::take(&mut self.shards)
            .into_iter()
            .zip(batches)
            .map(|(shard, batch)| ShardJob { shard, batch, now })
            .collect();
        let done = pool.run_epoch(jobs);
        self.pool.0 = Some(pool);
        let mut reports = Vec::with_capacity(done.len());
        for (id, slot) in done.into_iter().enumerate() {
            match slot {
                Ok(ShardDone { shard, outcome: Ok(report) }) => {
                    self.shards.push(shard);
                    reports.push(report);
                }
                Ok(ShardDone { shard, outcome: Err(_) }) => {
                    // Supervisor: rebuild the shard (fresh monitors, the
                    // deployed model, counters carried over). The tick's
                    // batch for this shard is lost — exactly what a real
                    // worker crash costs.
                    self.shards.push(shard.respawn());
                    if let Some(cz) = &mut self.chaos {
                        cz.stats.shard_restarts += 1;
                    }
                    self.obs.event(
                        "shard_restart",
                        &[("shard", Value::from(id)), ("tick", Value::from(now))],
                    );
                    // The flight recorder's raison d'être: capture the
                    // causal window around the crash before the respawned
                    // shard starts overwriting ring history.
                    self.tracer.hop(
                        Lane::Shard(id as u32),
                        &self.tracer.service_ctx(now),
                        "shard_panic",
                        &[("shard", Value::from(id))],
                    );
                    self.tracer.dump(&format!("panic_shard{id}"));
                    reports.push(ShardReport::default());
                }
                Err(_) => {
                    // Backstop for a worker dying so hard the shard never
                    // came back (the pool respawned the thread, but the
                    // in-flight job was lost): rebuild the shard from the
                    // service's own catalog. Lifetime counters reset —
                    // the `shard_lost` event flags the discontinuity.
                    let fresh = self.rebuild_shard(id);
                    self.shards.push(fresh);
                    self.obs.event(
                        "shard_lost",
                        &[("shard", Value::from(id)), ("tick", Value::from(now))],
                    );
                    self.tracer.dump(&format!("lost_shard{id}"));
                    reports.push(ShardReport::default());
                }
            }
        }
        process_span.finish();
        self.trace_stage(now, "process", trace_t0, self.shards.len() as u64);

        // 4. Alarm bus + uncertainty gate. Events are emitted here, on
        //    the tick thread in shard order — never from the parallel
        //    section above — so event logs are deterministic.
        let trace_t0 = self.tracer.now_ns();
        let alarm_span = self.obs.span("stage_ns", &[("stage", "alarm")]);
        let gating_open = self.swap_ticks.len() < self.cfg.max_retrains;
        let mut n_windows = 0u64;
        for (sid, report) in reports.into_iter().enumerate() {
            let lane = Lane::Shard(sid as u32);
            n_windows += report.windows.len() as u64;
            if self.tracer.is_enabled() {
                for w in &report.windows {
                    self.tracer.hop(
                        lane,
                        &self.tracer.ctx(w.node, w.at),
                        "diagnose",
                        &[
                            ("label", Value::Str(w.diagnosis.label.clone())),
                            ("uncertainty", Value::from(w.uncertainty)),
                            ("latency_ticks", Value::from(now.saturating_sub(w.at))),
                        ],
                    );
                }
            }
            for na in report.alarms {
                self.obs.event(
                    "alarm",
                    &[
                        ("node", Value::from(na.node)),
                        ("label", Value::Str(na.alarm.label.clone())),
                        ("confidence", Value::from(na.alarm.confidence)),
                        ("tick", Value::from(now)),
                    ],
                );
                self.tracer.hop(
                    lane,
                    &self.tracer.ctx(na.node, now),
                    "alarm",
                    &[
                        ("label", Value::Str(na.alarm.label.clone())),
                        ("confidence", Value::from(na.alarm.confidence)),
                    ],
                );
                *self.alarms_by_label.entry(na.alarm.label.clone()).or_insert(0) += 1;
                self.alarm_log.push(na);
            }
            if gating_open {
                for w in &report.windows {
                    if w.uncertainty >= self.cfg.uncertainty_threshold {
                        let accepted = self.label_queue.offer(LabelRequest::from_window(w));
                        self.obs.event(
                            "label_request",
                            &[
                                ("node", Value::from(w.node)),
                                ("at", Value::from(w.at)),
                                ("uncertainty", Value::from(w.uncertainty)),
                                ("accepted", Value::from(accepted)),
                            ],
                        );
                        self.tracer.hop(
                            lane,
                            &self.tracer.ctx(w.node, w.at),
                            "al_gate",
                            &[
                                ("uncertainty", Value::from(w.uncertainty)),
                                ("accepted", Value::from(accepted)),
                            ],
                        );
                    }
                }
            }
        }
        alarm_span.finish();
        self.trace_stage(now, "alarm", trace_t0, n_windows);

        // 5. Feedback: enough pending requests → label, retrain, swap.
        //    A deferred round (oracle down) breaks out; the requests stay
        //    queued and the next tick retries after (simulated) backoff.
        let trace_t0 = self.tracer.now_ns();
        let rounds_before = self.swap_ticks.len();
        let feedback_span = self.obs.span("stage_ns", &[("stage", "feedback")]);
        while self.label_queue.len() >= self.cfg.retrain_batch
            && self.swap_ticks.len() < self.cfg.max_retrains
        {
            if !self.retrain_round() {
                break;
            }
        }
        feedback_span.finish();
        self.trace_stage(now, "feedback", trace_t0, (self.swap_ticks.len() - rounds_before) as u64);
    }

    /// Worker threads the shard pool should run on right now:
    /// `cfg.n_workers`, with `0` meaning "one per core", and never more
    /// workers than shards (the assignment is static, so extra workers
    /// would only idle).
    fn effective_workers(&self) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        let w = if self.cfg.n_workers == 0 { auto } else { self.cfg.n_workers };
        w.min(self.shards.len().max(1)).max(1)
    }

    /// Rebuilds shard `id` from the service's own catalog — the
    /// last-resort path when a pool worker died without handing the
    /// shard back. Node order is ascending (deterministic in
    /// `shard_of`, which is seeded), monitors and counters start fresh.
    fn rebuild_shard(&self, id: usize) -> Shard {
        let nodes: Vec<usize> =
            self.shard_of.iter().enumerate().filter(|&(_, &s)| s == id).map(|(n, _)| n).collect();
        Shard::new(
            id,
            nodes,
            Arc::clone(&self.model),
            Arc::clone(&self.extractor),
            self.replay.metrics(),
            self.view.clone(),
            &self.cfg.monitor,
            self.cfg.batched,
            self.obs.clone(),
        )
    }

    /// Services one batch of label requests through the oracle, refits
    /// and hot-swaps the model into every shard. Returns `false` when
    /// the round was *deferred* — the oracle is down, the requests stay
    /// queued, and (simulated) backoff is charged — so callers must not
    /// loop on a deferral.
    fn retrain_round(&mut self) -> bool {
        let now = self.tick;
        // Oracle availability gate: during an outage window the round is
        // deferred with bounded, seeded backoff — requests are *not*
        // taken from the queue, so nothing is lost.
        if let Some(cz) = &mut self.chaos {
            if cz.oracle_down(now) {
                let wait = cz.oracle_backoff_ns();
                cz.oracle_attempt = cz.oracle_attempt.saturating_add(1);
                cz.stats.oracle_timeouts += 1;
                cz.stats.backoff_waits += 1;
                cz.stats.backoff_ns += wait;
                self.obs.event(
                    "oracle_timeout",
                    &[
                        ("tick", Value::from(now)),
                        ("attempt", Value::from(cz.oracle_attempt as u64)),
                        ("backoff_ns", Value::from(wait)),
                    ],
                );
                self.tracer.hop(
                    Lane::Service,
                    &self.tracer.service_ctx(now),
                    "oracle_defer",
                    &[
                        ("attempt", Value::from(cz.oracle_attempt as u64)),
                        ("backoff_ns", Value::from(wait)),
                    ],
                );
                return false;
            }
            if cz.oracle_attempt > 0 {
                cz.stats.oracle_recoveries += 1;
                self.obs.event(
                    "oracle_recovery",
                    &[
                        ("tick", Value::from(now)),
                        ("after_attempts", Value::from(cz.oracle_attempt as u64)),
                    ],
                );
                cz.oracle_attempt = 0;
            }
        }
        let reqs = self.label_queue.take(self.cfg.retrain_batch);
        if reqs.is_empty() {
            return true;
        }
        let mut labelled: Vec<(Vec<f64>, String)> = Vec::with_capacity(reqs.len());
        for r in reqs {
            // A request for a node outside the oracle's truth table is a
            // typed error, not an index panic.
            let Some(truth) = self.oracle.get(r.node).cloned() else {
                self.oracle_misses += 1;
                self.obs.event(
                    "oracle_miss",
                    &[("node", Value::from(r.node)), ("at", Value::from(r.at))],
                );
                continue;
            };
            // Write-ahead: the labelled row hits the journal before the
            // retrainer ever sees it (retried under bounded backoff; a
            // torn append heals by reopening the journal).
            self.journal_append_retrying(|j| j.append_label(r.node, r.at, &truth, &r.row));
            let lane = self.shard_of.get(r.node).map_or(Lane::Service, |&s| Lane::Shard(s as u32));
            self.tracer.hop(
                lane,
                &self.tracer.ctx(r.node, r.at),
                "oracle_label",
                &[
                    ("truth", Value::Str(truth.clone())),
                    ("predicted", Value::Str(r.predicted.label.clone())),
                    ("uncertainty", Value::from(r.uncertainty)),
                ],
            );
            labelled.push((r.row, truth));
        }
        if labelled.is_empty() {
            return true;
        }
        let trace_t0 = self.tracer.now_ns();
        let retrain_span = self.obs.span("retrain_ns", &[]);
        let model = self.retrainer.fold_in(labelled);
        retrain_span.finish();
        for sh in &mut self.shards {
            sh.set_model(Arc::clone(&model));
        }
        self.model = model;
        self.label_queue.record_retrain();
        // The marker commits the round: journal replay folds in exactly
        // the label batches that reached this point.
        let round = self.swap_ticks.len() as u64 + 1;
        self.journal_append_retrying(|j| j.append_retrain(round, now));
        self.obs.event(
            "model_swap",
            &[
                ("tick", Value::from(self.tick)),
                ("round", Value::from(self.swap_ticks.len() + 1)),
                ("train_samples", Value::from(self.retrainer.n_samples())),
            ],
        );
        self.tracer.hop(
            Lane::Service,
            &self.tracer.service_ctx(now),
            "retrain",
            &[
                ("round", Value::from(self.swap_ticks.len() + 1)),
                ("train_samples", Value::from(self.retrainer.n_samples())),
                ("dur_ns", Value::from(self.tracer.now_ns().saturating_sub(trace_t0))),
            ],
        );
        self.swap_ticks.push(self.tick);
        true
    }

    /// Opens this tick's fault windows: emits one `fault_injected` event
    /// per starting fault (tick thread, plan order) and arms the
    /// machinery the fault targets. Telemetry faults need no arming —
    /// the injector consults the plan per sample.
    fn open_fault_windows(&mut self, now: usize) {
        let Some(cz) = &mut self.chaos else { return };
        for e in cz.starting_at(now) {
            cz.stats.faults_started += 1;
            self.obs.event(
                "fault_injected",
                &[
                    ("fault", Value::from(e.kind.name())),
                    ("tick", Value::from(e.tick)),
                    ("duration", Value::from(e.duration)),
                    ("target", Value::from(e.target)),
                    ("magnitude", Value::from(e.magnitude)),
                ],
            );
            self.tracer.hop(
                Lane::Service,
                &self.tracer.service_ctx(now),
                "fault",
                &[
                    ("fault", Value::from(e.kind.name())),
                    ("target", Value::from(e.target)),
                    ("duration", Value::from(e.duration)),
                ],
            );
            // Every injected fault captures the causal window around it:
            // one bounded dump per fault kind, overwritten on re-fire so
            // a storm cannot flood the dump directory.
            self.tracer.dump(&format!("fault_{}", e.kind.name()));
            match e.kind {
                FaultKind::ShardPanic => {
                    if let Some(sh) = self.shards.get_mut(e.target) {
                        sh.arm_panic();
                    }
                }
                // Runtime store faults land on the journal — the only
                // store I/O after startup. A write error fails the next
                // append outright; an fsync failure tears it mid-record.
                FaultKind::StoreWriteError => cz.failpoints.arm("journal.append", 1),
                FaultKind::FsyncFailure => cz.failpoints.arm("journal.torn", 1),
                _ => {}
            }
        }
    }

    /// Routes one replay sample through the telemetry injector and the
    /// quarantine gate, then into ingest. Storm duplicates are offered
    /// after the original (stressing the bounded queues); quarantined
    /// nodes' samples are fenced off before ingest sees them.
    fn offer_through_chaos(&mut self, mut s: TelemetrySample, now: usize) {
        let Some(cz) = &mut self.chaos else {
            self.ingest.offer(s);
            return;
        };
        let node = s.node;
        match cz.injector.apply(node, now, &mut s.at, &mut s.values) {
            InjectAction::Drop => {
                Self::trace_ingest(&self.tracer, &self.shard_of, node, s.at, "blackout_drop");
            }
            InjectAction::Deliver { duplicates } => {
                let bad = TelemetryInjector::looks_garbage(&s.values);
                match cz.gate.observe(node, bad) {
                    Transition::Entered => {
                        self.obs.event(
                            "quarantine_enter",
                            &[("node", Value::from(node)), ("tick", Value::from(now))],
                        );
                    }
                    Transition::Released => {
                        self.obs.event(
                            "quarantine_release",
                            &[("node", Value::from(node)), ("tick", Value::from(now))],
                        );
                    }
                    Transition::None => {}
                }
                if cz.gate.is_quarantined(node) {
                    cz.stats.quarantine_drops += 1;
                    Self::trace_ingest(&self.tracer, &self.shard_of, node, s.at, "quarantined");
                    return;
                }
                let at = s.at;
                let accepted = self.ingest.offer(s.clone());
                Self::trace_ingest(
                    &self.tracer,
                    &self.shard_of,
                    node,
                    at,
                    if accepted { "accepted" } else { "shed" },
                );
                for _ in 0..duplicates {
                    self.ingest.offer(s.clone());
                }
            }
        }
    }

    /// Appends to the journal under the bounded retry policy. A torn
    /// append (simulated crash mid-record) heals by reopening the
    /// journal — which truncates the tear — before retrying; other
    /// errors retry after (simulated, counted) backoff. Exhausting the
    /// budget counts a `journal_failures` error and drops the record
    /// from durable storage only — the in-memory round still completes.
    fn journal_append_retrying<F>(&mut self, op: F)
    where
        F: Fn(&LabelJournal) -> alba_store::Result<u64>,
    {
        let Some(journal) = self.journal.clone() else { return };
        let mut journal = journal;
        let mut attempt: u32 = 0;
        loop {
            let err = match op(&journal) {
                Ok(_) => {
                    if attempt > 0 {
                        if let Some(cz) = &mut self.chaos {
                            cz.stats.journal_recoveries += 1;
                        }
                    }
                    return;
                }
                Err(e) => e,
            };
            let torn = matches!(err, StoreError::TruncatedTail { .. });
            self.obs.event(
                "journal_error",
                &[
                    ("error", Value::from(err.to_string())),
                    ("attempt", Value::from(attempt as u64)),
                    ("torn", Value::from(torn)),
                ],
            );
            if torn {
                // Reopen truncates the half-written record; appending
                // then resumes on a record boundary.
                match LabelJournal::open(journal.path()) {
                    Ok((fresh, _)) => {
                        if let Some(cz) = &self.chaos {
                            fresh.set_fault_hook(Arc::new(cz.failpoints.io_hook("journal")));
                        }
                        self.journal_reopens += 1;
                        self.journal = Some(fresh.clone());
                        journal = fresh;
                    }
                    Err(e) => {
                        self.obs.event(
                            "journal_error",
                            &[("error", Value::from(e.to_string())), ("fatal", Value::from(true))],
                        );
                        self.journal_failures += 1;
                        return;
                    }
                }
            }
            match self.journal_backoff.delay_ns(attempt) {
                Some(wait) => {
                    if let Some(cz) = &mut self.chaos {
                        cz.stats.backoff_waits += 1;
                        cz.stats.backoff_ns += wait;
                    }
                }
                None => {
                    self.journal_failures += 1;
                    return;
                }
            }
            attempt += 1;
        }
    }

    /// Runs at most `max_ticks` ticks; returns how many actually ran.
    pub fn run(&mut self, max_ticks: usize) -> usize {
        let mut ran = 0;
        while ran < max_ticks {
            let more = self.tick();
            ran += 1;
            if !more {
                break;
            }
        }
        ran
    }

    /// Runs until the replay is exhausted and all queues are drained,
    /// then services any leftover label requests (a final retrain round,
    /// if the budget allows).
    pub fn run_to_completion(&mut self) -> ServiceStats {
        while self.tick() {}
        if !self.label_queue.is_empty() && self.swap_ticks.len() < self.cfg.max_retrains {
            self.retrain_round();
        }
        self.tracer.dump("shutdown");
        self.stats()
    }

    /// Runs the service to completion fed from a [`NetFrontier`] (at
    /// most `max_ticks` ticks, a liveness bound for frontiers whose
    /// senders never close). Leftover label requests get a final retrain
    /// round if the budget allows, exactly as
    /// [`FleetService::run_to_completion`] does; the returned stats
    /// carry the frontier's per-tenant accounting.
    pub fn run_frontier(
        &mut self,
        frontier: &mut dyn NetFrontier,
        max_ticks: usize,
    ) -> ServiceStats {
        let mut ran = 0;
        while ran < max_ticks {
            let more = self.tick_from(frontier);
            ran += 1;
            if !more {
                break;
            }
        }
        if !self.label_queue.is_empty() && self.swap_ticks.len() < self.cfg.max_retrains {
            self.retrain_round();
        }
        self.tracer.dump("shutdown");
        let mut stats = self.stats();
        stats.tenants = frontier.tenant_stats();
        stats
    }

    /// The full per-tick batch schedule of this service's (held-out)
    /// replay fleet: `batches[t]` is what [`FleetService::tick`] would
    /// ingest at tick `t`. The service's own replay cursor is untouched.
    ///
    /// This is the deterministic client's feed: a gateway client streams
    /// these exact samples over the wire, so a frontier-driven run can be
    /// compared 1:1 against the in-process replay path.
    pub fn fleet_batches(&self) -> Vec<Vec<TelemetrySample>> {
        let mut replay = self.replay.clone();
        let mut batches = Vec::new();
        while !replay.is_exhausted() {
            batches.push(replay.tick());
        }
        batches
    }

    /// Snapshot of the service statistics.
    pub fn stats(&self) -> ServiceStats {
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .map(|sh| {
                ShardSnapshot::new(
                    sh.id(),
                    sh.nodes().len(),
                    *sh.stats(),
                    sh.busy_histogram(),
                    sh.latency_histogram(),
                )
            })
            .collect();
        let windows: u64 = shards.iter().map(|s| s.counters.windows).sum();
        let alarms: u64 = shards.iter().map(|s| s.counters.alarms).sum();
        // Fleet-wide latency: per-shard histograms merge exactly.
        let mut merged = Histogram::new();
        for sh in &self.shards {
            merged.merge(sh.latency_histogram());
        }
        let wall_s = self.wall_ns as f64 / 1e9;
        let mut feedback = self.label_queue.stats();
        feedback.retrains = self.swap_ticks.len() as u64;
        let ingest_stats = self.ingest.stats();
        let errors = ErrorStats {
            unroutable_samples: ingest_stats.unroutable,
            queue_full_drops: ingest_stats.dropped,
            malformed_ingest_drops: ingest_stats.malformed,
            malformed_samples: self.shards.iter().map(|sh| sh.stats().malformed).sum(),
            oracle_misses: self.oracle_misses,
            journal_reopens: self.journal_reopens,
            journal_failures: self.journal_failures,
        };
        ServiceStats {
            ticks: self.tick,
            samples_emitted: self.samples_emitted,
            ingest: ingest_stats,
            shards,
            windows,
            latency: LatencySummary::from_histogram(&merged),
            alarms,
            alarms_by_label: self.alarms_by_label.clone(),
            feedback,
            errors,
            chaos: self.chaos.as_ref().map(ChaosRuntime::snapshot),
            tenants: Vec::new(),
            swap_ticks: self.swap_ticks.clone(),
            wall_ms: self.wall_ns / 1_000_000,
            windows_per_s: if wall_s > 0.0 { windows as f64 / wall_s } else { 0.0 },
        }
    }

    /// The observability handle the service was built with (disabled
    /// unless [`FleetService::with_obs`] was used).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The causal tracer (disabled unless [`FleetService::with_tracer`]
    /// was used).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Full flight-recorder contents as JSONL — what the control
    /// plane's `/flightrec` endpoint serves. Empty when tracing is off.
    pub fn flightrec(&self) -> String {
        self.tracer.flightrec("endpoint")
    }

    /// Recent trace events for `node` as a JSON array (what
    /// `/trace/<node>` serves), or `None` when the node id is out of
    /// range.
    pub fn trace_recent_json(&self, node: usize) -> Option<String> {
        (node < self.n_nodes()).then(|| self.tracer.trace_json(node))
    }

    /// Prometheus-style text exposition: every metric in the obs
    /// registry plus the per-shard busy/latency histograms.
    pub fn prometheus(&self) -> String {
        let mut out = self.obs.expose();
        for sh in &self.shards {
            let label = format!("shard=\"{}\"", sh.id());
            sh.busy_histogram().snapshot().expose_into("shard_busy_ns", &label, &mut out);
            sh.latency_histogram().snapshot().expose_into("shard_latency_ticks", &label, &mut out);
        }
        out
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Fleet size.
    pub fn n_nodes(&self) -> usize {
        self.replay.n_nodes()
    }

    /// Every confirmed alarm so far, in confirmation order.
    pub fn alarms(&self) -> &[NodeAlarm] {
        &self.alarm_log
    }

    /// Ticks at which a refreshed model was hot-swapped in.
    pub fn swap_ticks(&self) -> &[usize] {
        &self.swap_ticks
    }

    /// The currently deployed model.
    pub fn model(&self) -> &Arc<DiagnosisModel> {
        &self.model
    }

    /// Ground-truth label of one fleet node's stream.
    pub fn truth(&self, node: usize) -> &str {
        self.replay.truth(node)
    }

    /// The monitor serving one fleet node (for inspection).
    pub fn monitor(&self, node: usize) -> &NodeMonitor {
        self.shards[self.shard_of[node]].monitor(node)
    }

    /// Pending label requests.
    pub fn pending_label_requests(&self) -> usize {
        self.label_queue.len()
    }

    /// Snapshot of the pending label requests, oldest first — what the
    /// control plane's label-queue endpoint serves.
    pub fn label_requests(&self) -> Vec<LabelRequest> {
        self.label_queue.pending().cloned().collect()
    }

    /// The fault plan driving this run, when it is chaotic. Serialise it
    /// with [`FaultPlan::to_json`] to replay the exact same chaos later.
    pub fn chaos_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref().map(|cz| &cz.plan)
    }

    /// Chaos injection/recovery counters, when the run is chaotic.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(ChaosRuntime::snapshot)
    }
}
