//! Worker shards: each shard owns a disjoint set of node monitors and
//! diagnoses their due windows as one *batch*.
//!
//! The per-node [`NodeMonitor`] hooks (`push` / `window_row` /
//! `apply_diagnosis`) let a shard buffer samples node-by-node but run
//! feature scaling and model inference once per batch of windows — the
//! amortisation the `serve_throughput` benchmark measures against the
//! node-at-a-time baseline (`batched = false`). Shards are `Send`, so
//! the service moves them onto its `alba-par` worker pool every tick;
//! each shard's report is assembled in deterministic node order
//! regardless of which thread ran it.

use crate::replay::TelemetrySample;
use alba_active::uncertainty_score;
use alba_data::{Matrix, MetricDef};
use alba_features::{ExtractScratch, FeatureExtractor, FeatureView};
use alba_ml::{Diagnosis, DiagnosisModel};
use alba_obs::{Counter, Histogram, Obs};
use albadross::{Alarm, MonitorConfig, NodeMonitor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// An alarm attributed to a fleet node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeAlarm {
    /// Fleet node index.
    pub node: usize,
    /// The confirmed alarm.
    pub alarm: Alarm,
}

/// One diagnosed window, with everything the feedback loop needs.
#[derive(Clone, Debug)]
pub struct WindowOutcome {
    /// Fleet node index.
    pub node: usize,
    /// Tick of the sample that completed the window.
    pub at: usize,
    /// The model's verdict.
    pub diagnosis: Diagnosis,
    /// Least-confidence uncertainty (`1 - max_k p_k`) of the verdict.
    pub uncertainty: f64,
    /// The scaled model-input row (reused for retraining).
    pub row: Vec<f64>,
}

/// What one shard produced during one service tick.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Alarms confirmed this tick.
    pub alarms: Vec<NodeAlarm>,
    /// Every window diagnosed this tick.
    pub windows: Vec<WindowOutcome>,
}

/// Per-shard throughput counters. Timing distributions (busy time,
/// queueing latency) live in the shard's [`Histogram`]s, not here —
/// see [`Shard::busy_histogram`] and [`Shard::latency_histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Samples ingested into this shard's monitors.
    pub samples: u64,
    /// Samples addressed to a node this shard does not own — skipped
    /// (and counted in the obs registry), never a panic.
    pub misrouted: u64,
    /// Windows diagnosed.
    pub windows: u64,
    /// Model invocations (1 per non-empty batch when batched; 1 per
    /// window otherwise).
    pub batches: u64,
    /// Largest single inference batch.
    pub max_batch: usize,
    /// Alarms confirmed.
    pub alarms: u64,
    /// Samples whose reading vector did not match the metric catalog —
    /// skipped (and counted), never an index panic inside the monitor.
    pub malformed: u64,
}

/// A worker shard owning the monitors of a disjoint node subset.
#[derive(Clone)]
pub struct Shard {
    id: usize,
    nodes: Vec<usize>,
    // alba-lint: allow(no-unordered-iteration) reason="lookup-only map (node id -> slot); never iterated, so ordering cannot leak into outputs"
    local: HashMap<usize, usize>,
    monitors: Vec<NodeMonitor>,
    model: Arc<DiagnosisModel>,
    extractor: Arc<dyn FeatureExtractor + Send + Sync>,
    metrics: Vec<MetricDef>,
    monitor_cfg: MonitorConfig,
    view: FeatureView,
    batched: bool,
    /// Injected-fault flag: the next [`Shard::process`] call panics
    /// (exercising the service's supervisor) instead of processing.
    panic_armed: bool,
    /// Reusable extraction buffers — one per shard, so the planned
    /// zero-copy path allocates nothing per window.
    scratch: ExtractScratch,
    stats: ShardStats,
    /// Wall-time per [`Shard::process`] call, nanoseconds.
    busy: Histogram,
    /// Queueing delay (service tick - sample tick) per window, ticks.
    latency: Histogram,
    obs: Obs,
    /// `"0"`, `"1"`, ... — the obs label value for this shard.
    label: String,
    misrouted_c: Counter,
}

impl Shard {
    /// Builds the shard and one monitor per assigned node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        nodes: Vec<usize>,
        model: Arc<DiagnosisModel>,
        extractor: Arc<dyn FeatureExtractor + Send + Sync>,
        metrics: &[MetricDef],
        view: FeatureView,
        monitor: &MonitorConfig,
        batched: bool,
        obs: Obs,
    ) -> Self {
        let monitors = nodes
            .iter()
            .map(|_| {
                NodeMonitor::new(
                    Arc::clone(&model),
                    Arc::clone(&extractor),
                    metrics.to_vec(),
                    view.clone(),
                    monitor.clone(),
                )
            })
            .collect();
        let local = nodes.iter().enumerate().map(|(l, &n)| (n, l)).collect();
        let label = id.to_string();
        let misrouted_c = obs.counter("shard_misrouted_total", &[("shard", &label)]);
        Self {
            id,
            nodes,
            local,
            monitors,
            model,
            extractor,
            metrics: metrics.to_vec(),
            monitor_cfg: monitor.clone(),
            view,
            batched,
            panic_armed: false,
            scratch: ExtractScratch::default(),
            stats: ShardStats::default(),
            busy: Histogram::new(),
            latency: Histogram::new(),
            obs,
            label,
            misrouted_c,
        }
    }

    /// Arms an injected panic: the next [`Shard::process`] call aborts
    /// via `panic!` before touching any monitor, exactly like a worker
    /// crashing between batches.
    pub fn arm_panic(&mut self) {
        self.panic_armed = true;
    }

    /// Rebuilds this shard after a panic: fresh monitors (in-memory
    /// window state is lost, as it would be in a real worker restart)
    /// running the shard's current model, with the lifetime counters and
    /// timing histograms carried over so stats never regress.
    pub fn respawn(&self) -> Shard {
        let mut fresh = Shard::new(
            self.id,
            self.nodes.clone(),
            Arc::clone(&self.model),
            Arc::clone(&self.extractor),
            &self.metrics,
            self.view.clone(),
            &self.monitor_cfg,
            self.batched,
            self.obs.clone(),
        );
        fresh.stats = self.stats;
        fresh.busy = self.busy.clone();
        fresh.latency = self.latency.clone();
        fresh
    }

    /// Shard index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Fleet nodes assigned to this shard.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// This shard's counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Wall-time distribution of [`Shard::process`] calls (nanoseconds).
    pub fn busy_histogram(&self) -> &Histogram {
        &self.busy
    }

    /// Queueing-delay distribution per diagnosed window (ticks between
    /// sample emission and diagnosis).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// One node's monitor (by fleet node index).
    pub fn monitor(&self, node: usize) -> &NodeMonitor {
        &self.monitors[self.local[&node]]
    }

    /// Hot-swaps the diagnosis model on the shard and every monitor.
    pub fn set_model(&mut self, model: Arc<DiagnosisModel>) {
        for m in &mut self.monitors {
            m.set_model(Arc::clone(&model));
        }
        self.model = model;
    }

    /// Ingests this tick's samples for the shard's nodes and diagnoses
    /// every due window — in one batched model call when `batched`.
    ///
    /// `now` is the service tick, used for latency accounting only.
    pub fn process(&mut self, samples: &[TelemetrySample], now: usize) -> ShardReport {
        if self.panic_armed {
            // Injected fault: die before mutating any monitor, so the
            // supervisor's respawn sees a consistent (pre-tick) shard.
            self.panic_armed = false;
            std::panic::panic_any(crate::chaos::InjectedPanic);
        }
        // Busy time against the obs clock: under a `TickClock` (the
        // replay-identity configuration) every duration is 0 no matter
        // which worker thread ran the shard, so the exposed histograms
        // stay byte-identical across worker counts; a `WallClock`
        // records real nanoseconds.
        let start = self.obs.now_ns();
        let mut report = ShardReport::default();

        // Buffer samples; collect the windows that came due.
        let extract_span =
            self.obs.span("shard_stage_ns", &[("stage", "extract"), ("shard", &self.label)]);
        let mut due: Vec<(usize, usize)> = Vec::new(); // (local monitor, sample tick)
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for s in samples {
            // A sample addressed to a foreign node is an upstream routing
            // bug; one bad packet must not panic the whole service.
            let Some(&l) = self.local.get(&s.node) else {
                self.stats.misrouted += 1;
                self.misrouted_c.inc();
                continue;
            };
            // A reading vector that disagrees with the catalog would
            // index out of bounds inside the monitor; count and skip.
            if s.values.len() != self.metrics.len() {
                self.stats.malformed += 1;
                self.obs.counter("shard_malformed_total", &[("shard", &self.label)]).inc();
                continue;
            }
            self.stats.samples += 1;
            // alba-lint: allow(reachable-panic) reason="one monitor per lane by construction"
            if self.monitors[l].push(&s.values) {
                let mut row = Vec::new();
                // alba-lint: allow(reachable-panic) reason="one monitor per lane by construction"
                self.monitors[l].window_row_into(&mut self.scratch, &mut row);
                rows.push(row);
                due.push((l, s.at));
            }
        }
        extract_span.finish();
        if due.is_empty() {
            self.busy.record(self.obs.now_ns().saturating_sub(start));
            return report;
        }

        // Scale + infer: one call over the whole batch, or window-at-a-time.
        let infer_span =
            self.obs.span("shard_stage_ns", &[("stage", "infer"), ("shard", &self.label)]);
        let proba: Vec<Vec<f64>> = if self.batched {
            let mut x = Matrix::from_rows(&rows);
            self.view.scale_inplace(&mut x);
            for (r, row) in rows.iter_mut().enumerate() {
                row.copy_from_slice(x.row(r));
            }
            self.stats.batches += 1;
            self.stats.max_batch = self.stats.max_batch.max(rows.len());
            let p = self.model.probabilities(&x);
            (0..p.rows()).map(|r| p.row(r).to_vec()).collect()
        } else {
            self.stats.batches += rows.len() as u64;
            self.stats.max_batch = self.stats.max_batch.max(1);
            rows.iter_mut()
                .map(|row| {
                    let mut x = Matrix::from_rows(std::slice::from_ref(row));
                    self.view.scale_inplace(&mut x);
                    row.copy_from_slice(x.row(0));
                    self.model.probabilities(&x).row(0).to_vec()
                })
                .collect()
        };
        infer_span.finish();

        // Verdicts + hysteresis, in sample order.
        let names = &self.model.class_names;
        for (((l, at), row), p) in due.into_iter().zip(rows).zip(&proba) {
            // alba-lint: allow(reachable-panic) reason="model output width is fixed and nonzero"
            let best = (1..p.len()).fold(0, |b, i| if p[i] > p[b] { i } else { b });
            // alba-lint: allow(reachable-panic) reason="best < p.len() == names.len() from the fold above"
            let diagnosis = Diagnosis { label: names[best].clone(), confidence: p[best] };
            self.stats.windows += 1;
            self.latency.record((now.saturating_sub(at)) as u64);
            // alba-lint: allow(reachable-panic) reason="one monitor per lane by construction"
            if let Some(alarm) = self.monitors[l].apply_diagnosis(diagnosis.clone()) {
                self.stats.alarms += 1;
                // alba-lint: allow(reachable-panic) reason="lane indices map 1:1 onto nodes"
                report.alarms.push(NodeAlarm { node: self.nodes[l], alarm });
            }
            report.windows.push(WindowOutcome {
                // alba-lint: allow(reachable-panic) reason="lane indices map 1:1 onto nodes"
                node: self.nodes[l],
                at,
                uncertainty: uncertainty_score(p),
                diagnosis,
                row,
            });
        }
        self.busy.record(self.obs.now_ns().saturating_sub(start));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Shard>();
    }
}
