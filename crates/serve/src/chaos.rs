//! The service's chaos runtime: plan-driven fault application plus the
//! recovery counters the self-healing machinery reports.
//!
//! A [`ChaosRuntime`] is built from an [`alba_chaos::FaultPlan`] (either
//! generated from `ServeConfig::chaos` or replayed from JSON) and rides
//! inside the [`FleetService`](crate::FleetService) tick loop:
//!
//! * telemetry faults go through its [`TelemetryInjector`] before the
//!   ingest layer sees a sample,
//! * garbage-emitting nodes pass a hysteresis [`QuarantineGate`],
//! * store/journal faults are armed as named [`Failpoints`] the store's
//!   fault-hook seam consults,
//! * oracle outages and journal errors are retried through a seeded
//!   [`Backoff`] whose (simulated) waits are counted, never slept.
//!
//! Everything here is deterministic: the runtime holds no ambient RNG
//! and reads no wall clock, so two services with equal plans emit
//! byte-identical fault/recovery event streams.

use alba_chaos::{
    Backoff, ChaosConfig, Failpoints, FaultKind, FaultPlan, InjectStats, QuarantineConfig,
    QuarantineGate, TelemetryInjector,
};
use serde::{Deserialize, Serialize};
use std::sync::Once;

/// Panic payload used for injected shard panics, so the process-global
/// panic hook can stay quiet about faults we injected on purpose while
/// still reporting real ones.
pub struct InjectedPanic;

static SILENCE: Once = Once::new();

/// Installs (once per process) a panic hook that suppresses the stderr
/// noise of [`InjectedPanic`]s and delegates everything else to the
/// previous hook.
pub fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Chaos counters, exported inside `ServiceStats` when a run is chaotic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Fault events whose window opened during the run.
    pub faults_started: u64,
    /// Telemetry-layer injection counters.
    pub injected: InjectStats,
    /// Samples dropped because their node was quarantined.
    pub quarantine_drops: u64,
    /// Nodes fenced off by the quarantine gate.
    pub quarantines_entered: u64,
    /// Nodes readmitted after sustained clean telemetry.
    pub quarantines_released: u64,
    /// Shards restarted by the supervisor after an (injected) panic.
    pub shard_restarts: u64,
    /// Retrain rounds deferred because the oracle was down.
    pub oracle_timeouts: u64,
    /// Retrain rounds that succeeded after at least one deferral.
    pub oracle_recoveries: u64,
    /// Store/journal failpoints that fired.
    pub store_faults_fired: u64,
    /// Journal appends recovered by reopen-and-retry.
    pub journal_recoveries: u64,
    /// Bounded-backoff waits taken (oracle + journal retries).
    pub backoff_waits: u64,
    /// Total simulated backoff delay, nanoseconds.
    pub backoff_ns: u64,
}

impl ChaosStats {
    /// Total injected faults across every layer.
    pub fn total_injected(&self) -> u64 {
        self.injected.total() + self.store_faults_fired + self.shard_restarts
    }

    /// Total recovery actions the self-healing machinery performed.
    pub fn total_recoveries(&self) -> u64 {
        self.quarantines_released
            + self.shard_restarts
            + self.oracle_recoveries
            + self.journal_recoveries
    }
}

/// Plan-driven fault application state riding inside the service.
#[derive(Clone, Debug)]
pub struct ChaosRuntime {
    /// The schedule being executed (serialisable for exact replay).
    pub plan: FaultPlan,
    /// Telemetry-layer injector.
    pub injector: TelemetryInjector,
    /// Garbage-node quarantine gate.
    pub gate: QuarantineGate,
    /// Named failpoints the store/journal fault hooks consult.
    pub failpoints: Failpoints,
    /// Retry policy for oracle/journal recovery paths.
    pub backoff: Backoff,
    /// Consecutive oracle deferrals so far (0 when healthy).
    pub oracle_attempt: u32,
    /// Mid-run counters (merged with component counters on snapshot).
    pub stats: ChaosStats,
}

impl ChaosRuntime {
    /// Builds the runtime for `plan` and arms the *startup* store
    /// failpoints: scheduled store read/write faults fire during the
    /// service's initial campaign/fleet I/O, where the store's
    /// self-healing (regenerate, degrade to in-memory) absorbs them.
    pub fn new(plan: FaultPlan) -> Self {
        silence_injected_panics();
        let failpoints = Failpoints::new();
        for e in &plan.events {
            match e.kind {
                FaultKind::StoreReadError => failpoints.arm("store.read", e.magnitude),
                FaultKind::StoreWriteError => failpoints.arm("store.write", e.magnitude),
                _ => {}
            }
        }
        let injector = TelemetryInjector::new(plan.clone());
        Self {
            plan,
            injector,
            gate: QuarantineGate::new(QuarantineConfig::default()),
            failpoints,
            backoff: Backoff { seed: 0, ..Backoff::default() },
            oracle_attempt: 0,
            stats: ChaosStats::default(),
        }
        .seeded()
    }

    fn seeded(mut self) -> Self {
        self.backoff.seed = self.plan.seed;
        self
    }

    /// Fault events whose window opens at `tick` (cloned so the caller
    /// can mutate the runtime while handling them).
    pub fn starting_at(&self, tick: usize) -> Vec<alba_chaos::FaultEvent> {
        self.plan.starting_at(tick).cloned().collect()
    }

    /// True while any oracle-outage window covers `tick`.
    pub fn oracle_down(&self, tick: usize) -> bool {
        self.plan.active(FaultKind::OracleOutage, tick).next().is_some()
    }

    /// The (simulated) delay before the next oracle retry. Bounded: the
    /// delay stops growing once the attempt budget is consumed, but the
    /// retrain round keeps deferring until the outage window closes.
    pub fn oracle_backoff_ns(&self) -> u64 {
        let capped = self.oracle_attempt.min(self.backoff.max_attempts.saturating_sub(1));
        self.backoff.delay_ns(capped).unwrap_or(self.backoff.cap_ns)
    }

    /// Counters snapshot: mid-run stats merged with the component
    /// counters (injector, gate, failpoints).
    pub fn snapshot(&self) -> ChaosStats {
        let mut s = self.stats.clone();
        s.injected = self.injector.stats();
        s.quarantines_entered = self.gate.entered();
        s.quarantines_released = self.gate.released();
        s.store_faults_fired = self.failpoints.total_fired();
        s
    }
}

/// Generates the service's fault plan from its config — the same
/// `(config, seed)` always yields the same plan. The horizon covers the
/// configured replay duration (or the 300 s default scale) plus slack
/// for transients, so faults land throughout the run.
pub fn plan_for(
    chaos: &ChaosConfig,
    seed: u64,
    duration_override_s: Option<usize>,
    n_nodes: usize,
    n_shards: usize,
) -> FaultPlan {
    let horizon = duration_override_s.unwrap_or(300) + 60;
    FaultPlan::generate(chaos, seed, horizon, n_nodes, n_shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_arms_startup_store_failpoints_from_the_plan() {
        let cfg = ChaosConfig { store_read_errors: 2, ..zeroed() };
        let plan = plan_for(&cfg, 11, Some(150), 16, 4);
        let rt = ChaosRuntime::new(plan.clone());
        let expected: u64 = plan
            .events
            .iter()
            .filter(|e| e.kind == FaultKind::StoreReadError)
            .map(|e| e.magnitude)
            .sum();
        assert!(expected > 0);
        assert_eq!(rt.failpoints.pending("store.read"), expected);
        assert_eq!(rt.failpoints.pending("store.write"), 0);
    }

    #[test]
    fn oracle_down_tracks_outage_windows() {
        let cfg = ChaosConfig { oracle_outages: 1, ..zeroed() };
        let plan = plan_for(&cfg, 5, Some(150), 16, 4);
        let e = plan.events[0];
        let rt = ChaosRuntime::new(plan);
        assert!(rt.oracle_down(e.tick));
        assert!(!rt.oracle_down(e.tick + e.duration));
        assert!(rt.oracle_backoff_ns() >= rt.backoff.base_ns);
    }

    #[test]
    fn snapshot_merges_component_counters() {
        let plan = plan_for(&zeroed(), 3, Some(150), 8, 2);
        let mut rt = ChaosRuntime::new(plan);
        rt.failpoints.arm("journal.append", 1);
        rt.failpoints.check("journal.append");
        for _ in 0..3 {
            rt.gate.observe(1, true);
        }
        rt.stats.shard_restarts = 2;
        let s = rt.snapshot();
        assert_eq!(s.store_faults_fired, 1);
        assert_eq!(s.quarantines_entered, 1);
        assert!(s.total_injected() >= 3);
        assert!(s.total_recoveries() >= 2);
    }

    fn zeroed() -> ChaosConfig {
        ChaosConfig {
            blackouts: 0,
            stuck_sensors: 0,
            garbage_sensors: 0,
            clock_skews: 0,
            burst_losses: 0,
            queue_storms: 0,
            shard_panics: 0,
            oracle_outages: 0,
            store_write_errors: 0,
            store_read_errors: 0,
            fsync_failures: 0,
            mean_duration: 20,
        }
    }
}
