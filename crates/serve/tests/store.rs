//! Store-backed serving: replay determinism against the in-memory path
//! and warm restart from the write-ahead label journal.

use std::path::PathBuf;
use std::sync::Arc;

use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{prepare_split, MonitorConfig, System, SystemData};

fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba-serve-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs one observed service to completion; returns its event log and
/// the obs registry (for counter assertions).
fn observed_run(seed: u64, store_dir: Option<&PathBuf>) -> (Vec<String>, Obs) {
    let clock = Arc::new(TickClock::new());
    let obs = Obs::with_clock(clock);
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let mut cfg = test_config(seed);
    cfg.store_dir = store_dir.map(|d| d.display().to_string());
    FleetService::with_obs(cfg, obs.clone()).run_to_completion();
    (sink.lines(), obs)
}

/// The tentpole determinism bar: a store-backed service — cold (streams
/// generated then persisted) *and* warm (streams decoded back out of
/// segment files) — emits an event log byte-identical to the in-memory
/// service's.
#[test]
fn store_backed_replay_logs_identically_to_in_memory() {
    let dir = tmpdir("replay-determinism");
    let (memory, _) = observed_run(42, None);
    assert!(!memory.is_empty(), "an observed run must emit events");

    let (cold, cold_obs) = observed_run(42, Some(&dir));
    assert_eq!(memory, cold, "cold store-backed run must log byte-identically");
    assert_eq!(
        cold_obs.counter("store_cache_misses_total", &[("kind", "fleet")]).get(),
        1,
        "cold run generates and persists the fleet"
    );

    // The journal now holds the cold run's rounds; clear it so the warm
    // run exercises the stream cache alone.
    std::fs::remove_dir_all(dir.join("journals")).unwrap();
    let (warm, warm_obs) = observed_run(42, Some(&dir));
    assert_eq!(memory, warm, "warm store-backed run must log byte-identically");
    assert!(
        warm_obs.counter("store_cache_hits_total", &[("kind", "fleet")]).get() >= 1,
        "warm run must read the fleet back from the store"
    );
    assert!(
        warm_obs.counter("store_cache_hits_total", &[("kind", "features")]).get() >= 1,
        "warm run must read the training features back from the store"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Warm restart: a second service over the same store replays the label
/// journal and comes up with the first service's *final* model —
/// bit-identical predictions, restored retrain budget — without asking
/// the oracle for a single label.
#[test]
fn journal_replay_restores_the_model_and_budget() {
    let dir = tmpdir("warm-restart");
    let cfg = {
        let mut c = test_config(42);
        c.store_dir = Some(dir.display().to_string());
        c
    };

    let mut first = FleetService::with_obs(cfg.clone(), Obs::disabled());
    let stats = first.run_to_completion();
    assert_eq!(stats.swap_ticks.len(), 2, "the run must exhaust its retrain budget");

    // Rows to compare models on: the held-out side of the offline split.
    let sd = SystemData::generate(cfg.fleet.system, cfg.method, cfg.fleet.scale, cfg.fleet.seed);
    let split = prepare_split(&sd.dataset, &cfg.split, cfg.fleet.seed);
    let reference = first.model().probabilities(&split.test.x);

    let second = FleetService::with_obs(cfg.clone(), Obs::disabled());
    assert_eq!(
        second.swap_ticks(),
        &stats.swap_ticks[..],
        "restored rounds must land at the journalled ticks"
    );
    let restored = second.model().probabilities(&split.test.x);
    assert_eq!(reference.shape(), restored.shape());
    for (a, b) in reference.as_slice().iter().zip(restored.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "restored model must predict bit-identically");
    }

    // The restored budget is spent: running the second service performs
    // no further retrains.
    let mut second = second;
    let second_stats = second.run_to_completion();
    assert_eq!(
        second_stats.swap_ticks, stats.swap_ticks,
        "a warm-restarted service must not re-spend the labelling budget"
    );
    std::fs::remove_dir_all(&dir).ok();
}
