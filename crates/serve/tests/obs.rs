//! Observability integration: deterministic JSONL event logs across
//! equally-seeded runs, misrouted-sample resilience, and the
//! Prometheus-style exposition of an observed service run.

use std::sync::Arc;

use alba_features::Mvts;
use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig, Shard, TelemetrySample};
use alba_telemetry::Scale;
use albadross::{prepare_split, MonitorConfig, SplitConfig, System, SystemData};

fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

/// Runs one observed service to completion, returning its event log.
fn observed_run(seed: u64) -> Vec<String> {
    let clock = Arc::new(TickClock::new());
    let obs = Obs::with_clock(clock);
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    FleetService::with_obs(test_config(seed), obs).run_to_completion();
    sink.lines()
}

/// The acceptance bar for deterministic observability: two runs with
/// the same seed and a tick clock emit *identical* JSONL event logs.
#[test]
fn event_logs_are_identical_across_equal_seeds() {
    let a = observed_run(42);
    let b = observed_run(42);
    assert!(!a.is_empty(), "an observed run must emit events");
    assert_eq!(a, b, "equally-seeded runs must log identically");
    // The log is genuinely structured: every line parses as an object
    // with ts and kind, and the expected kinds all occur.
    for line in &a {
        assert!(line.starts_with("{\"ts\":") && line.ends_with('}'), "malformed line: {line}");
    }
    for kind in ["alarm", "label_request", "model_swap"] {
        assert!(
            a.iter().any(|l| l.contains(&format!("\"kind\":\"{kind}\""))),
            "expected at least one {kind} event"
        );
    }
    // A different seed produces a different log (the assertion above is
    // not vacuous).
    let c = observed_run(43);
    assert_ne!(a, c, "different seeds should diverge");
}

/// The Prometheus exposition is part of the replay contract too: two
/// equally-seeded runs on a tick clock must expose *byte-identical*
/// metric pages, which fails if any map iteration order leaks through.
#[test]
fn exposition_is_identical_across_equal_seeds() {
    let expose = |seed| {
        let clock = Arc::new(TickClock::new());
        let obs = Obs::with_clock(clock);
        FleetService::with_obs(test_config(seed), obs.clone()).run_to_completion();
        obs.expose()
    };
    let a = expose(77);
    let b = expose(77);
    assert!(!a.is_empty(), "an observed run must expose metrics");
    assert_eq!(a, b, "equally-seeded runs must expose byte-identical metric pages");
}

#[test]
fn misrouted_sample_is_counted_not_fatal() {
    let sd = SystemData::generate(System::Volta, albadross::FeatureMethod::Mvts, Scale::Smoke, 61);
    let split =
        prepare_split(&sd.dataset, &SplitConfig { train_fraction: 0.6, top_k_features: 300 }, 61);
    let mut f = alba_ml::RandomForest::new(alba_ml::ForestParams {
        n_estimators: 5,
        seed: 61,
        ..alba_ml::ForestParams::default()
    });
    use alba_ml::Classifier;
    f.fit(&split.train.x, &split.train.y, split.train.n_classes());
    let model = Arc::new(alba_ml::DiagnosisModel::new(
        alba_ml::FittedModel::Forest(f),
        split.train.encoder.names().to_vec(),
    ));
    // A monitor ingests raw metric rows; reuse the campaign's metric defs.
    let replay = alba_serve::ReplaySource::build(&alba_serve::FleetConfig::new(
        System::Volta,
        Scale::Smoke,
        2,
        61,
    ));
    let metric_defs = replay.metrics().to_vec();

    let obs = Obs::wall();
    // The shard owns node 0 only; node 7 is someone else's.
    let mut shard = Shard::new(
        0,
        vec![0],
        model,
        Arc::new(Mvts),
        &metric_defs,
        split.feature_view(),
        &MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 },
        true,
        obs.clone(),
    );
    let good = TelemetrySample { node: 0, at: 0, values: vec![0.0; metric_defs.len()] };
    let bad = TelemetrySample { node: 7, at: 0, values: vec![0.0; metric_defs.len()] };
    let report = shard.process(&[good, bad.clone(), bad], 0);
    assert!(report.alarms.is_empty());
    assert_eq!(shard.stats().samples, 1, "only the owned node's sample lands");
    assert_eq!(shard.stats().misrouted, 2, "foreign samples are counted, not fatal");
    assert_eq!(obs.counter("shard_misrouted_total", &[("shard", "0")]).get(), 2);
}

#[test]
fn exposition_covers_stages_shards_and_events() {
    let obs = Obs::wall();
    let mut svc = FleetService::with_obs(test_config(42), obs.clone());
    let stats = svc.run_to_completion();
    let text = svc.prometheus();

    // Registry metrics: service stages, shard stages, ingest counters.
    for needle in [
        "# TYPE stage_ns histogram",
        "stage_ns_bucket{stage=\"process\"",
        "stage_ns_count{stage=\"feedback\"}",
        "shard_stage_ns_count{shard=\"0\",stage=\"infer\"}",
        "# TYPE ingest_accepted_total counter",
        "# TYPE retrain_ns histogram",
    ] {
        assert!(text.contains(needle), "exposition missing {needle:?}:\n{text}");
    }
    // Appended per-shard histograms, mergeable into the fleet summary.
    for shard in 0..stats.shards.len() {
        assert!(text.contains(&format!("shard_busy_ns_count{{shard=\"{shard}\"}}")));
        assert!(text.contains(&format!("shard_latency_ticks_count{{shard=\"{shard}\"}}")));
    }
    // The stats snapshot agrees with the histograms it was derived from.
    let total_latency: u64 = stats.shards.iter().map(|s| s.latency.count).sum();
    assert_eq!(total_latency, stats.windows, "one latency record per window");
    assert_eq!(stats.latency.count, stats.windows, "fleet merge covers all shards");
    assert!(stats.latency.p50 <= stats.latency.p99);
    assert!(stats.latency.p99 <= stats.latency.max);
    // The stage spans fired once per tick.
    let snap = obs.histogram("stage_ns", &[("stage", "process")]).snapshot().unwrap();
    assert_eq!(snap.count as usize, stats.ticks);
}
