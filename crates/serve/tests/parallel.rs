//! Determinism under concurrency — the parallel shard runtime's
//! acceptance suite. Equal seeds must produce **byte-identical** event
//! logs, trace logs, metric expositions and models at *any* worker
//! count (1/2/4/8), including under a chaos shard-panic plan and across
//! a kill/warm-restart boundary where the two halves of the run use
//! different worker counts.

use std::path::PathBuf;
use std::sync::Arc;

use alba_chaos::{FaultEvent, FaultKind, FaultPlan};
use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use alba_trace::Tracer;
use albadross::{MonitorConfig, System};

const NODES: usize = 16;
const DURATION: usize = 150;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn test_config(seed: u64, workers: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, NODES, seed);
    cfg.fleet.duration_override_s = Some(DURATION);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg.n_workers = workers;
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba-parallel-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything the byte-identity assertions are judged on.
struct RunArtifacts {
    events: Vec<String>,
    traces: Vec<String>,
    /// `obs.expose()` with the per-worker pool counters stripped: a
    /// worker's job/busy tally legitimately depends on the worker
    /// count; nothing else may.
    exposition: String,
    model_json: String,
}

/// Strips the only worker-count-dependent metric family (`par_worker_*`,
/// one counter per worker thread) from an exposition page. Everything
/// left must be byte-identical across worker counts.
fn strip_worker_counters(exposition: &str) -> String {
    exposition.lines().filter(|l| !l.contains("par_worker")).map(|l| format!("{l}\n")).collect()
}

/// One fully observed + traced run at the given worker count.
fn observed_run(seed: u64, workers: usize) -> RunArtifacts {
    let clock = Arc::new(TickClock::new());
    let obs = Obs::with_clock(clock.clone());
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let tracer = Tracer::new(seed, clock, Tracer::DEFAULT_RING);
    let trace_sink = Arc::new(MemorySink::new());
    tracer.set_sink(trace_sink.clone());

    let mut svc = FleetService::with_tracer(test_config(seed, workers), obs.clone(), tracer);
    svc.run_to_completion();
    RunArtifacts {
        events: sink.lines(),
        traces: trace_sink.lines(),
        exposition: strip_worker_counters(&obs.expose()),
        model_json: svc.model().to_json(),
    }
}

/// The tentpole invariant: 1, 2, 4 and 8 workers produce byte-identical
/// event logs, traces, expositions and models for an equal seed.
#[test]
fn artifacts_are_byte_identical_at_any_worker_count() {
    let baseline = observed_run(42, 1);
    assert!(!baseline.events.is_empty(), "an observed run must emit events");
    assert!(!baseline.traces.is_empty(), "a traced run must record hops");
    for kind in ["alarm", "label_request", "model_swap"] {
        assert!(
            baseline.events.iter().any(|l| l.contains(&format!("\"kind\":\"{kind}\""))),
            "expected at least one {kind} event"
        );
    }
    for workers in &WORKER_COUNTS[1..] {
        let run = observed_run(42, *workers);
        assert_eq!(baseline.events, run.events, "event log diverged at {workers} workers");
        assert_eq!(baseline.traces, run.traces, "trace log diverged at {workers} workers");
        assert_eq!(baseline.exposition, run.exposition, "exposition diverged at {workers} workers");
        assert_eq!(
            baseline.model_json, run.model_json,
            "deployed model diverged at {workers} workers"
        );
    }
    // Not vacuous: a different seed diverges.
    let other = observed_run(43, 1);
    assert_ne!(baseline.events, other.events, "different seeds should diverge");
}

/// A plan holding exactly `events`, shaped for the test fleet.
fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
    FaultPlan { seed: 0, horizon: DURATION + 60, n_nodes: NODES, n_shards: 4, events }
}

fn event(kind: FaultKind, tick: usize, duration: usize, target: usize) -> FaultEvent {
    FaultEvent { kind, tick, duration, target, metric: 0, magnitude: 1 }
}

/// One observed chaotic run (explicit plan) at the given worker count.
fn chaotic_run(seed: u64, workers: usize, plan: FaultPlan) -> (RunArtifacts, u64) {
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let mut svc = FleetService::with_chaos_plan(test_config(seed, workers), plan, obs.clone());
    let stats = svc.run_to_completion();
    let restarts = stats.chaos.as_ref().map_or(0, |c| c.shard_restarts);
    (
        RunArtifacts {
            events: sink.lines(),
            traces: Vec::new(),
            exposition: strip_worker_counters(&obs.expose()),
            model_json: svc.model().to_json(),
        },
        restarts,
    )
}

/// Shard panics on pool workers must not cost determinism: the panic is
/// caught on the worker, the supervisor respawns the shard on the tick
/// thread, and the whole run stays byte-identical at every worker
/// count.
#[test]
fn chaos_shard_panics_stay_deterministic_across_worker_counts() {
    let plan = || {
        plan_with(vec![
            event(FaultKind::ShardPanic, 20, 1, 0),
            event(FaultKind::ShardPanic, 60, 1, 2),
            event(FaultKind::ShardPanic, 90, 1, 0),
        ])
    };
    let (baseline, restarts) = chaotic_run(42, 1, plan());
    assert_eq!(restarts, 3, "every planned panic fired and was supervised");
    assert!(
        baseline.events.iter().filter(|l| l.contains(r#""kind":"shard_restart""#)).count() == 3,
        "each restart is a structured event"
    );
    for workers in &WORKER_COUNTS[1..] {
        let (run, r) = chaotic_run(42, *workers, plan());
        assert_eq!(r, 3, "restart count diverged at {workers} workers");
        assert_eq!(baseline.events, run.events, "chaotic event log diverged at {workers} workers");
        assert_eq!(
            baseline.exposition, run.exposition,
            "chaotic exposition diverged at {workers} workers"
        );
        assert_eq!(
            baseline.model_json, run.model_json,
            "chaotic model diverged at {workers} workers"
        );
    }
}

/// Kill/warm-restart across a worker-count change: a run journalled at
/// 4 workers restores bit-identically into a 1-worker service (and vice
/// versa) — the worker count is excluded from the journal identity.
#[test]
fn warm_restart_is_identical_across_worker_counts() {
    let dir = tmpdir("restart");
    let cfg_at = |workers: usize| {
        let mut c = test_config(42, workers);
        c.store_dir = Some(dir.display().to_string());
        c
    };

    let mut first = FleetService::with_obs(cfg_at(4), Obs::disabled());
    let stats = first.run_to_completion();
    assert_eq!(stats.swap_ticks.len(), 2, "the run must exhaust its retrain budget");
    let reference = first.model().to_json();

    // Restart at a *different* worker count: same journal, same model,
    // same restored budget.
    let mut second = FleetService::with_obs(cfg_at(1), Obs::disabled());
    assert_eq!(second.swap_ticks(), &stats.swap_ticks[..], "journal is shared across counts");
    assert_eq!(second.model().to_json(), reference, "restored model is bit-identical");
    let second_stats = second.run_to_completion();
    assert_eq!(
        second_stats.swap_ticks, stats.swap_ticks,
        "a warm-restarted service must not re-spend the labelling budget"
    );

    // And the other direction: a 1-worker journal restores into 8.
    let third = FleetService::with_obs(cfg_at(8), Obs::disabled());
    assert_eq!(third.model().to_json(), reference);
    std::fs::remove_dir_all(&dir).ok();
}
