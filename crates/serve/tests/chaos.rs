//! Fault-injection integration: for each fault class a seeded 52-node
//! fleet runs under a chaos plan, the service stays live, the recovery
//! counters match the plan, and equally-seeded chaotic runs emit
//! byte-identical event logs.

use std::path::PathBuf;
use std::sync::Arc;

use alba_chaos::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};
use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig, ServiceStats};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

const NODES: usize = 52;
const DURATION: usize = 150;

fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, NODES, seed);
    cfg.fleet.duration_override_s = Some(DURATION);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba-chaos-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A plan holding exactly `events`, shaped for the test fleet.
fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
    FaultPlan { seed: 0, horizon: DURATION + 60, n_nodes: NODES, n_shards: 4, events }
}

fn event(kind: FaultKind, tick: usize, duration: usize, target: usize) -> FaultEvent {
    FaultEvent { kind, tick, duration, target, metric: 0, magnitude: 1 }
}

/// Runs one observed service under an explicit plan; returns the event
/// log and the final stats.
fn chaotic_run(
    seed: u64,
    plan: FaultPlan,
    store_dir: Option<&PathBuf>,
) -> (Vec<String>, ServiceStats) {
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let mut cfg = test_config(seed);
    cfg.store_dir = store_dir.map(|d| d.display().to_string());
    let mut svc = FleetService::with_chaos_plan(cfg, plan, obs);
    let stats = svc.run_to_completion();
    (sink.lines(), stats)
}

/// Node blackouts: every sample inside a blackout window is dropped —
/// exactly as many as the plan covers — and the service stays live.
#[test]
fn blackouts_drop_exactly_the_planned_samples() {
    let plan = plan_with(vec![
        event(FaultKind::NodeBlackout, 30, 30, 5),
        event(FaultKind::NodeBlackout, 50, 40, 7),
    ]);
    let (lines, stats) = chaotic_run(42, plan, None);
    let chaos = stats.chaos.as_ref().expect("chaotic run exports chaos stats");
    // One sample per node per tick: the windows cover 30 + 40 ticks.
    assert_eq!(chaos.injected.blackout_drops, 70, "drops must match the plan exactly");
    assert_eq!(chaos.faults_started, 2, "both windows opened");
    assert!(stats.windows > 0, "the fleet keeps diagnosing around the dark nodes");
    assert!(stats.ticks >= DURATION, "the service ran to replay exhaustion");
    assert_eq!(
        lines.iter().filter(|l| l.contains(r#""kind":"fault_injected""#)).count(),
        2,
        "each window opening is a structured event"
    );
}

/// Shard panics: the supervisor catches each injected panic, restarts
/// the shard, and the fleet finishes the run with every shard serving.
#[test]
fn shard_panics_are_supervised_and_restarted() {
    let plan = plan_with(vec![
        event(FaultKind::ShardPanic, 20, 1, 0),
        event(FaultKind::ShardPanic, 60, 1, 2),
        event(FaultKind::ShardPanic, 90, 1, 0),
    ]);
    let (lines, stats) = chaotic_run(42, plan, None);
    let chaos = stats.chaos.as_ref().unwrap();
    assert_eq!(chaos.shard_restarts, 3, "one restart per planned panic");
    assert_eq!(
        lines.iter().filter(|l| l.contains(r#""kind":"shard_restart""#)).count(),
        3,
        "each restart is a structured event"
    );
    assert!(stats.ticks >= DURATION, "the service survives every panic");
    // The restarted shards kept serving: windows were diagnosed after
    // the last panic (the fleet-wide count well exceeds what 90 ticks
    // could produce alone).
    assert!(stats.windows > 0);
    for sh in &stats.shards {
        assert!(sh.counters.samples > 0, "shard {} served after restart", sh.id);
    }
    assert!(chaos.total_recoveries() >= 3);
}

/// Oracle outage: retrain rounds defer with bounded backoff while the
/// oracle is dark, nothing is lost from the label queue, and the first
/// round after the window closes succeeds and counts a recovery.
#[test]
fn oracle_outage_defers_retraining_then_recovers() {
    // One wide outage covering the whole first phase of the run: the
    // first retrain-ready tick is guaranteed to land inside it.
    let plan = plan_with(vec![event(FaultKind::OracleOutage, 0, 120, 0)]);
    let (lines, stats) = chaotic_run(42, plan, None);
    let chaos = stats.chaos.as_ref().unwrap();
    assert!(chaos.oracle_timeouts > 0, "retrain rounds must defer during the outage");
    assert_eq!(chaos.oracle_recoveries, 1, "the first post-outage round recovers once");
    assert!(chaos.backoff_waits >= chaos.oracle_timeouts, "every deferral charges backoff");
    assert!(chaos.backoff_ns > 0);
    assert!(!stats.swap_ticks.is_empty(), "retraining resumes after the outage");
    assert!(
        stats.swap_ticks.iter().all(|&t| t >= 120),
        "no model swap can land inside the outage window: {:?}",
        stats.swap_ticks
    );
    let timeouts = lines.iter().filter(|l| l.contains(r#""kind":"oracle_timeout""#)).count() as u64;
    assert_eq!(timeouts, chaos.oracle_timeouts, "one event per deferral");
    assert!(lines.iter().any(|l| l.contains(r#""kind":"oracle_recovery""#)));
}

/// Store I/O errors: a failed journal append retries under backoff, a
/// torn append heals by reopening, no label is lost to the fault, and
/// the journal replays to the chaotic run's exact final model.
#[test]
fn store_faults_heal_and_the_journal_stays_replayable() {
    let dir = tmpdir("store-faults");
    // Armed early so the first retrain round's first append hits both:
    // an outright write error, then a torn (half-flushed) record.
    let plan = plan_with(vec![
        event(FaultKind::StoreWriteError, 2, 1, 0),
        event(FaultKind::FsyncFailure, 3, 1, 0),
    ]);
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let chaotic_cfg = {
        let mut c = test_config(42);
        c.store_dir = Some(dir.display().to_string());
        c
    };
    let mut chaotic = FleetService::with_chaos_plan(chaotic_cfg.clone(), plan, obs);
    let stats = chaotic.run_to_completion();
    let lines = sink.lines();
    let chaos = stats.chaos.as_ref().unwrap();
    assert!(chaos.store_faults_fired >= 2, "both journal failpoints fired");
    assert!(chaos.journal_recoveries >= 1, "the failed append was retried to success");
    assert_eq!(stats.errors.journal_reopens, 1, "the torn append healed by reopening");
    assert_eq!(stats.errors.journal_failures, 0, "no label was abandoned");
    assert!(lines.iter().any(|l| l.contains(r#""kind":"journal_error""#)));
    assert_eq!(stats.swap_ticks.len(), 2, "the run still exhausts its retrain budget");

    // Journal integrity: a *fault-free* warm restart over the same
    // store (the journal identity excludes the chaos config) replays to
    // the chaotic run's in-memory final model, bit for bit.
    let mut restored_cfg = chaotic_cfg;
    restored_cfg.chaos = None;
    let restored = FleetService::with_obs(restored_cfg, Obs::disabled());
    assert_eq!(
        restored.swap_ticks(),
        &stats.swap_ticks[..],
        "restored rounds land at the chaotic run's swap ticks"
    );
    let probe = {
        let sd = albadross::SystemData::generate(
            System::Volta,
            albadross::FeatureMethod::Mvts,
            Scale::Smoke,
            42,
        );
        let split = albadross::prepare_split(
            &sd.dataset,
            &albadross::SplitConfig { train_fraction: 0.6, top_k_features: 300 },
            42,
        );
        split.test.x
    };
    let a = restored.model().probabilities(&probe);
    let b = chaotic.model().probabilities(&probe);
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "journal must replay to the same model");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Garbage sensors: the quarantine gate fences the spewing node off
/// after its hysteresis threshold and readmits it after the window.
#[test]
fn garbage_nodes_are_quarantined_and_released() {
    let plan = plan_with(vec![event(FaultKind::GarbageSensor, 20, 40, 9)]);
    let (lines, stats) = chaotic_run(42, plan, None);
    let chaos = stats.chaos.as_ref().unwrap();
    assert!(chaos.injected.garbage_readings > 0, "garbage was injected");
    assert_eq!(chaos.quarantines_entered, 1, "the spewing node is fenced off once");
    assert_eq!(chaos.quarantines_released, 1, "clean telemetry readmits it");
    // Enter after 3 bad samples, release after 5 good ones: the fence
    // holds for the garbage window minus the enter lag, plus the lag.
    assert_eq!(chaos.quarantine_drops, 40 - 3 + 5, "drops match the hysteresis bounds");
    assert!(lines.iter().any(|l| l.contains(r#""kind":"quarantine_enter""#)));
    assert!(lines.iter().any(|l| l.contains(r#""kind":"quarantine_release""#)));
}

/// The determinism bar: two chaotic runs with equal seeds (and a tick
/// clock) emit byte-identical event logs — across the full default
/// fault taxonomy, and again when the plan is replayed from JSON.
#[test]
fn equal_seeds_give_byte_identical_chaotic_event_logs() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::generate(&cfg, 42, DURATION + 60, NODES, 4);
    assert_eq!(plan.len(), 20);
    let (a, stats) = chaotic_run(42, plan.clone(), None);
    let (b, _) = chaotic_run(42, plan.clone(), None);
    assert!(!a.is_empty());
    assert_eq!(a, b, "equally-seeded chaotic runs must log identically");

    let chaos = stats.chaos.as_ref().unwrap();
    assert!(chaos.total_injected() > 0, "the default taxonomy injects");
    assert!(chaos.faults_started > 0);

    // JSON replay: a plan round-tripped through its serialised form
    // drives an identical run.
    let replayed = FaultPlan::from_json(&plan.to_json().unwrap()).unwrap();
    let (c, _) = chaotic_run(42, replayed, None);
    assert_eq!(a, c, "a JSON-replayed plan must reproduce the run exactly");

    // And the assertion is not vacuous: a different plan seed diverges.
    let other = FaultPlan::generate(&cfg, 43, DURATION + 60, NODES, 4);
    let (d, _) = chaotic_run(42, other, None);
    assert_ne!(a, d, "different plans must diverge");
}
