//! Integration tests for the fleet service: end-to-end behaviour,
//! seeded determinism (bit-identical replay, identical service runs),
//! batched/unbatched equivalence and hot-swap boundary semantics.

use std::sync::Arc;

use alba_features::Mvts;
use alba_ml::{Classifier, DiagnosisModel, FittedModel, ForestParams, RandomForest};
use alba_serve::{FleetConfig, FleetService, ReplaySource, ServeConfig};
use alba_telemetry::Scale;
use albadross::{prepare_split, MonitorConfig, NodeMonitor, SplitConfig, System, SystemData};

/// A small but non-trivial fleet configuration for the tests.
fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

#[test]
fn end_to_end_smoke_fleet() {
    let mut svc = FleetService::new(test_config(42));
    assert_eq!(svc.n_nodes(), 16);
    let stats = svc.run_to_completion();

    // Every stream sample was emitted and (absent overflow) ingested.
    assert!(stats.samples_emitted > 16 * 150, "full streams were replayed");
    assert_eq!(stats.ingest.pushed + stats.ingest.dropped, stats.samples_emitted);

    // Windows were diagnosed on every node.
    assert!(stats.windows > 0);
    for node in 0..svc.n_nodes() {
        assert!(!svc.monitor(node).verdicts().is_empty(), "node {node} was never diagnosed");
    }

    // Shard accounting adds up.
    assert_eq!(stats.shards.len(), 4);
    let shard_windows: u64 = stats.shards.iter().map(|s| s.counters.windows).sum();
    assert_eq!(shard_windows, stats.windows);
    let assigned: usize = stats.shards.iter().map(|s| s.nodes).sum();
    assert_eq!(assigned, 16);

    // The stats export round-trips through JSON.
    let json = stats.to_json().expect("stats serialise");
    let back: alba_serve::ServiceStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

#[test]
fn alarms_land_on_anomalous_nodes() {
    let mut svc = FleetService::new(test_config(42));
    let anomalous: Vec<usize> = (0..svc.n_nodes()).filter(|&n| svc.truth(n) != "healthy").collect();
    assert!(!anomalous.is_empty(), "the smoke fleet should include injected anomalies");
    svc.run_to_completion();

    assert!(!svc.alarms().is_empty(), "injected anomalies must raise alarms");
    // Confirmed alarms overwhelmingly come from truly anomalous nodes.
    let (mut hits, mut total) = (0u32, 0u32);
    for na in svc.alarms() {
        total += 1;
        if svc.truth(na.node) != "healthy" {
            hits += 1;
            assert_eq!(na.alarm.label, svc.truth(na.node), "node {} alarm mislabelled", na.node);
        }
    }
    assert!(hits * 2 > total, "most alarms should hit anomalous nodes ({hits}/{total})");
}

#[test]
fn feedback_loop_retrains_and_swaps() {
    let mut svc = FleetService::new(test_config(42));
    let stats = svc.run_to_completion();
    assert!(stats.feedback.requested > 0, "uncertain windows must request labels");
    assert!(stats.feedback.serviced > 0, "requests must be serviced by the oracle");
    assert!(stats.feedback.retrains >= 1, "at least one retrain round must run");
    assert_eq!(stats.feedback.retrains as usize, stats.swap_ticks.len());
    assert!(stats.feedback.retrains as usize <= svc.config().max_retrains);
}

#[test]
fn replay_is_bit_identical_across_builds() {
    let cfg = FleetConfig::new(System::Volta, Scale::Smoke, 8, 17);
    let mut a = ReplaySource::build(&cfg);
    let mut b = ReplaySource::build(&cfg);
    while !a.is_exhausted() {
        for (x, y) in a.tick().iter().zip(&b.tick()) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.at, y.at);
            for (u, v) in x.values.iter().zip(&y.values) {
                assert_eq!(u.to_bits(), v.to_bits(), "replay must be bit-identical");
            }
        }
    }
}

#[test]
fn service_runs_are_deterministic() {
    let sa = FleetService::new(test_config(7)).run_to_completion();
    let sb = FleetService::new(test_config(7)).run_to_completion();
    assert_eq!(sa.windows, sb.windows);
    assert_eq!(sa.alarms, sb.alarms);
    assert_eq!(sa.alarms_by_label, sb.alarms_by_label);
    assert_eq!(sa.swap_ticks, sb.swap_ticks);
    assert_eq!(sa.feedback.requested, sb.feedback.requested);
    assert_eq!(sa.feedback.serviced, sb.feedback.serviced);
    assert_eq!(sa.ingest, sb.ingest);
}

#[test]
fn unbatched_baseline_matches_batched_service() {
    let mut batched = FleetService::new(test_config(11));
    let mut unbatched = FleetService::new(ServeConfig { batched: false, ..test_config(11) });
    let sa = batched.run_to_completion();
    let sb = unbatched.run_to_completion();
    // Batching changes *how* inference runs, never *what* it computes.
    assert_eq!(sa.windows, sb.windows);
    assert_eq!(sa.alarms, sb.alarms);
    assert_eq!(sa.alarms_by_label, sb.alarms_by_label);
    assert_eq!(sa.swap_ticks, sb.swap_ticks);
    assert_eq!(batched.alarms(), unbatched.alarms());
    // The unbatched baseline pays one model call per window.
    let calls_b: u64 = sa.shards.iter().map(|s| s.counters.batches).sum();
    let calls_u: u64 = sb.shards.iter().map(|s| s.counters.batches).sum();
    assert_eq!(calls_u, sb.windows);
    assert!(calls_b < calls_u, "batching must amortise model calls");
}

/// Predictions change exactly at the swap boundary: verdicts before the
/// swap match a model-A-only run, verdicts after match a model-B-only
/// run (the buffered telemetry and streak survive the swap untouched).
#[test]
fn hot_swap_changes_predictions_only_at_the_boundary() {
    let sd = SystemData::generate(System::Volta, albadross::FeatureMethod::Mvts, Scale::Smoke, 61);
    let split =
        prepare_split(&sd.dataset, &SplitConfig { train_fraction: 0.6, top_k_features: 300 }, 61);
    let fit = |seed: u64| {
        let mut f =
            RandomForest::new(ForestParams { n_estimators: 9, seed, ..ForestParams::default() });
        f.fit(&split.train.x, &split.train.y, split.train.n_classes());
        Arc::new(DiagnosisModel::new(FittedModel::Forest(f), split.train.encoder.names().to_vec()))
    };
    let (model_a, model_b) = (fit(1), fit(2));

    let replay = ReplaySource::build(&FleetConfig {
        duration_override_s: Some(200),
        ..FleetConfig::new(System::Volta, Scale::Smoke, 1, 23)
    });
    let stream = &replay.streams()[0].telemetry.series;
    let cfg = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    let mk = |model: &Arc<DiagnosisModel>| {
        NodeMonitor::new(
            Arc::clone(model),
            Arc::new(Mvts),
            stream.metrics.clone(),
            split.feature_view(),
            cfg.clone(),
        )
    };
    let mut only_a = mk(&model_a);
    let mut only_b = mk(&model_b);
    let mut swapped = mk(&model_a);

    let swap_at_window = 4;
    let mut row = vec![0.0; stream.n_metrics()];
    for t in 0..stream.len() {
        for (m, r) in row.iter_mut().enumerate() {
            *r = stream.metric(m)[t];
        }
        if swapped.verdicts().len() == swap_at_window {
            swapped.set_model(Arc::clone(&model_b));
        }
        only_a.ingest(&row);
        only_b.ingest(&row);
        swapped.ingest(&row);
    }
    assert!(only_a.verdicts().len() > swap_at_window + 2, "stream long enough to straddle");
    // Models genuinely disagree somewhere (otherwise the test is vacuous).
    assert!(
        only_a.verdicts().iter().zip(only_b.verdicts()).any(|(x, y)| x.diagnosis != y.diagnosis),
        "seeds 1 and 2 should yield distinguishable forests"
    );
    for (i, v) in swapped.verdicts().iter().enumerate() {
        let expect = if i < swap_at_window {
            &only_a.verdicts()[i].diagnosis
        } else {
            &only_b.verdicts()[i].diagnosis
        };
        assert_eq!(
            &v.diagnosis,
            expect,
            "verdict {i} must follow model {} (swap at {swap_at_window})",
            if i < swap_at_window { "A" } else { "B" }
        );
    }
}

#[test]
fn eclipse_fleet_also_serves() {
    let mut cfg = ServeConfig::new(System::Eclipse, Scale::Smoke, 12, 5);
    cfg.fleet.duration_override_s = Some(120);
    cfg.n_shards = 3;
    let mut svc = FleetService::new(cfg);
    let stats = svc.run_to_completion();
    assert!(stats.windows > 0);
    assert_eq!(stats.shards.len(), 3);
}
