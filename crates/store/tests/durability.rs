//! Durability of the on-disk formats, exercised through the public crate
//! surface: truncated segment tails, flipped bytes under the CRC, torn
//! journal records, vandalised feature matrices — every failure must
//! surface as a typed error (or self-heal), never a panic or silently
//! wrong data.

use std::fs;
use std::path::PathBuf;

use alba_features::{Mvts, PreprocessConfig};
use alba_obs::Obs;
use alba_store::{FeatureKey, LabelJournal, StoreError, TelemetryStore};
use alba_telemetry::{class_names, CampaignConfig, Scale};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba-durability-{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn campaign() -> CampaignConfig {
    let mut cfg = CampaignConfig::volta(Scale::Smoke, 97);
    cfg.apps.truncate(2);
    cfg.shapes.truncate(1);
    cfg
}

/// Path of the campaign entry's first segment file.
fn first_segment(store: &TelemetryStore, cfg: &CampaignConfig) -> PathBuf {
    store.root().join("campaigns").join(TelemetryStore::campaign_key(cfg)).join("seg-0000.seg")
}

#[test]
fn truncated_segment_tail_is_a_typed_error_and_heals() {
    let dir = tmpdir("truncated-tail");
    let obs = Obs::wall();
    let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
    let cfg = campaign();
    let original = store.get_or_generate_campaign(&cfg).unwrap();

    // Chop bytes off the tail: a crash mid-write (without the staging
    // rename) or a torn copy.
    let seg = first_segment(&store, &cfg);
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 64]).unwrap();

    let key = TelemetryStore::campaign_key(&cfg);
    match store.read_samples("campaign", &key) {
        Err(StoreError::TruncatedTail { .. }) | Err(StoreError::Corrupt { .. }) => {}
        other => panic!("truncated segment must surface as corruption, got {other:?}"),
    }

    // The memoising entry point self-heals: regenerate, rewrite, serve.
    let healed = store.get_or_generate_campaign(&cfg).unwrap();
    assert_eq!(healed.len(), original.len());
    assert_eq!(obs.counter("store_corrupt_entries_total", &[("kind", "campaign")]).get(), 1);
    // And the rewritten entry is intact again.
    assert!(store.read_samples("campaign", &key).unwrap().is_some());
    fs::remove_dir_all(&dir).ok();
}

/// Flips one byte at a time across the first segment — every `stride`th
/// offset, always including the first and last bytes — and asserts each
/// flip surfaces as a typed read error, never a silently wrong decode.
fn byte_flip_sweep(name: &str, cfg: CampaignConfig, stride_divisor: usize) {
    let dir = tmpdir(name);
    let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
    store.get_or_generate_campaign(&cfg).unwrap();
    let key = TelemetryStore::campaign_key(&cfg);

    let seg = first_segment(&store, &cfg);
    let pristine = fs::read(&seg).unwrap();
    let stride = (pristine.len() / stride_divisor.max(1)).max(1);
    let offsets: Vec<usize> =
        (0..pristine.len()).step_by(stride).chain([pristine.len() - 1]).collect();
    for off in offsets {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x41;
        fs::write(&seg, &bytes).unwrap();
        match store.read_samples("campaign", &key) {
            Err(_) => {}
            Ok(_) => panic!("flipping byte {off} went undetected"),
        }
    }
    fs::write(&seg, &pristine).unwrap();
    assert!(store.read_samples("campaign", &key).unwrap().is_some(), "pristine file reads");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn strided_byte_flips_in_a_segment_are_caught() {
    byte_flip_sweep("bit-flips", campaign(), 97);
}

/// The exhaustive sweep — every single byte offset in the segment, on a
/// deliberately small campaign so the full decode-per-flip loop stays
/// tractable. Still too slow for the tier-1 wall; `scripts/ci.sh
/// --full` runs it.
#[test]
#[ignore = "exhaustive byte sweep; run via scripts/ci.sh --full"]
fn every_single_byte_flip_in_a_segment_is_caught() {
    let mut cfg = campaign();
    cfg.runs_per_shape = 1;
    cfg.duration_range_s = (30, 30);
    byte_flip_sweep("bit-flips-full", cfg, usize::MAX);
}

#[test]
fn vandalised_feature_matrix_self_heals() {
    let dir = tmpdir("fmat-heal");
    let obs = Obs::wall();
    let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
    let cfg = campaign();
    let samples = store.get_or_generate_campaign(&cfg).unwrap();
    let key = FeatureKey::whole_run(
        TelemetryStore::campaign_key(&cfg),
        &Mvts,
        PreprocessConfig::default(),
        &class_names(),
    );
    let cold = store.features().get_or_extract(&key, &samples, &Mvts).unwrap();

    // Flip one byte in the middle of the matrix payload.
    let fmat = store.root().join("features").join(format!("{}.fmat", key.store_key()));
    let mut bytes = fs::read(&fmat).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&fmat, &bytes).unwrap();

    assert!(store.features().read(&key).is_err(), "corrupt matrix must not read back");
    let healed = store.features().get_or_extract(&key, &samples, &Mvts).unwrap();
    assert_eq!(obs.counter("store_corrupt_entries_total", &[("kind", "features")]).get(), 1);
    for (a, b) in cold.x.as_slice().iter().zip(healed.x.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "healed matrix must be bit-identical");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_survives_repeated_torn_appends() {
    let dir = tmpdir("journal-tears");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("j.jsonl");
    let mut survivors = 0u64;
    for round in 0..5usize {
        let (journal, records) = LabelJournal::open(&path).unwrap();
        assert_eq!(records.len() as u64, survivors, "round {round}: intact prefix replays");
        journal.append_label(round, round * 10, "memleak", &[round as f64, 0.5]).unwrap();
        survivors += 1;
        drop(journal);
        // Tear the tail differently each round: a partial record whose
        // length varies, so truncation is exercised at many offsets.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&b"{\"seq\":9999,\"kind\":\"label\""[..8 + 2 * round]);
        fs::write(&path, &bytes).unwrap();
    }
    let (_, records) = LabelJournal::open(&path).unwrap();
    assert_eq!(records.len() as u64, survivors);
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "sequence stays contiguous across tears");
        assert_eq!(rec.row, vec![i as f64, 0.5], "rows replay bit-exactly");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_files_never_panic() {
    let dir = tmpdir("garbage");
    let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
    let cfg = campaign();
    let key = TelemetryStore::campaign_key(&cfg);

    // A manifest pointing at segments that do not exist / are noise.
    let entry = store.root().join("campaigns").join(&key);
    fs::create_dir_all(&entry).unwrap();
    fs::write(
        entry.join("manifest.json"),
        format!(
            "{{\"key\":\"{key}\",\"tag\":\"campaign\",\"n_samples\":3,\
             \"n_segments\":1,\"config_json\":\"{{}}\"}}"
        ),
    )
    .unwrap();
    fs::write(entry.join("seg-0000.seg"), [0x41u8; 256]).unwrap();
    assert!(store.read_samples("campaign", &key).is_err());

    // An empty segment file.
    fs::write(entry.join("seg-0000.seg"), []).unwrap();
    assert!(store.read_samples("campaign", &key).is_err());

    // And the memoising path still recovers by regenerating.
    assert!(store.get_or_generate_campaign(&cfg).is_ok());
    fs::remove_dir_all(&dir).ok();
}
