//! The on-disk segment format for raw telemetry.
//!
//! A *segment* is an append-only file holding a batch of node samples
//! (one block per [`NodeTelemetry`]) that share one metric catalog. All
//! integers are little-endian; all variable-length structures are
//! CRC-checked so bit rot and torn writes surface as [`StoreError`]s
//! instead of garbage telemetry:
//!
//! ```text
//! "ALBASEG1"  magic                                   8 bytes
//! version     u32 (currently 1)
//! schema_len  u32
//! schema      JSON: { metrics: [MetricDef, ...] }     schema_len bytes
//! schema_crc  u32   CRC-32 of the schema JSON
//! block*      until EOF
//!
//! block := "BLK1"       u32 magic
//!          payload_len  u32
//!          payload      payload_len bytes
//!          payload_crc  u32   CRC-32 of payload
//!
//! payload := head_len  u32
//!            head      JSON: { label, n_samples, meta: SampleMeta }
//!            column*   one per catalog metric, in catalog order
//!
//! column := col_len  u32
//!           bytes    codec output (see [`crate::codec`])
//! ```
//!
//! A file that ends inside a block is reported as
//! [`StoreError::TruncatedTail`]; a block whose CRC disagrees is
//! [`StoreError::Corrupt`]. Readers never panic on hostile bytes.

use crate::codec::{decode_column, encode_column, read_u32_le};
use crate::crc::crc32;
use crate::error::{Result, StoreError};
use alba_data::{MetricDef, MultiSeries, SampleMeta};
use alba_telemetry::NodeTelemetry;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 8] = b"ALBASEG1";
const SEGMENT_VERSION: u32 = 1;
const BLOCK_MAGIC: u32 = 0x314B_4C42; // "BLK1" little-endian

#[derive(Serialize, Deserialize)]
struct SegmentSchema {
    metrics: Vec<MetricDef>,
}

#[derive(Serialize, Deserialize)]
struct BlockHead {
    label: String,
    n_samples: u64,
    meta: SampleMeta,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Streams [`NodeTelemetry`] blocks into one segment file.
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    metrics: Vec<MetricDef>,
    blocks: u64,
}

impl SegmentWriter {
    /// Creates the file and writes the CRC-checked schema header.
    pub fn create(path: impl AsRef<Path>, metrics: &[MetricDef]) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut header = Vec::new();
        header.extend_from_slice(SEGMENT_MAGIC);
        put_u32(&mut header, SEGMENT_VERSION);
        let schema = serde_json::to_string(&SegmentSchema { metrics: metrics.to_vec() })
            .map_err(|e| StoreError::corrupt(&path, format!("schema serialise: {e:?}")))?;
        put_u32(&mut header, schema.len() as u32);
        header.extend_from_slice(schema.as_bytes());
        put_u32(&mut header, crc32(schema.as_bytes()));
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(&header)?;
        Ok(Self { path, file, metrics: metrics.to_vec(), blocks: 0 })
    }

    /// Appends one node sample as a CRC-framed block.
    pub fn append(&mut self, sample: &NodeTelemetry) -> Result<()> {
        if sample.series.metrics != self.metrics {
            return Err(StoreError::schema(
                &self.path,
                "sample metric catalog differs from segment schema",
            ));
        }
        let head = serde_json::to_string(&BlockHead {
            label: sample.label.clone(),
            n_samples: sample.series.len() as u64,
            meta: sample.meta.clone(),
        })
        .map_err(|e| StoreError::corrupt(&self.path, format!("block head serialise: {e:?}")))?;
        let mut payload = Vec::new();
        put_u32(&mut payload, head.len() as u32);
        payload.extend_from_slice(head.as_bytes());
        for (m, def) in self.metrics.iter().enumerate() {
            let col = encode_column(sample.series.metric(m), def.kind);
            put_u32(&mut payload, col.len() as u32);
            payload.extend_from_slice(&col);
        }
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_u32(&mut frame, BLOCK_MAGIC);
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        put_u32(&mut frame, crc32(&payload));
        self.file.write_all(&frame)?;
        self.blocks += 1;
        Ok(())
    }

    /// Blocks appended so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Flushes and closes the segment.
    pub fn finish(mut self) -> Result<u64> {
        self.file.flush()?;
        Ok(self.blocks)
    }
}

/// Reads and validates one segment file.
pub struct SegmentReader {
    path: PathBuf,
    bytes: Vec<u8>,
    metrics: Vec<MetricDef>,
    /// Offset of the first block.
    body: usize,
}

impl SegmentReader {
    /// Opens a segment, validating magic, version and the schema CRC.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        // alba-lint: allow(reachable-panic) reason="len >= 16 is checked first in this condition"
        if bytes.len() < 16 || &bytes[..8] != SEGMENT_MAGIC {
            return Err(StoreError::corrupt(&path, "missing ALBASEG1 magic"));
        }
        let version = read_u32_le(&bytes, 8)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated version field"))?;
        if version != SEGMENT_VERSION {
            return Err(StoreError::schema(&path, format!("unsupported version {version}")));
        }
        let schema_len = read_u32_le(&bytes, 12)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated schema length"))?
            as usize;
        let schema_end = 16usize.checked_add(schema_len).filter(|&e| e + 4 <= bytes.len());
        let Some(schema_end) = schema_end else {
            return Err(StoreError::TruncatedTail { path: path.display().to_string(), offset: 16 });
        };
        // alba-lint: allow(reachable-panic) reason="schema_end was bounds-checked above"
        let schema_bytes = &bytes[16..schema_end];
        let stored_crc = read_u32_le(&bytes, schema_end)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated schema CRC"))?;
        if crc32(schema_bytes) != stored_crc {
            return Err(StoreError::corrupt(&path, "schema CRC mismatch"));
        }
        let schema: SegmentSchema = serde_json::from_str(
            std::str::from_utf8(schema_bytes)
                .map_err(|_| StoreError::corrupt(&path, "schema is not UTF-8"))?,
        )
        .map_err(|e| StoreError::corrupt(&path, format!("schema parse: {e:?}")))?;
        Ok(Self { path, bytes, metrics: schema.metrics, body: schema_end + 4 })
    }

    /// The metric catalog every block of this segment follows.
    pub fn metrics(&self) -> &[MetricDef] {
        &self.metrics
    }

    /// Decodes every block, validating each frame's CRC. The first torn
    /// or corrupt block aborts the read with a precise error.
    pub fn read_all(&self) -> Result<Vec<NodeTelemetry>> {
        let mut out = Vec::new();
        let mut pos = self.body;
        while pos < self.bytes.len() {
            let offset = pos as u64;
            let torn =
                || StoreError::TruncatedTail { path: self.path.display().to_string(), offset };
            let magic = read_u32_le(&self.bytes, pos).ok_or_else(torn)?;
            if magic != BLOCK_MAGIC {
                return Err(StoreError::corrupt(&self.path, format!("bad block magic at {pos}")));
            }
            let payload_len = read_u32_le(&self.bytes, pos + 4).ok_or_else(torn)? as usize;
            let payload_start = pos + 8;
            let payload_end = payload_start.checked_add(payload_len).ok_or_else(torn)?;
            if payload_end + 4 > self.bytes.len() {
                return Err(torn());
            }
            // alba-lint: allow(reachable-panic) reason="payload range was bounds-checked above"
            let payload = &self.bytes[payload_start..payload_end];
            let stored_crc = read_u32_le(&self.bytes, payload_end).ok_or_else(torn)?;
            if crc32(payload) != stored_crc {
                return Err(StoreError::corrupt(
                    &self.path,
                    format!("block CRC mismatch at byte {pos}"),
                ));
            }
            out.push(self.decode_block(payload, pos)?);
            pos = payload_end + 4;
        }
        Ok(out)
    }

    fn decode_block(&self, payload: &[u8], at: usize) -> Result<NodeTelemetry> {
        let bad = |detail: String| StoreError::corrupt(&self.path, detail);
        let head_len = read_u32_le(payload, 0)
            .ok_or_else(|| bad(format!("block at {at} too short")))?
            as usize;
        let head_end = 4usize
            .checked_add(head_len)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| bad(format!("block head at {at} overruns payload")))?;
        let head: BlockHead = serde_json::from_str(
            // alba-lint: allow(reachable-panic) reason="head_end was bounds-checked above"
            std::str::from_utf8(&payload[4..head_end])
                .map_err(|_| bad(format!("block head at {at} is not UTF-8")))?,
        )
        .map_err(|e| bad(format!("block head parse at {at}: {e:?}")))?;
        let n = head.n_samples as usize;
        let mut values = Vec::with_capacity(self.metrics.len());
        let mut pos = head_end;
        for def in &self.metrics {
            let col_len = read_u32_le(payload, pos)
                .ok_or_else(|| bad(format!("column frame at {at} torn")))?
                as usize;
            let col_end = pos
                .checked_add(4 + col_len)
                .filter(|&e| e <= payload.len())
                .ok_or_else(|| bad(format!("column at {at} overruns payload")))?;
            // alba-lint: allow(reachable-panic) reason="col_end was bounds-checked above"
            let col = decode_column(&payload[pos + 4..col_end], n, def.kind)
                .map_err(|e| bad(format!("column {} at {at}: {e}", def.name)))?;
            values.push(col);
            pos = col_end;
        }
        if pos != payload.len() {
            return Err(bad(format!("block at {at} has trailing bytes")));
        }
        Ok(NodeTelemetry {
            series: MultiSeries { metrics: self.metrics.clone(), values },
            meta: head.meta,
            label: head.label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;
    use alba_telemetry::{generate_run, CampaignConfig, Scale};

    fn samples() -> Vec<NodeTelemetry> {
        let cfg = CampaignConfig::volta(Scale::Smoke, 11);
        let catalog = cfg.catalog();
        let rc = &cfg.run_configs()[0];
        generate_run(rc, &catalog, &cfg.signature, &cfg.noise)
    }

    #[test]
    fn segment_roundtrip_is_bit_exact() {
        let dir = tmpdir("seg-roundtrip");
        let path = dir.join("seg-0000.seg");
        let samples = samples();
        let mut w = SegmentWriter::create(&path, &samples[0].series.metrics).unwrap();
        for s in &samples {
            w.append(s).unwrap();
        }
        assert_eq!(w.finish().unwrap(), samples.len() as u64);

        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.metrics(), &samples[0].series.metrics[..]);
        let back = r.read_all().unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.series.len(), b.series.len());
            for m in 0..a.series.n_metrics() {
                for (x, y) in a.series.metric(m).iter().zip(b.series.metric(m)) {
                    if x.is_nan() {
                        assert!(y.is_nan());
                    } else {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_tail_is_a_clean_error() {
        let dir = tmpdir("seg-truncated");
        let path = dir.join("seg.seg");
        let samples = samples();
        let mut w = SegmentWriter::create(&path, &samples[0].series.metrics).unwrap();
        w.append(&samples[0]).unwrap();
        w.append(&samples[1]).unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut into the middle of the second block.
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        let r = SegmentReader::open(&path).unwrap();
        match r.read_all() {
            Err(StoreError::TruncatedTail { .. }) => {}
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_crc_is_a_clean_error() {
        let dir = tmpdir("seg-corrupt");
        let path = dir.join("seg.seg");
        let samples = samples();
        let mut w = SegmentWriter::create(&path, &samples[0].series.metrics).unwrap();
        w.append(&samples[0]).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte near the end (inside the block, before
        // its trailing CRC).
        let idx = bytes.len() - 32;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = SegmentReader::open(&path).unwrap();
        match r.read_all() {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("CRC"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_on_append_is_rejected() {
        let dir = tmpdir("seg-schema");
        let path = dir.join("seg.seg");
        let samples = samples();
        let mut other = samples[0].series.metrics.clone();
        other.pop();
        let mut w = SegmentWriter::create(&path, &other).unwrap();
        assert!(matches!(w.append(&samples[0]), Err(StoreError::SchemaMismatch { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_file_is_rejected_not_panicked_on() {
        let dir = tmpdir("seg-garbage");
        let path = dir.join("junk.seg");
        std::fs::write(&path, b"definitely not a segment").unwrap();
        assert!(SegmentReader::open(&path).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(SegmentReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
