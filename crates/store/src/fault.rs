//! The store's fault-injection seam.
//!
//! The store sits below the chaos layer in the crate graph, so it cannot
//! depend on `alba-chaos`. Instead it exposes a plain closure hook: the
//! serving layer adapts its chaos failpoints into a [`FaultHook`] and
//! installs it with [`crate::TelemetryStore::set_fault_hook`] /
//! [`crate::LabelJournal::set_fault_hook`]. Production code never
//! installs a hook, so the checks compile down to a `None` branch.
//!
//! Hook sites (by name passed to the hook):
//!
//! | name             | where it fires                                    |
//! |------------------|---------------------------------------------------|
//! | `store.write`    | entry of [`crate::TelemetryStore::write_samples`] |
//! | `store.read`     | entry of a present-entry read                     |
//! | `store.fsync`    | before the atomic rename publishing an entry      |
//! | `journal.append` | before a journal record is written                |
//! | `journal.torn`   | mid-append: half the record reaches disk, then the append errors — a simulated crash the next open heals by truncation |
//! | `cell.write`     | entry of [`crate::TelemetryStore::put_cell`]      |
//! | `cell.fsync`     | before the rename publishing a grid cell          |
//! | `cell.read`      | entry of a present-cell read                      |

use std::sync::Arc;

/// Injectable fault hook: given a site name, return `Some(error)` to
/// make that I/O call fail. Cheap to clone; `None` everywhere in
/// production.
pub type FaultHook = Arc<dyn Fn(&str) -> Option<std::io::Error> + Send + Sync>;

/// Consults an optional hook at `site`, mapping a fired fault into the
/// store's error type.
pub(crate) fn check(hook: &Option<FaultHook>, site: &str) -> crate::error::Result<()> {
    if let Some(h) = hook {
        if let Some(e) = h(site) {
            return Err(e.into());
        }
    }
    Ok(())
}

/// True when the hook fires at `site` (for sites that need custom
/// behaviour instead of an early error, e.g. torn appends).
pub(crate) fn fires(hook: &Option<FaultHook>, site: &str) -> bool {
    hook.as_ref().and_then(|h| h(site)).is_some()
}
