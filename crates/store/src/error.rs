//! Store error type: every durability failure surfaces as a value, never
//! a panic — a corrupted or half-written file on a production system must
//! degrade to a cache miss or an operator-visible error, not take the
//! diagnosis service down.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Everything that can go wrong reading or writing the store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A file's contents contradict its checksums or framing.
    Corrupt {
        /// File the corruption was detected in.
        path: String,
        /// What was inconsistent.
        detail: String,
    },
    /// A file ends mid-record (torn write / partial flush). Distinct from
    /// [`StoreError::Corrupt`] because append-only consumers (the label
    /// journal) may legitimately recover everything before the tear.
    TruncatedTail {
        /// File the tear was detected in.
        path: String,
        /// Byte offset of the first incomplete record.
        offset: u64,
    },
    /// The file is readable but describes a different schema (metric
    /// catalog, feature key, format version) than the caller expects.
    SchemaMismatch {
        /// File whose schema disagrees.
        path: String,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {path}: {detail}")
            }
            StoreError::TruncatedTail { path, offset } => {
                write!(f, "truncated store file {path}: record torn at byte {offset}")
            }
            StoreError::SchemaMismatch { path, detail } => {
                write!(f, "schema mismatch in {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupt`] value.
    pub fn corrupt(path: impl AsRef<std::path::Path>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt { path: path.as_ref().display().to_string(), detail: detail.into() }
    }

    /// Shorthand for a [`StoreError::SchemaMismatch`] value.
    pub fn schema(path: impl AsRef<std::path::Path>, detail: impl Into<String>) -> Self {
        StoreError::SchemaMismatch {
            path: path.as_ref().display().to_string(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file() {
        let e = StoreError::corrupt("/tmp/seg-0000.seg", "bad CRC");
        assert!(e.to_string().contains("seg-0000.seg"));
        assert!(e.to_string().contains("bad CRC"));
        let t = StoreError::TruncatedTail { path: "j.jsonl".into(), offset: 17 };
        assert!(t.to_string().contains("byte 17"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
