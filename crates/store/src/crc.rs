//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) — the store's
//! integrity check for segment headers, column payloads and cached
//! feature matrices. Implemented here because the workspace is
//! dependency-light by design (see `vendor/README.md`).

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (matching `zlib.crc32` / `cksum -o 3`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // alba-lint: allow(reachable-panic) reason="index is masked to 0..256"
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
