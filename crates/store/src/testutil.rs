//! Test-only helpers.

use std::path::PathBuf;

/// A fresh scratch directory under the system temp dir, unique per
/// `(test name, process)`. Callers clean up with `remove_dir_all`.
pub fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba-store-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create test tmpdir");
    dir
}
