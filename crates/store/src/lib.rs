//! # alba-store
//!
//! An embedded, append-only, dependency-light columnar store for the
//! ALBADross pipeline. Production HPC monitoring generates telemetry far
//! faster than anyone re-derives it; this crate makes the expensive
//! stages of the reproduction — campaign generation and TSFRESH-style
//! feature extraction — *write-once, read-many*:
//!
//! * [`segment`] — the raw-telemetry file format: per-metric column
//!   chunks with explicit gap encoding, delta/XOR varint compression and
//!   CRC-checked framing ([`SegmentWriter`] / [`SegmentReader`]),
//! * [`store`] — the content-addressed directory layout and campaign
//!   memoisation ([`TelemetryStore`]),
//! * [`features`] — the feature-matrix table memoising extraction to
//!   disk ([`FeatureCache`], keyed by [`FeatureKey`]),
//! * [`window`] — zero-copy sliding-window readers over decoded columns
//!   ([`windows`], [`WindowSpec`], [`WindowView`]),
//! * [`journal`] — the write-ahead label journal behind deterministic
//!   warm restart of the online service ([`LabelJournal`]),
//! * [`cells`] — memoised experiment-grid cells: one CRC-checked JSON
//!   blob per content-addressed cell, behind resumable sweeps,
//! * [`codec`] / [`crc`] / [`keys`] — the building blocks: bit-exact
//!   column codecs, CRC-32 and FNV-1a content keys.
//!
//! Every read validates checksums; every failure is a typed
//! [`StoreError`], never a panic — a half-written cache entry degrades
//! to a cache miss (the store self-heals by regenerating), and a torn
//! journal tail is truncated back to the last intact record.

#![warn(missing_docs)]

pub mod cells;
pub mod codec;
pub mod crc;
pub mod error;
pub mod fault;
pub mod features;
pub mod journal;
pub mod keys;
pub mod segment;
pub mod store;
#[cfg(test)]
pub(crate) mod testutil;
pub mod window;

pub use codec::{decode_column, encode_column};
pub use crc::crc32;
pub use error::{Result, StoreError};
pub use fault::FaultHook;
pub use features::{FeatureCache, FeatureKey};
pub use journal::{JournalRecord, LabelJournal, KIND_LABEL, KIND_RETRAIN};
pub use keys::{fnv1a64, key_of};
pub use segment::{SegmentReader, SegmentWriter};
pub use store::TelemetryStore;
pub use window::{windows, WindowIter, WindowSpec, WindowView};
