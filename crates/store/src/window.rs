//! Zero-copy windowed readers over stored telemetry.
//!
//! Online diagnosis consumes telemetry as fixed-length sliding windows
//! (the service defaults to 60 s windows every 10 s). Decoded columns
//! already live contiguously in a [`MultiSeries`], so a window is just a
//! `(start, len)` view — [`WindowView::metric`] hands out sub-slices of
//! the decoded columns without copying a sample. Copies happen only at
//! the extractor boundary ([`WindowView::to_series`]), which needs a
//! mutable series for preprocessing anyway.

use alba_data::{MetricDef, MetricKind, MultiSeries};
use alba_features::SeriesSource;
use serde::{Deserialize, Serialize};

/// A sliding-window shape: length and stride, in 1 Hz samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window length in samples (= seconds at 1 Hz).
    pub window_s: usize,
    /// Hop between consecutive window starts.
    pub stride_s: usize,
}

impl WindowSpec {
    /// A `window_s`-sample window every `stride_s` samples.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(window_s: usize, stride_s: usize) -> Self {
        assert!(window_s > 0 && stride_s > 0, "window and stride must be positive");
        Self { window_s, stride_s }
    }

    /// How many full windows fit in a series of `n` samples.
    pub fn count(&self, n: usize) -> usize {
        if n < self.window_s {
            0
        } else {
            (n - self.window_s) / self.stride_s + 1
        }
    }
}

/// A borrowed, zero-copy view of one window of a [`MultiSeries`].
#[derive(Clone, Copy, Debug)]
pub struct WindowView<'a> {
    series: &'a MultiSeries,
    start: usize,
    len: usize,
}

impl<'a> WindowView<'a> {
    /// The metric catalog of the underlying series.
    pub fn metrics(&self) -> &'a [MetricDef] {
        &self.series.metrics
    }

    /// First sample index of the window within the full series.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Window length in samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length window (never produced by [`windows`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Metric `m`'s samples within this window — a sub-slice of the
    /// decoded column, no copy.
    pub fn metric(&self, m: usize) -> &'a [f64] {
        &self.series.metric(m)[self.start..self.start + self.len]
    }

    /// Materialises the window as an owned [`MultiSeries`] (the one copy,
    /// made only when an extractor needs to preprocess in place).
    pub fn to_series(&self) -> MultiSeries {
        MultiSeries {
            metrics: self.series.metrics.clone(),
            values: (0..self.series.n_metrics()).map(|m| self.metric(m).to_vec()).collect(),
        }
    }
}

/// A [`WindowView`] lends per-metric sub-slices directly, so planned
/// feature extraction ([`alba_features::FeatureView::unscaled_row_into`])
/// runs on stored windows without [`WindowView::to_series`]'s copy.
impl SeriesSource for WindowView<'_> {
    fn n_metrics(&self) -> usize {
        self.series.n_metrics()
    }

    fn series_len(&self) -> usize {
        self.len
    }

    fn metric(&self, m: usize) -> &[f64] {
        WindowView::metric(self, m)
    }

    fn metric_kind(&self, m: usize) -> MetricKind {
        self.series.metrics[m].kind
    }
}

/// Iterator over the full windows of a series, oldest first.
pub struct WindowIter<'a> {
    series: &'a MultiSeries,
    spec: WindowSpec,
    next_start: usize,
}

impl<'a> Iterator for WindowIter<'a> {
    type Item = WindowView<'a>;

    fn next(&mut self) -> Option<WindowView<'a>> {
        if self.next_start + self.spec.window_s > self.series.len() {
            return None;
        }
        let view =
            WindowView { series: self.series, start: self.next_start, len: self.spec.window_s };
        self.next_start += self.spec.stride_s;
        Some(view)
    }
}

/// All full `spec` windows of `series`, as zero-copy views.
pub fn windows(series: &MultiSeries, spec: WindowSpec) -> WindowIter<'_> {
    WindowIter { series, spec, next_start: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::{MetricDef, MetricKind};

    fn series(n: usize) -> MultiSeries {
        let metrics = vec![
            MetricDef { name: "cpu".into(), subsystem: "cpu".into(), kind: MetricKind::Gauge },
            MetricDef {
                name: "retired".into(),
                subsystem: "cpu".into(),
                kind: MetricKind::Counter,
            },
        ];
        let mut s = MultiSeries::new(metrics);
        for t in 0..n {
            s.push_sample(&[t as f64, (t * t) as f64]);
        }
        s
    }

    #[test]
    fn window_count_matches_formula() {
        let s = series(100);
        let spec = WindowSpec::new(60, 10);
        let got: Vec<_> = windows(&s, spec).collect();
        assert_eq!(got.len(), spec.count(100));
        assert_eq!(got.len(), 5); // starts 0,10,20,30,40
        assert_eq!(got[0].start(), 0);
        assert_eq!(got[4].start(), 40);
        assert!(got.iter().all(|w| w.len() == 60));
    }

    #[test]
    fn short_series_yields_no_window() {
        let s = series(30);
        assert_eq!(windows(&s, WindowSpec::new(60, 10)).count(), 0);
        assert_eq!(WindowSpec::new(60, 10).count(30), 0);
        // Exactly one window when lengths match.
        assert_eq!(WindowSpec::new(30, 7).count(30), 1);
    }

    #[test]
    fn views_borrow_the_decoded_column() {
        let s = series(80);
        let w = windows(&s, WindowSpec::new(20, 20)).nth(1).unwrap();
        // The view's slice points into the series' own buffer: zero copy.
        let col = s.metric(0);
        assert!(std::ptr::eq(&col[20], &w.metric(0)[0]));
        assert_eq!(w.metric(0)[0], 20.0);
        assert_eq!(w.metric(1)[19], (39 * 39) as f64);
    }

    #[test]
    fn to_series_copies_exactly_the_window() {
        let s = series(50);
        let w = windows(&s, WindowSpec::new(10, 5)).nth(2).unwrap();
        let owned = w.to_series();
        assert_eq!(owned.len(), 10);
        assert_eq!(owned.metrics, s.metrics);
        assert_eq!(owned.metric(0), w.metric(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_rejected() {
        let _ = WindowSpec::new(60, 0);
    }

    #[test]
    fn view_extraction_is_bit_identical_to_materialised_window() {
        use alba_data::Matrix;
        use alba_features::{
            ExtractScratch, FeatureExtractor, FeatureView, MinMaxScaler, Mvts, PreprocessConfig,
        };
        let mut s = series(90);
        // NaN gaps so interpolation actually runs on both paths.
        s.values[0][12] = f64::NAN;
        s.values[0][13] = f64::NAN;
        s.values[1][40] = f64::NAN;
        let w = windows(&s, WindowSpec::new(60, 10)).nth(1).unwrap();
        let ex = Mvts;
        let npm = ex.n_features_per_metric();
        let selected: Vec<usize> = (0..2 * npm).rev().step_by(3).collect();
        let k = selected.len();
        let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[vec![0.0; k], vec![1.0; k]]));
        let view = FeatureView::new(selected, scaler);
        let pre = PreprocessConfig { trim_frac: 0.08, diff_counters: true, interpolate: true };

        // Golden path: materialise the window, then the cloned-series row.
        let golden = view.unscaled_row(&ex, &w.to_series(), &pre);

        // Hot path: plan + scratch straight off the borrowed view.
        let plan = view.plan(&ex);
        let mut scratch = ExtractScratch::default();
        let mut got = vec![0.0; view.n_features()];
        view.unscaled_row_into(&ex, &w, &pre, &plan, &mut scratch, &mut got);

        assert_eq!(golden.len(), got.len());
        for (i, (a, b)) in golden.iter().zip(&got).enumerate() {
            assert!(a.to_bits() == b.to_bits(), "column {i}: {a} vs {b}");
        }
    }
}
