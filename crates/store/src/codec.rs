//! Lossless column codecs for 1 Hz telemetry.
//!
//! Each metric column is encoded independently as
//!
//! 1. a *gap bitmap* — one bit per timestamp, set where the collector
//!    dropped the sample (the value is NaN). Dropped samples carry no
//!    payload bytes; LDMS-style feeds lose samples routinely and the
//!    paper's preprocessing exists to repair them, so the format makes
//!    gaps explicit instead of burning 8 bytes on each,
//! 2. a varint stream over the present values' IEEE-754 bit patterns:
//!    *cumulative counters* are delta-encoded (monotone non-negative
//!    doubles have monotone bit patterns, so deltas are small) and
//!    zigzag-mapped; *gauges* are XOR-encoded against the previous
//!    present value (high bytes of nearby doubles agree, so the XOR is
//!    mostly low bits).
//!
//! Both transforms operate on raw bit patterns, so every finite value,
//! infinity and signed zero round-trips **bit-exactly**; NaN gaps are
//! normalised to the canonical `f64::NAN`. The property suite at the
//! repository root asserts the round-trip for arbitrary inputs.

use crate::error::{Result, StoreError};
use alba_data::MetricKind;

/// Appends `v` as a LEB128 varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads a little-endian `u32` at `pos`, if four bytes are available.
///
/// Never panics: short or overflowing ranges yield `None`, so framing
/// readers can surface typed errors instead of indexing past the end.
pub fn read_u32_le(bytes: &[u8], pos: usize) -> Option<u32> {
    let b: [u8; 4] = bytes.get(pos..pos.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(b))
}

/// Reads a LEB128 varint at `*pos`, advancing it.
pub fn get_uvarint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b =
            *bytes.get(*pos).ok_or_else(|| StoreError::corrupt("<column>", "varint past end"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::corrupt("<column>", "varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes one metric column. The timestamp count is *not* stored — the
/// caller frames it (the segment block header records `n_samples`).
pub fn encode_column(values: &[f64], kind: MetricKind) -> Vec<u8> {
    let n = values.len();
    let bitmap_len = n.div_ceil(8);
    let mut out = Vec::with_capacity(bitmap_len + n * 3);
    out.resize(bitmap_len, 0u8);
    for (t, v) in values.iter().enumerate() {
        if v.is_nan() {
            out[t / 8] |= 1 << (t % 8);
        }
    }
    let mut prev = 0u64;
    for v in values.iter().filter(|v| !v.is_nan()) {
        let bits = v.to_bits();
        match kind {
            MetricKind::Counter => {
                put_uvarint(&mut out, zigzag(bits.wrapping_sub(prev) as i64));
            }
            MetricKind::Gauge => {
                put_uvarint(&mut out, bits ^ prev);
            }
        }
        prev = bits;
    }
    out
}

/// Decodes a column of `n` timestamps produced by [`encode_column`].
///
/// Returns [`StoreError::Corrupt`] when the buffer is too short, has
/// trailing garbage, or contains a malformed varint.
pub fn decode_column(bytes: &[u8], n: usize, kind: MetricKind) -> Result<Vec<f64>> {
    let bitmap_len = n.div_ceil(8);
    if bytes.len() < bitmap_len {
        return Err(StoreError::corrupt("<column>", "gap bitmap shorter than sample count"));
    }
    let (bitmap, payload) = bytes.split_at(bitmap_len);
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    let mut prev = 0u64;
    for t in 0..n {
        // alba-lint: allow(reachable-panic) reason="bitmap length was validated against n before this loop"
        if bitmap[t / 8] & (1 << (t % 8)) != 0 {
            out.push(f64::NAN);
            continue;
        }
        let raw = get_uvarint(payload, &mut pos)?;
        let bits = match kind {
            MetricKind::Counter => prev.wrapping_add(unzigzag(raw) as u64),
            MetricKind::Gauge => raw ^ prev,
        };
        out.push(f64::from_bits(bits));
        prev = bits;
    }
    if pos != payload.len() {
        return Err(StoreError::corrupt("<column>", "trailing bytes after last sample"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f64], kind: MetricKind) {
        let enc = encode_column(values, kind);
        let dec = decode_column(&enc, values.len(), kind).unwrap();
        assert_eq!(dec.len(), values.len());
        for (a, b) in values.iter().zip(&dec) {
            if a.is_nan() {
                assert_eq!(b.to_bits(), f64::NAN.to_bits(), "gaps normalise to canonical NaN");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} must round-trip bit-exactly");
            }
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX, u64::MAX - 1, 1 << 63] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn gauge_columns_roundtrip() {
        roundtrip(&[], MetricKind::Gauge);
        roundtrip(&[0.0, -0.0, 1.5, f64::INFINITY, -1e-300, f64::MAX], MetricKind::Gauge);
        roundtrip(&[f64::NAN, f64::NAN, f64::NAN], MetricKind::Gauge);
        let wavy: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin() * 37.0).collect();
        roundtrip(&wavy, MetricKind::Gauge);
    }

    #[test]
    fn counter_columns_roundtrip_and_compress() {
        let mut acc = 0.0;
        let counter: Vec<f64> = (0..1000)
            .map(|i| {
                acc += 3.0 + (i % 7) as f64 * 0.25;
                acc
            })
            .collect();
        roundtrip(&counter, MetricKind::Counter);
        let enc = encode_column(&counter, MetricKind::Counter);
        assert!(
            enc.len() < counter.len() * 8,
            "delta coding beats raw doubles: {} vs {}",
            enc.len(),
            counter.len() * 8
        );
    }

    #[test]
    fn gaps_cost_no_payload() {
        let mut vals = vec![1.0; 64];
        let dense = encode_column(&vals, MetricKind::Gauge).len();
        for v in vals.iter_mut().skip(1).step_by(2) {
            *v = f64::NAN;
        }
        let sparse = encode_column(&vals, MetricKind::Gauge).len();
        assert!(sparse < dense, "dropped samples must not be stored");
    }

    #[test]
    fn short_buffer_is_an_error_not_a_panic() {
        let enc = encode_column(&[1.0, 2.0, 3.0], MetricKind::Gauge);
        assert!(decode_column(&enc[..1], 3, MetricKind::Gauge).is_err());
        assert!(decode_column(&[], 3, MetricKind::Gauge).is_err());
        // Trailing garbage is also rejected.
        let mut long = enc.clone();
        long.push(0x00);
        assert!(decode_column(&long, 3, MetricKind::Gauge).is_err());
    }

    #[test]
    fn kind_mismatch_still_decodes_without_panicking() {
        // Decoding with the wrong kind yields wrong values (the segment
        // header is authoritative) but must never panic or loop.
        let enc = encode_column(&[1.0, 2.0, 4.0], MetricKind::Counter);
        let _ = decode_column(&enc, 3, MetricKind::Gauge);
    }
}
