//! Content-derived store keys.
//!
//! Every store entry is addressed by a 64-bit FNV-1a hash of a namespace
//! tag plus the canonical JSON of the configuration that produced it —
//! campaign configs for telemetry, `(campaign, window spec, feature set)`
//! descriptors for cached feature matrices. Equal configs therefore map
//! to equal keys across processes and sessions, which is the whole
//! memoisation contract; the tag keeps namespaces from colliding.

use serde::Serialize;

/// 64-bit FNV-1a over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the 16-hex-digit store key for `value` in namespace `tag`.
///
/// # Panics
/// Panics if `value` fails to serialise (config types are plain data and
/// always serialise).
pub fn key_of<T: Serialize>(tag: &str, value: &T) -> String {
    // alba-lint: allow(no-panic-in-fallible) reason="documented # Panics contract; config types are plain data and always serialise"
    let json = serde_json::to_string(value).expect("store key config must serialise");
    let mut bytes = Vec::with_capacity(tag.len() + 1 + json.len());
    bytes.extend_from_slice(tag.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(json.as_bytes());
    format!("{:016x}", fnv1a64(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn keys_are_stable_and_tag_scoped() {
        #[derive(Serialize)]
        struct Cfg {
            seed: u64,
        }
        let a = key_of("campaign", &Cfg { seed: 7 });
        let b = key_of("campaign", &Cfg { seed: 7 });
        let c = key_of("campaign", &Cfg { seed: 8 });
        let d = key_of("fleet", &Cfg { seed: 7 });
        assert_eq!(a, b, "equal configs map to equal keys");
        assert_ne!(a, c, "seed must change the key");
        assert_ne!(a, d, "tag must scope the namespace");
        assert_eq!(a.len(), 16);
    }
}
