//! The write-ahead label journal.
//!
//! Every oracle response the online service receives — and every retrain
//! round it completes — is appended to a JSONL journal *before* the
//! in-memory state advances. On restart the journal is replayed: labelled
//! batches are folded back into the retrainer round by round, which
//! (because retraining is round-seeded) reproduces the pre-crash model
//! deterministically instead of re-spending the labelling budget.
//!
//! Records carry a contiguous sequence number. Replay tolerates exactly
//! one torn record at the end of the file (a crash mid-append): the tear
//! is truncated away and appending resumes after the last intact record.
//! A malformed record *followed by more data*, or a sequence gap, is real
//! corruption and surfaces as an error.

use crate::error::{Result, StoreError};
use crate::fault::FaultHook;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One journal entry. `kind` is `"label"` (an oracle-labelled window,
/// the fields `node`/`at`/`label` are meaningful) or `"retrain"` (a
/// completed retrain round, the field `round` is meaningful).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Contiguous record index, starting at 0.
    pub seq: u64,
    /// Record type: `"label"` or `"retrain"`.
    pub kind: String,
    /// Fleet node the labelled window came from.
    pub node: usize,
    /// Tick at which the label request was raised.
    pub at: usize,
    /// Oracle-provided class label (empty for `"retrain"` records).
    pub label: String,
    /// Retrain round just completed (0 for `"label"` records).
    pub round: u64,
    /// The labelled window's scaled model-input row (empty for
    /// `"retrain"` records) — what warm restart folds back into the
    /// retrainer. JSON doubles round-trip bit-exactly through the
    /// vendored serde_json, so the refitted model is reproduced, not
    /// approximated.
    pub row: Vec<f64>,
}

/// Record kind for labelled windows.
pub const KIND_LABEL: &str = "label";
/// Record kind for completed retrain rounds.
pub const KIND_RETRAIN: &str = "retrain";

struct Inner {
    path: PathBuf,
    file: File,
    next_seq: u64,
    fault: Option<FaultHook>,
}

/// Append-only label journal (see the module docs). Clones share one
/// underlying file and sequence counter.
#[derive(Clone)]
pub struct LabelJournal {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for LabelJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("LabelJournal")
            .field("path", &inner.path)
            .field("next_seq", &inner.next_seq)
            .finish()
    }
}

impl LabelJournal {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// intact record. A torn final record is truncated away; corruption
    /// elsewhere is an error.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<JournalRecord>)> {
        let path = path.as_ref().to_path_buf();
        let obs = alba_obs::global();
        let _span = obs.span("store_read_ns", &[("kind", "journal")]);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut good_bytes = 0usize;
        let mut offset = 0usize;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(line) = lines.next() {
            let complete = line.ends_with('\n');
            let parsed = if complete {
                serde_json::from_str::<JournalRecord>(line.trim_end_matches('\n')).ok()
            } else {
                None
            };
            match parsed {
                Some(rec) => {
                    if rec.seq != records.len() as u64 {
                        return Err(StoreError::corrupt(
                            &path,
                            format!("sequence gap: expected {}, found {}", records.len(), rec.seq),
                        ));
                    }
                    good_bytes = offset + line.len();
                    records.push(rec);
                    offset = good_bytes;
                }
                None => {
                    if lines.peek().is_some() {
                        return Err(StoreError::corrupt(
                            &path,
                            format!("malformed record at byte {offset} before end of journal"),
                        ));
                    }
                    // Torn tail: drop the partial record and recover.
                    obs.counter("store_journal_torn_tails_total", &[]).inc();
                    break;
                }
            }
        }
        if good_bytes < text.len() {
            // Truncate the tear so the next append starts on a record
            // boundary.
            let f = OpenOptions::new().write(true).create(true).truncate(false).open(&path)?;
            f.set_len(good_bytes as u64)?;
        }
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        obs.counter("store_journal_replayed_total", &[]).add(records.len() as u64);
        let next_seq = records.len() as u64;
        Ok((
            Self { inner: Arc::new(Mutex::new(Inner { path, file, next_seq, fault: None })) },
            records,
        ))
    }

    /// Installs a fault-injection hook consulted on every append (see
    /// [`crate::fault`]). Test/chaos machinery only.
    pub fn set_fault_hook(&self, hook: FaultHook) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).fault = Some(hook);
    }

    fn append(&self, mut rec: JournalRecord) -> Result<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        rec.seq = inner.next_seq;
        let mut line = serde_json::to_string(&rec)
            .map_err(|e| StoreError::corrupt(&inner.path, format!("record serialise: {e:?}")))?;
        line.push('\n');
        crate::fault::check(&inner.fault, "journal.append")?;
        if crate::fault::fires(&inner.fault, "journal.torn") {
            // Simulated crash mid-append: half the record reaches disk
            // and the write "dies". The caller must reopen the journal,
            // which truncates the tear back to the last intact record.
            // alba-lint: allow(reachable-panic) reason="half <= len by construction on the torn-write path"
            let half = &line.as_bytes()[..line.len() / 2];
            inner.file.write_all(half)?;
            inner.file.flush()?;
            return Err(StoreError::TruncatedTail {
                path: inner.path.display().to_string(),
                offset: inner.next_seq,
            });
        }
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        inner.next_seq += 1;
        alba_obs::global().counter("store_journal_appends_total", &[]).inc();
        Ok(rec.seq)
    }

    /// Journals one oracle-labelled window (its scaled model-input row
    /// travels with the label). Returns the record's seq.
    pub fn append_label(&self, node: usize, at: usize, label: &str, row: &[f64]) -> Result<u64> {
        self.append(JournalRecord {
            seq: 0,
            kind: KIND_LABEL.to_string(),
            node,
            at,
            label: label.to_string(),
            round: 0,
            row: row.to_vec(),
        })
    }

    /// Journals a completed retrain round at tick `at` — the commit
    /// marker for every label record since the previous marker. Returns
    /// the record's seq.
    pub fn append_retrain(&self, round: u64, at: usize) -> Result<u64> {
        self.append(JournalRecord {
            seq: 0,
            kind: KIND_RETRAIN.to_string(),
            node: 0,
            at,
            label: String::new(),
            round,
            row: Vec::new(),
        })
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).next_seq
    }

    /// The journal's file path.
    pub fn path(&self) -> PathBuf {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).path.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;

    #[test]
    fn append_and_replay_round_trips() {
        let dir = tmpdir("journal-roundtrip");
        let path = dir.join("j.jsonl");
        {
            let (j, replayed) = LabelJournal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(
                j.append_label(3, 120, "memleak", &[0.25, f64::MIN_POSITIVE, -1.0]).unwrap(),
                0
            );
            assert_eq!(j.append_label(7, 130, "healthy", &[]).unwrap(), 1);
            assert_eq!(j.append_retrain(1, 135).unwrap(), 2);
        }
        let (j, replayed) = LabelJournal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].kind, KIND_LABEL);
        assert_eq!(replayed[0].node, 3);
        assert_eq!(replayed[0].label, "memleak");
        assert_eq!(replayed[2].kind, KIND_RETRAIN);
        assert_eq!(replayed[2].round, 1);
        assert_eq!(j.next_seq(), 3);
        // Appending after replay continues the sequence.
        assert_eq!(j.append_label(1, 140, "dcopy", &[1.0]).unwrap(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_recovered() {
        let dir = tmpdir("journal-torn");
        let path = dir.join("j.jsonl");
        {
            let (j, _) = LabelJournal::open(&path).unwrap();
            j.append_label(0, 10, "dial", &[0.5]).unwrap();
            j.append_label(1, 20, "leak", &[0.5]).unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len();
        bytes.extend_from_slice(b"{\"seq\":2,\"kind\":\"label\",\"no");
        std::fs::write(&path, &bytes).unwrap();

        let (j, replayed) = LabelJournal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2, "intact prefix survives");
        assert_eq!(j.next_seq(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64, "tear truncated");
        j.append_label(2, 30, "linkclog", &[0.5]).unwrap();
        let (_, again) = LabelJournal::open(&path).unwrap();
        assert_eq!(again.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let dir = tmpdir("journal-corrupt");
        let path = dir.join("j.jsonl");
        {
            let (j, _) = LabelJournal::open(&path).unwrap();
            j.append_label(0, 10, "a", &[]).unwrap();
            j.append_label(1, 20, "b", &[]).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let vandalised = text.replacen("\"kind\"", "\"ki!!\"", 1);
        std::fs::write(&path, vandalised).unwrap();
        assert!(matches!(LabelJournal::open(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_is_an_error() {
        let dir = tmpdir("journal-gap");
        let path = dir.join("j.jsonl");
        let rec = |seq: u64| {
            serde_json::to_string(&JournalRecord {
                seq,
                kind: KIND_LABEL.to_string(),
                node: 0,
                at: 0,
                label: "x".to_string(),
                round: 0,
                row: Vec::new(),
            })
            .unwrap()
        };
        std::fs::write(&path, format!("{}\n{}\n", rec(0), rec(2))).unwrap();
        assert!(matches!(LabelJournal::open(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_fault_is_healed_by_reopen() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let dir = tmpdir("journal-fault");
        let path = dir.join("j.jsonl");
        let (j, _) = LabelJournal::open(&path).unwrap();
        j.append_label(0, 10, "clean", &[1.0]).unwrap();

        let armed = Arc::new(AtomicBool::new(true));
        let flag = armed.clone();
        j.set_fault_hook(Arc::new(move |site: &str| {
            (site == "journal.torn" && flag.swap(false, Ordering::SeqCst))
                .then(|| std::io::Error::other("torn"))
        }));
        assert!(matches!(
            j.append_label(1, 20, "doomed", &[2.0]),
            Err(StoreError::TruncatedTail { .. })
        ));

        // The recovery path: reopen (truncates the half-record) and retry.
        let (j2, replayed) = LabelJournal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact record survives");
        assert_eq!(j2.append_label(1, 20, "retried", &[2.0]).unwrap(), 1);
        let (_, all) = LabelJournal::open(&path).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].label, "retried");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clones_share_the_sequence() {
        let dir = tmpdir("journal-clone");
        let (a, _) = LabelJournal::open(dir.join("j.jsonl")).unwrap();
        let b = a.clone();
        a.append_label(0, 1, "x", &[]).unwrap();
        assert_eq!(b.append_label(1, 2, "y", &[]).unwrap(), 1);
        assert_eq!(a.next_seq(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
