//! The feature-matrix table: extraction memoised to disk.
//!
//! TSFRESH-style extraction dominates offline experiment time, yet its
//! output is a pure function of `(telemetry source, window spec,
//! extractor, preprocessing, class names)`. The cache persists each
//! extracted [`Dataset`] under the FNV-1a key of that tuple
//! ([`FeatureKey`]) in a binary `.fmat` file:
//!
//! ```text
//! "ALBAFMT1"  magic                              8 bytes
//! header_len  u32
//! header      JSON: key descriptor, shape, labels, names, meta
//! header_crc  u32
//! matrix      rows * cols little-endian f64      8*rows*cols bytes
//! matrix_crc  u32
//! ```
//!
//! The raw-bits matrix payload round-trips bit-exactly, so a warm read
//! reproduces the cold extraction's dataset down to the last ulp — the
//! CI gate re-runs an experiment from cache and asserts identical output.

use crate::codec::read_u32_le;
use crate::error::{Result, StoreError};
use crate::keys::key_of;
use crate::store::TelemetryStore;
use crate::window::WindowSpec;
use alba_data::{Dataset, LabelEncoder, Matrix, SampleMeta};
use alba_features::{extract_features, FeatureExtractor, PreprocessConfig};
use alba_telemetry::NodeTelemetry;
use serde::{Deserialize, Serialize};

const FMAT_MAGIC: &[u8; 8] = b"ALBAFMT1";

/// Everything the cached matrix is a function of. Two equal keys must
/// imply bit-identical extractor output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureKey {
    /// Key of the telemetry the features were extracted from (campaign
    /// or fleet entry key).
    pub source_key: String,
    /// Extractor identifier ([`FeatureExtractor::name`]).
    pub extractor: String,
    /// Preprocessing applied before extraction.
    pub pre: PreprocessConfig,
    /// Windowing applied to each run, `None` for whole-run extraction
    /// (the offline pipeline's granularity).
    pub window: Option<WindowSpec>,
    /// Class-name ordering the labels were encoded against.
    pub class_names: Vec<String>,
}

impl FeatureKey {
    /// Whole-run extraction over a stored campaign.
    pub fn whole_run(
        source_key: impl Into<String>,
        extractor: &dyn FeatureExtractor,
        pre: PreprocessConfig,
        class_names: &[String],
    ) -> Self {
        Self {
            source_key: source_key.into(),
            extractor: extractor.name().to_string(),
            pre,
            window: None,
            class_names: class_names.to_vec(),
        }
    }

    /// The 16-hex-digit store key of this descriptor.
    pub fn store_key(&self) -> String {
        key_of("features", self)
    }
}

#[derive(Serialize, Deserialize)]
struct FmatHeader {
    key: FeatureKey,
    rows: u64,
    cols: u64,
    y: Vec<usize>,
    feature_names: Vec<String>,
    meta: Vec<SampleMeta>,
}

/// Disk-backed memoisation of feature extraction (see the module docs).
#[derive(Clone, Debug)]
pub struct FeatureCache {
    store: TelemetryStore,
}

impl TelemetryStore {
    /// This store's feature-matrix table.
    pub fn features(&self) -> FeatureCache {
        FeatureCache { store: self.clone() }
    }
}

impl FeatureCache {
    /// Reads the cached dataset for `key`. `Ok(None)` means absent;
    /// corrupt files surface as errors (heal by rewriting).
    pub fn read(&self, key: &FeatureKey) -> Result<Option<Dataset>> {
        let path = self.store.feature_path(&key.store_key());
        if !path.exists() {
            return Ok(None);
        }
        let _span = self.store.obs().span("store_read_ns", &[("kind", "features")]);
        let bytes = std::fs::read(&path)?;
        // alba-lint: allow(reachable-panic) reason="len >= 16 is checked first in this condition"
        if bytes.len() < 16 || &bytes[..8] != FMAT_MAGIC {
            return Err(StoreError::corrupt(&path, "missing ALBAFMT1 magic"));
        }
        let header_len = read_u32_le(&bytes, 8)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated header length"))?
            as usize;
        let header_end = 12usize
            .checked_add(header_len)
            .filter(|&e| e + 4 <= bytes.len())
            .ok_or(StoreError::TruncatedTail { path: path.display().to_string(), offset: 12 })?;
        // alba-lint: allow(reachable-panic) reason="header_end was bounds-checked above"
        let header_bytes = &bytes[12..header_end];
        let stored = read_u32_le(&bytes, header_end)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated header CRC"))?;
        if crate::crc::crc32(header_bytes) != stored {
            return Err(StoreError::corrupt(&path, "header CRC mismatch"));
        }
        let header: FmatHeader = serde_json::from_str(
            std::str::from_utf8(header_bytes)
                .map_err(|_| StoreError::corrupt(&path, "header is not UTF-8"))?,
        )
        .map_err(|e| StoreError::corrupt(&path, format!("header parse: {e:?}")))?;
        if header.key.store_key() != key.store_key() {
            return Err(StoreError::schema(&path, "cached key differs from requested key"));
        }
        let (rows, cols) = (header.rows as usize, header.cols as usize);
        let n_bytes = rows
            .checked_mul(cols)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| StoreError::corrupt(&path, "matrix shape overflows"))?;
        let matrix_start = header_end + 4;
        let matrix_end = matrix_start + n_bytes;
        if matrix_end + 4 > bytes.len() {
            return Err(StoreError::TruncatedTail {
                path: path.display().to_string(),
                offset: matrix_start as u64,
            });
        }
        // alba-lint: allow(reachable-panic) reason="matrix range was bounds-checked above"
        let payload = &bytes[matrix_start..matrix_end];
        let stored = read_u32_le(&bytes, matrix_end)
            .ok_or_else(|| StoreError::corrupt(&path, "truncated matrix CRC"))?;
        if crate::crc::crc32(payload) != stored {
            return Err(StoreError::corrupt(&path, "matrix CRC mismatch"));
        }
        let data: Vec<f64> = payload
            .chunks_exact(8)
            // alba-lint: allow(reachable-panic) reason="chunks_exact(8) yields exactly 8 bytes"
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();
        let ds = Dataset::new(
            Matrix::from_vec(rows, cols, data),
            header.y,
            LabelEncoder::from_names(&header.key.class_names),
            header.meta,
            header.feature_names,
        );
        self.store.obs().counter("store_feature_rows_read_total", &[]).add(rows as u64);
        Ok(Some(ds))
    }

    /// Persists `ds` under `key`, atomically replacing any previous file.
    pub fn write(&self, key: &FeatureKey, ds: &Dataset) -> Result<()> {
        let _span = self.store.obs().span("store_write_ns", &[("kind", "features")]);
        let path = self.store.feature_path(&key.store_key());
        let (rows, cols) = ds.x.shape();
        let header = serde_json::to_string(&FmatHeader {
            key: key.clone(),
            rows: rows as u64,
            cols: cols as u64,
            y: ds.y.clone(),
            feature_names: ds.feature_names.clone(),
            meta: ds.meta.clone(),
        })
        .map_err(|e| StoreError::corrupt(&path, format!("header serialise: {e:?}")))?;
        let mut bytes = Vec::with_capacity(16 + header.len() + rows * cols * 8);
        bytes.extend_from_slice(FMAT_MAGIC);
        bytes.extend_from_slice(&(header.len() as u32).to_le_bytes());
        bytes.extend_from_slice(header.as_bytes());
        bytes.extend_from_slice(&crate::crc::crc32(header.as_bytes()).to_le_bytes());
        let matrix_start = bytes.len();
        for v in ds.x.as_slice() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        // alba-lint: allow(reachable-panic) reason="matrix_start is an offset into the buffer just built"
        let crc = crate::crc::crc32(&bytes[matrix_start..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// The memoised extraction: cache hit returns the stored dataset;
    /// miss (or corrupt file) extracts from `samples`, persists, returns.
    /// Hits and misses are counted under
    /// `store_cache_{hits,misses}_total{kind="features"}`.
    pub fn get_or_extract(
        &self,
        key: &FeatureKey,
        samples: &[NodeTelemetry],
        extractor: &dyn FeatureExtractor,
    ) -> Result<Dataset> {
        self.get_or_extract_with(key, extractor, || Ok(samples.to_vec()))
    }

    /// [`FeatureCache::get_or_extract`] with a *lazy* telemetry source:
    /// `samples` runs only on a cache miss, so a warm cache never pays for
    /// loading (or generating) the raw telemetry at all.
    pub fn get_or_extract_with(
        &self,
        key: &FeatureKey,
        extractor: &dyn FeatureExtractor,
        samples: impl FnOnce() -> Result<Vec<NodeTelemetry>>,
    ) -> Result<Dataset> {
        assert_eq!(
            key.extractor,
            extractor.name(),
            "feature key names extractor {:?} but {:?} was supplied",
            key.extractor,
            extractor.name()
        );
        let obs = self.store.obs();
        match self.read(key) {
            Ok(Some(ds)) => {
                obs.counter("store_cache_hits_total", &[("kind", "features")]).inc();
                return Ok(ds);
            }
            Ok(None) => {}
            Err(e) => {
                obs.counter("store_corrupt_entries_total", &[("kind", "features")]).inc();
                obs.event(
                    "store_self_heal",
                    &[("kind", "features".into()), ("error", e.to_string().into())],
                );
            }
        }
        obs.counter("store_cache_misses_total", &[("kind", "features")]).inc();
        let samples = samples()?;
        let ds = extract_features(&samples, extractor, &key.pre, &key.class_names);
        self.write(key, &ds)?;
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;
    use alba_features::Mvts;
    use alba_obs::Obs;
    use alba_telemetry::{class_names, CampaignConfig, Scale};

    fn small_campaign() -> Vec<NodeTelemetry> {
        let mut cfg = CampaignConfig::volta(Scale::Smoke, 9);
        cfg.apps.truncate(2);
        cfg.shapes.truncate(1);
        cfg.generate()
    }

    fn key(store: &TelemetryStore) -> FeatureKey {
        let _ = store;
        FeatureKey::whole_run(
            "cafe0123cafe0123",
            &Mvts,
            PreprocessConfig::default(),
            &class_names(),
        )
    }

    #[test]
    fn cold_then_warm_reads_are_bit_identical() {
        let dir = tmpdir("fmat-roundtrip");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        let cache = store.features();
        let samples = small_campaign();
        let k = key(&store);

        let cold = cache.get_or_extract(&k, &samples, &Mvts).unwrap();
        assert_eq!(obs.counter("store_cache_misses_total", &[("kind", "features")]).get(), 1);
        let warm = cache.get_or_extract(&k, &samples, &Mvts).unwrap();
        assert_eq!(obs.counter("store_cache_hits_total", &[("kind", "features")]).get(), 1);

        assert_eq!(cold.x.shape(), warm.x.shape());
        for (a, b) in cold.x.as_slice().iter().zip(warm.x.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "matrix must round-trip bit-exactly");
        }
        assert_eq!(cold.y, warm.y);
        assert_eq!(cold.meta, warm.meta);
        assert_eq!(cold.feature_names, warm.feature_names);
        assert_eq!(cold.encoder.names(), warm.encoder.names());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_file_self_heals() {
        let dir = tmpdir("fmat-heal");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        let cache = store.features();
        let samples = small_campaign();
        let k = key(&store);
        cache.get_or_extract(&k, &samples, &Mvts).unwrap();

        let path = store.feature_path(&k.store_key());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();

        let healed = cache.get_or_extract(&k, &samples, &Mvts).unwrap();
        assert_eq!(healed.len(), samples.len());
        assert_eq!(obs.counter("store_corrupt_entries_total", &[("kind", "features")]).get(), 1);
        // Healed file hits again.
        cache.get_or_extract(&k, &samples, &Mvts).unwrap();
        assert_eq!(obs.counter("store_cache_hits_total", &[("kind", "features")]).get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_cache_file_is_a_clean_error() {
        let dir = tmpdir("fmat-trunc");
        let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        let cache = store.features();
        let samples = small_campaign();
        let k = key(&store);
        cache.get_or_extract(&k, &samples, &Mvts).unwrap();
        let path = store.feature_path(&k.store_key());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
        match cache.read(&k) {
            Err(StoreError::TruncatedTail { .. }) => {}
            other => panic!("expected TruncatedTail, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_spec_changes_the_key() {
        let mut a = FeatureKey::whole_run("k", &Mvts, PreprocessConfig::default(), &class_names());
        let mut b = a.clone();
        b.window = Some(WindowSpec::new(60, 10));
        assert_ne!(a.store_key(), b.store_key());
        a.window = Some(WindowSpec::new(60, 20));
        assert_ne!(a.store_key(), b.store_key());
    }
}
