//! The embedded store: a directory of content-addressed segment sets.
//!
//! ```text
//! <root>/
//!   campaigns/<key16>/manifest.json     campaign telemetry (tag "campaign")
//!   campaigns/<key16>/seg-0000.seg
//!   fleets/<key16>/...                  serve replay streams (tag "fleet")
//!   features/<key16>.fmat               cached feature matrices
//!   journals/<name>.jsonl               write-ahead label journals
//! ```
//!
//! Writes are atomic at entry granularity: segments land in a `*.tmp-<pid>`
//! staging directory that is renamed into place once fully flushed, so a
//! crash mid-write leaves a stale staging dir (ignored and overwritten on
//! the next attempt), never a half-valid entry. All reads and writes are
//! timed through the observability registry (`store_read_ns` /
//! `store_write_ns` histograms, labelled by entry kind) and cache
//! consultations bump `store_cache_hits_total` / `store_cache_misses_total`.

use crate::error::{Result, StoreError};
use crate::fault::FaultHook;
use crate::keys::key_of;
use crate::segment::{SegmentReader, SegmentWriter};
use alba_obs::Obs;
use alba_telemetry::{CampaignConfig, NodeTelemetry};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Blocks per segment file; campaigns larger than this span several
/// segments so no single file (or corruption) covers the whole entry.
const BLOCKS_PER_SEGMENT: usize = 512;

/// Sidecar written next to an entry's segments for human inspection.
#[derive(Serialize, Deserialize)]
struct Manifest {
    key: String,
    tag: String,
    n_samples: u64,
    n_segments: u64,
    config_json: String,
}

/// Handle on one store directory. Cheap to clone; all state is on disk.
#[derive(Clone)]
pub struct TelemetryStore {
    root: PathBuf,
    obs: Obs,
    fault: Option<FaultHook>,
}

impl std::fmt::Debug for TelemetryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryStore")
            .field("root", &self.root)
            .field("fault_hook", &self.fault.is_some())
            .finish()
    }
}

impl TelemetryStore {
    /// Opens (creating if needed) the store rooted at `root`, observed by
    /// the process-global registry.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        Self::with_obs(root, alba_obs::global())
    }

    /// Opens the store with an explicit observability handle.
    pub fn with_obs(root: impl AsRef<Path>, obs: Obs) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        for sub in ["campaigns", "fleets", "features", "journals", "cells"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Self { root, obs, fault: None })
    }

    /// Installs a fault-injection hook consulted at every I/O boundary
    /// (see [`crate::fault`]). Test/chaos machinery only; production
    /// stores never set one.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = Some(hook);
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The observability handle the store records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The installed fault hook, for sibling modules' I/O checks.
    pub(crate) fn fault_hook(&self) -> &Option<FaultHook> {
        &self.fault
    }

    /// Store key of a campaign config.
    pub fn campaign_key(cfg: &CampaignConfig) -> String {
        key_of("campaign", cfg)
    }

    fn entry_dir(&self, kind: &str, key: &str) -> Result<PathBuf> {
        let ns = match kind {
            "campaign" => "campaigns",
            "fleet" => "fleets",
            other => {
                return Err(StoreError::schema(
                    &self.root,
                    format!("unknown segment namespace {other:?}"),
                ))
            }
        };
        Ok(self.root.join(ns).join(key))
    }

    /// Path of the feature-cache file for `key` (used by
    /// [`crate::FeatureCache`]).
    pub(crate) fn feature_path(&self, key: &str) -> PathBuf {
        self.root.join("features").join(format!("{key}.fmat"))
    }

    /// Path of the label journal named `name`.
    pub fn journal_path(&self, name: &str) -> PathBuf {
        self.root.join("journals").join(format!("{name}.jsonl"))
    }

    /// True when the store already holds an entry for `(kind, key)`.
    pub fn contains(&self, kind: &str, key: &str) -> bool {
        self.entry_dir(kind, key).map(|d| d.join("manifest.json").exists()).unwrap_or(false)
    }

    /// Persists `samples` as the `(kind, key)` entry, atomically replacing
    /// any previous version. All samples must share one metric catalog.
    pub fn write_samples(
        &self,
        kind: &str,
        key: &str,
        config_json: &str,
        samples: &[NodeTelemetry],
    ) -> Result<()> {
        let _span = self.obs.span("store_write_ns", &[("kind", kind)]);
        crate::fault::check(&self.fault, "store.write")?;
        let final_dir = self.entry_dir(kind, key)?;
        let stage = final_dir.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::remove_dir_all(&stage).ok();
        std::fs::create_dir_all(&stage)?;

        let metrics = samples.first().map(|s| s.series.metrics.clone()).unwrap_or_default();
        let mut n_segments = 0u64;
        for (i, chunk) in samples.chunks(BLOCKS_PER_SEGMENT).enumerate() {
            let mut w = SegmentWriter::create(stage.join(format!("seg-{i:04}.seg")), &metrics)?;
            for s in chunk {
                w.append(s)?;
            }
            w.finish()?;
            n_segments += 1;
        }
        let manifest = Manifest {
            key: key.to_string(),
            tag: kind.to_string(),
            n_samples: samples.len() as u64,
            n_segments,
            config_json: config_json.to_string(),
        };
        std::fs::write(
            stage.join("manifest.json"),
            serde_json::to_string_pretty(&manifest)
                .map_err(|e| StoreError::corrupt(&stage, format!("manifest: {e:?}")))?,
        )?;
        // Simulated fsync failure: the staged entry never gets published,
        // exactly as if the final flush-and-rename died with the process.
        crate::fault::check(&self.fault, "store.fsync")?;
        std::fs::remove_dir_all(&final_dir).ok();
        std::fs::rename(&stage, &final_dir)?;
        self.obs
            .counter("store_samples_written_total", &[("kind", kind)])
            .add(samples.len() as u64);
        Ok(())
    }

    /// Reads the `(kind, key)` entry. `Ok(None)` means absent (a cache
    /// miss); corrupt or torn entries surface as errors for the caller to
    /// heal (usually by regenerating and rewriting).
    pub fn read_samples(&self, kind: &str, key: &str) -> Result<Option<Vec<NodeTelemetry>>> {
        let dir = self.entry_dir(kind, key)?;
        let manifest_path = dir.join("manifest.json");
        if !manifest_path.exists() {
            return Ok(None);
        }
        let _span = self.obs.span("store_read_ns", &[("kind", kind)]);
        crate::fault::check(&self.fault, "store.read")?;
        let manifest: Manifest = serde_json::from_str(&std::fs::read_to_string(&manifest_path)?)
            .map_err(|e| StoreError::corrupt(&manifest_path, format!("manifest parse: {e:?}")))?;
        if manifest.key != key {
            return Err(StoreError::schema(
                &manifest_path,
                format!("manifest key {} under directory {key}", manifest.key),
            ));
        }
        let mut out = Vec::with_capacity(manifest.n_samples as usize);
        for i in 0..manifest.n_segments {
            let seg = SegmentReader::open(dir.join(format!("seg-{i:04}.seg")))?;
            out.extend(seg.read_all()?);
        }
        if out.len() as u64 != manifest.n_samples {
            return Err(StoreError::corrupt(
                &dir,
                format!(
                    "manifest promises {} samples, segments hold {}",
                    manifest.n_samples,
                    out.len()
                ),
            ));
        }
        self.obs.counter("store_samples_read_total", &[("kind", kind)]).add(out.len() as u64);
        Ok(Some(out))
    }

    /// Memoised campaign generation: returns the stored telemetry when
    /// present and intact, otherwise generates via
    /// [`CampaignConfig::generate`], persists, and returns it. Corrupt
    /// entries self-heal (counted in `store_corrupt_entries_total`).
    pub fn get_or_generate_campaign(&self, cfg: &CampaignConfig) -> Result<Vec<NodeTelemetry>> {
        let key = Self::campaign_key(cfg);
        match self.read_samples("campaign", &key) {
            Ok(Some(samples)) => {
                self.obs.counter("store_cache_hits_total", &[("kind", "campaign")]).inc();
                return Ok(samples);
            }
            Ok(None) => {}
            Err(e) => {
                self.obs.counter("store_corrupt_entries_total", &[("kind", "campaign")]).inc();
                self.obs.event(
                    "store_self_heal",
                    &[("kind", "campaign".into()), ("error", e.to_string().into())],
                );
            }
        }
        self.obs.counter("store_cache_misses_total", &[("kind", "campaign")]).inc();
        let samples = cfg.generate();
        let config_json = serde_json::to_string(cfg)
            .map_err(|e| StoreError::corrupt(&self.root, format!("campaign config: {e:?}")))?;
        self.write_samples("campaign", &key, &config_json, &samples)?;
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;
    use alba_telemetry::Scale;

    #[test]
    fn campaign_memoisation_round_trips_and_counts() {
        let dir = tmpdir("store-campaign");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        let cfg = CampaignConfig::volta(Scale::Smoke, 41);

        let cold = store.get_or_generate_campaign(&cfg).unwrap();
        assert_eq!(obs.counter("store_cache_misses_total", &[("kind", "campaign")]).get(), 1);
        assert_eq!(obs.counter("store_cache_hits_total", &[("kind", "campaign")]).get(), 0);

        let warm = store.get_or_generate_campaign(&cfg).unwrap();
        assert_eq!(obs.counter("store_cache_hits_total", &[("kind", "campaign")]).get(), 1);
        assert_eq!(cold.len(), warm.len());
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.meta, b.meta);
            for m in 0..a.series.n_metrics() {
                for (x, y) in a.series.metric(m).iter().zip(b.series.metric(m)) {
                    assert!(x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()));
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let a = CampaignConfig::volta(Scale::Smoke, 1);
        let b = CampaignConfig::volta(Scale::Smoke, 2);
        assert_ne!(TelemetryStore::campaign_key(&a), TelemetryStore::campaign_key(&b));
    }

    #[test]
    fn corrupt_entry_self_heals() {
        let dir = tmpdir("store-heal");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        let cfg = CampaignConfig::volta(Scale::Smoke, 43);
        store.get_or_generate_campaign(&cfg).unwrap();

        // Vandalise the first segment.
        let key = TelemetryStore::campaign_key(&cfg);
        let seg = dir.join("campaigns").join(&key).join("seg-0000.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let healed = store.get_or_generate_campaign(&cfg).unwrap();
        assert!(!healed.is_empty());
        assert_eq!(obs.counter("store_corrupt_entries_total", &[("kind", "campaign")]).get(), 1);
        // And the rewritten entry now hits.
        store.get_or_generate_campaign(&cfg).unwrap();
        assert_eq!(obs.counter("store_cache_hits_total", &[("kind", "campaign")]).get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_hook_fails_reads_writes_and_publication() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let dir = tmpdir("store-fault");
        let mut store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        let cfg = CampaignConfig::volta(Scale::Smoke, 44);
        store.get_or_generate_campaign(&cfg).unwrap();

        let armed: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let flag = armed.clone();
        store.set_fault_hook(Arc::new(move |site: &str| {
            let want = match flag.load(Ordering::SeqCst) {
                1 => "store.read",
                2 => "store.write",
                3 => "store.fsync",
                _ => return None,
            };
            (site == want).then(|| std::io::Error::other(format!("injected at {site}")))
        }));

        let key = TelemetryStore::campaign_key(&cfg);
        armed.store(1, Ordering::SeqCst);
        assert!(matches!(store.read_samples("campaign", &key), Err(StoreError::Io(_))));
        armed.store(2, Ordering::SeqCst);
        assert!(matches!(store.write_samples("campaign", &key, "{}", &[]), Err(StoreError::Io(_))));
        armed.store(3, Ordering::SeqCst);
        assert!(matches!(store.write_samples("campaign", &key, "{}", &[]), Err(StoreError::Io(_))));
        // A failed fsync never publishes: the original entry survives.
        armed.store(0, Ordering::SeqCst);
        assert!(store.read_samples("campaign", &key).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_entry_reads_as_none() {
        let dir = tmpdir("store-absent");
        let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        assert!(store.read_samples("campaign", "deadbeefdeadbeef").unwrap().is_none());
        assert!(!store.contains("campaign", "deadbeefdeadbeef"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
