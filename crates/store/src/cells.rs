//! Memoised experiment-grid cells: one CRC-checked JSON blob per cell.
//!
//! The grid runner (`alba-grid`) content-addresses every cell of a sweep
//! by the FNV key of its canonical spec and parks the finished result
//! here, so a killed sweep resumes without recomputing a single finished
//! cell. The format is deliberately tiny — cells are small (one session
//! result) and written once:
//!
//! ```text
//! cells/<key16>.cell
//!   magic   "ACL1"        4 bytes
//!   len     u32 LE        payload length
//!   crc     u32 LE        CRC-32 of the payload
//!   payload JSON          the serialised cell result
//! ```
//!
//! Writes are atomic (staged as `*.tmp-<pid>`, renamed into place), and
//! reads validate the CRC — a half-written or vandalised cell degrades
//! to a miss the runner heals by recomputing. Fault sites `cell.write`,
//! `cell.fsync` and `cell.read` mirror the segment-store sites so chaos
//! tests can kill a sweep at exact cell boundaries without disturbing
//! campaign or feature traffic.

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use crate::store::TelemetryStore;
use std::io::Write as _;
use std::path::PathBuf;

/// File magic: "Alba CeLl v1".
const MAGIC: [u8; 4] = *b"ACL1";

/// Cells larger than this are rejected as corrupt framing rather than
/// attempted as one giant allocation (a flipped length byte must not
/// OOM the resume path).
const MAX_CELL_BYTES: u32 = 64 << 20;

impl TelemetryStore {
    /// Path of the memoised cell blob for `key`.
    pub fn cell_path(&self, key: &str) -> PathBuf {
        self.root().join("cells").join(format!("{key}.cell"))
    }

    /// True when an intact-looking cell entry exists for `key` (presence
    /// only; the CRC is validated on read).
    pub fn contains_cell(&self, key: &str) -> bool {
        self.cell_path(key).exists()
    }

    /// Persists `payload` (serialised cell JSON) as the cell entry for
    /// `key`, atomically replacing any previous version.
    pub fn put_cell(&self, key: &str, payload: &[u8]) -> Result<()> {
        let _span = self.obs().span("store_write_ns", &[("kind", "cell")]);
        crate::fault::check(self.fault_hook(), "cell.write")?;
        let final_path = self.cell_path(key);
        let stage = final_path.with_extension(format!("tmp-{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&stage)?;
            f.write_all(&MAGIC)?;
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(&crc32(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.flush()?;
        }
        // Simulated fsync failure: the staged blob never gets published,
        // exactly as if the process died before the rename.
        crate::fault::check(self.fault_hook(), "cell.fsync")?;
        std::fs::rename(&stage, &final_path)?;
        self.obs().counter("store_cells_written_total", &[]).inc();
        Ok(())
    }

    /// Reads the memoised cell for `key`. `Ok(None)` means absent; a
    /// torn or corrupt blob surfaces as an error for the caller to heal
    /// by recomputing (counted via `store_corrupt_entries_total`).
    pub fn get_cell(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let path = self.cell_path(key);
        if !path.exists() {
            return Ok(None);
        }
        let _span = self.obs().span("store_read_ns", &[("kind", "cell")]);
        crate::fault::check(self.fault_hook(), "cell.read")?;
        let bytes = std::fs::read(&path)?;
        // alba-lint: allow(reachable-panic) reason="len >= 12 is checked first in this condition"
        if bytes.len() < 12 || bytes[..4] != MAGIC {
            return Err(StoreError::corrupt(&path, "missing or wrong cell magic"));
        }
        // alba-lint: allow(reachable-panic) reason="header length was verified above"
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        // alba-lint: allow(reachable-panic) reason="header length was verified above"
        let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if len > MAX_CELL_BYTES {
            return Err(StoreError::corrupt(&path, format!("implausible cell length {len}")));
        }
        // alba-lint: allow(reachable-panic) reason="len >= 12 was verified above"
        let payload = &bytes[12..];
        if payload.len() as u32 != len {
            return Err(StoreError::TruncatedTail { path: path.display().to_string(), offset: 12 });
        }
        if crc32(payload) != crc {
            return Err(StoreError::corrupt(&path, "cell payload CRC mismatch"));
        }
        Ok(Some(payload.to_vec()))
    }

    /// Memoised cell lookup with self-healing counters: an intact entry
    /// is a hit, an absent one a miss, and a corrupt one degrades to a
    /// miss after bumping `store_corrupt_entries_total{kind="cell"}`.
    /// Hit/miss land on `store_cache_hits_total` / `_misses_total` with
    /// `kind="cell"` so `store_stats` surfaces them beside campaigns.
    pub fn lookup_cell(&self, key: &str) -> Option<Vec<u8>> {
        match self.get_cell(key) {
            Ok(Some(payload)) => {
                self.obs().counter("store_cache_hits_total", &[("kind", "cell")]).inc();
                Some(payload)
            }
            Ok(None) => {
                self.obs().counter("store_cache_misses_total", &[("kind", "cell")]).inc();
                None
            }
            Err(e) => {
                self.obs().counter("store_corrupt_entries_total", &[("kind", "cell")]).inc();
                self.obs().event(
                    "store_self_heal",
                    &[("kind", "cell".into()), ("error", e.to_string().into())],
                );
                self.obs().counter("store_cache_misses_total", &[("kind", "cell")]).inc();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;
    use alba_obs::Obs;

    #[test]
    fn cell_round_trips_bytes_exactly() {
        let dir = tmpdir("cells-roundtrip");
        let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        let payload = br#"{"cell":1,"f1":[0.5,0.75]}"#;
        store.put_cell("00000000000000aa", payload).unwrap();
        let got = store.get_cell("00000000000000aa").unwrap().expect("present");
        assert_eq!(got, payload);
        assert!(store.contains_cell("00000000000000aa"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absent_cell_is_none_and_counts_a_miss() {
        let dir = tmpdir("cells-absent");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        assert!(store.get_cell("feedfacefeedface").unwrap().is_none());
        assert!(store.lookup_cell("feedfacefeedface").is_none());
        assert_eq!(obs.counter("store_cache_misses_total", &[("kind", "cell")]).get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cell_degrades_to_miss_with_counter() {
        let dir = tmpdir("cells-corrupt");
        let obs = Obs::wall();
        let store = TelemetryStore::with_obs(&dir, obs.clone()).unwrap();
        store.put_cell("00000000000000bb", b"{\"x\":2}").unwrap();

        let path = store.cell_path("00000000000000bb");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        assert!(matches!(store.get_cell("00000000000000bb"), Err(StoreError::Corrupt { .. })));
        assert!(store.lookup_cell("00000000000000bb").is_none());
        assert_eq!(obs.counter("store_corrupt_entries_total", &[("kind", "cell")]).get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_cell_is_a_truncated_tail() {
        let dir = tmpdir("cells-torn");
        let store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        store.put_cell("00000000000000cc", b"0123456789abcdef").unwrap();
        let path = store.cell_path("00000000000000cc");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(matches!(
            store.get_cell("00000000000000cc"),
            Err(StoreError::TruncatedTail { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_sites_fire_at_cell_boundaries() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let dir = tmpdir("cells-fault");
        let mut store = TelemetryStore::with_obs(&dir, Obs::disabled()).unwrap();
        store.put_cell("00000000000000dd", b"{}").unwrap();

        let armed: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let flag = armed.clone();
        store.set_fault_hook(Arc::new(move |site: &str| {
            let want = match flag.load(Ordering::SeqCst) {
                1 => "cell.write",
                2 => "cell.fsync",
                3 => "cell.read",
                _ => return None,
            };
            (site == want).then(|| std::io::Error::other(format!("injected at {site}")))
        }));

        armed.store(1, Ordering::SeqCst);
        assert!(matches!(store.put_cell("00000000000000dd", b"[]"), Err(StoreError::Io(_))));
        armed.store(2, Ordering::SeqCst);
        assert!(matches!(store.put_cell("00000000000000dd", b"[]"), Err(StoreError::Io(_))));
        armed.store(3, Ordering::SeqCst);
        assert!(matches!(store.get_cell("00000000000000dd"), Err(StoreError::Io(_))));
        // Neither failed write published: the original payload survives.
        armed.store(0, Ordering::SeqCst);
        assert_eq!(store.get_cell("00000000000000dd").unwrap().unwrap(), b"{}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
