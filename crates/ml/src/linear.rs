//! Multinomial logistic regression (Table IV's `LR`).
//!
//! Softmax regression trained by full-batch gradient descent with Nesterov
//! momentum. Supports scikit-learn's `penalty` (`l1` via proximal
//! soft-thresholding, `l2` via weight decay) and inverse regularisation
//! strength `C`.

use crate::model::{softmax_row, Classifier};
use alba_data::Matrix;
use serde::{Deserialize, Serialize};

/// Regularisation penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Penalty {
    /// Lasso (sparsity-inducing), applied proximally.
    L1,
    /// Ridge.
    L2,
}

/// Logistic-regression hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LogRegParams {
    /// Penalty kind.
    pub penalty: Penalty,
    /// Inverse regularisation strength (larger = weaker regularisation).
    pub c: f64,
    /// Gradient-descent iterations.
    pub max_iter: usize,
    /// Learning rate.
    pub lr: f64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        Self { penalty: Penalty::L2, c: 1.0, max_iter: 300, lr: 0.5 }
    }
}

/// A fitted multinomial logistic-regression model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogisticRegression {
    params: LogRegParams,
    /// Weights, `n_features x n_classes`.
    w: Matrix,
    /// Intercepts, length `n_classes`.
    b: Vec<f64>,
    n_classes: usize,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    pub fn new(params: LogRegParams) -> Self {
        Self { params, w: Matrix::zeros(0, 0), b: Vec::new(), n_classes: 0 }
    }

    /// Fitted weight matrix (`n_features x n_classes`).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Fraction of exactly-zero weights (L1 sparsity diagnostic).
    pub fn sparsity(&self) -> f64 {
        let total = self.w.as_slice().len();
        if total == 0 {
            return 0.0;
        }
        self.w.as_slice().iter().filter(|&&v| v == 0.0).count() as f64 / total as f64
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        let mut z = crate::nn::par_matmul(x, &self.w);
        let k = self.n_classes;
        for (i, v) in z.as_mut_slice().iter_mut().enumerate() {
            *v += self.b[i % k];
        }
        z
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        self.n_classes = n_classes;
        let (n, d) = x.shape();
        self.w = Matrix::zeros(d, n_classes);
        self.b = vec![0.0; n_classes];
        let lam = 1.0 / (self.params.c * n as f64); // per-sample regularisation
        let lr = self.params.lr;
        let mut vel_w = Matrix::zeros(d, n_classes);
        let mut vel_b = vec![0.0; n_classes];
        let momentum = 0.9;
        let xt = x.transpose();

        for _ in 0..self.params.max_iter {
            // Probabilities under current parameters.
            let mut p = self.logits(x);
            for r in 0..n {
                softmax_row(p.row_mut(r));
            }
            // Gradient: X^T (p - onehot) / n.
            for (i, &c) in y.iter().enumerate() {
                let v = p.get(i, c);
                p.set(i, c, v - 1.0);
            }
            let mut gw = crate::nn::par_matmul(&xt, &p);
            gw.map_inplace(|v| v / n as f64);
            let mut gb = vec![0.0; n_classes];
            for row in p.rows_iter() {
                for (j, &v) in row.iter().enumerate() {
                    gb[j] += v;
                }
            }
            for g in &mut gb {
                *g /= n as f64;
            }
            // Momentum update.
            for ((w, v), &g) in
                self.w.as_mut_slice().iter_mut().zip(vel_w.as_mut_slice()).zip(gw.as_slice())
            {
                *v = momentum * *v - lr * g;
                *w += *v;
            }
            for ((b, v), &g) in self.b.iter_mut().zip(&mut vel_b).zip(&gb) {
                *v = momentum * *v - lr * g;
                *b += *v;
            }
            // Regularisation, applied decoupled from the data gradient so
            // that strong penalties (small C) stay numerically stable.
            match self.params.penalty {
                Penalty::L2 => {
                    // Clamped multiplicative weight decay.
                    let decay = (1.0 - lr * lam).max(0.0);
                    self.w.map_inplace(|w| w * decay);
                }
                Penalty::L1 => {
                    // Proximal soft-thresholding.
                    let thresh = lr * lam;
                    for w in self.w.as_mut_slice() {
                        *w = if *w > thresh {
                            *w - thresh
                        } else if *w < -thresh {
                            *w + thresh
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(self.n_classes > 0, "predict before fit");
        let mut p = self.logits(x);
        for r in 0..p.rows() {
            softmax_row(p.row_mut(r));
        }
        p
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            let jitter = ((i * 13) % 17) as f64 * 0.02;
            match i % 3 {
                0 => {
                    rows.push(vec![0.0 + jitter, 0.0, jitter]);
                    y.push(0);
                }
                1 => {
                    rows.push(vec![1.5, 1.5 - jitter, 0.0]);
                    y.push(1);
                }
                _ => {
                    rows.push(vec![3.0 - jitter, 0.0, 1.0]);
                    y.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs();
        let mut m = LogisticRegression::new(LogRegParams::default());
        m.fit(&x, &y, 3);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn probabilities_are_normalised() {
        let (x, y) = blobs();
        let mut m = LogisticRegression::new(LogRegParams::default());
        m.fit(&x, &y, 3);
        let p = m.predict_proba(&x);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn l1_is_sparser_than_l2() {
        // Only feature 0 is informative; features 1-4 are noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let class = i % 2;
            let noise: Vec<f64> =
                (0..4).map(|k| (((i * 31 + k * 7) % 13) as f64 / 13.0) - 0.5).collect();
            let mut row = vec![class as f64];
            row.extend(noise);
            rows.push(row);
            y.push(class);
        }
        let x = Matrix::from_rows(&rows);
        let mut l1 = LogisticRegression::new(LogRegParams {
            penalty: Penalty::L1,
            c: 0.05,
            ..LogRegParams::default()
        });
        let mut l2 = LogisticRegression::new(LogRegParams {
            penalty: Penalty::L2,
            c: 0.05,
            ..LogRegParams::default()
        });
        l1.fit(&x, &y, 2);
        l2.fit(&x, &y, 2);
        assert!(l1.sparsity() > l2.sparsity(), "l1 {} vs l2 {}", l1.sparsity(), l2.sparsity());
        // Both still predict the informative structure.
        assert_eq!(l1.predict(&x), y);
    }

    #[test]
    fn stronger_regularisation_shrinks_weights() {
        let (x, y) = blobs();
        let mut strong =
            LogisticRegression::new(LogRegParams { c: 0.001, ..LogRegParams::default() });
        let mut weak = LogisticRegression::new(LogRegParams { c: 10.0, ..LogRegParams::default() });
        strong.fit(&x, &y, 3);
        weak.fit(&x, &y, 3);
        let norm = |m: &LogisticRegression| -> f64 {
            m.weights().as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
        };
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn deterministic() {
        let (x, y) = blobs();
        let mut a = LogisticRegression::new(LogRegParams::default());
        let mut b = LogisticRegression::new(LogRegParams::default());
        a.fit(&x, &y, 3);
        b.fit(&x, &y, 3);
        assert_eq!(a.predict_proba(&x).as_slice(), b.predict_proba(&x).as_slice());
    }

    #[test]
    fn unseen_class_column_exists() {
        let (x, y) = blobs();
        let mut m = LogisticRegression::new(LogRegParams::default());
        m.fit(&x, &y, 5);
        let p = m.predict_proba(&x);
        assert_eq!(p.cols(), 5);
    }
}
