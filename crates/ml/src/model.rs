//! The classifier abstraction shared by every model and the active-learning
//! loop.

use alba_data::Matrix;

/// A multi-class probabilistic classifier.
///
/// Implementations are deterministic given their construction-time seed, so
/// experiments are exactly reproducible.
pub trait Classifier: Send + Sync {
    /// Fits the model on `x` (rows = samples) with labels `y` drawn from
    /// `0..n_classes`. Refitting replaces the previous state.
    ///
    /// `n_classes` is passed explicitly because active-learning training
    /// sets routinely miss classes early on, yet the model must still emit
    /// a probability column for every class.
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize);

    /// Returns an `n_samples x n_classes` matrix of class probabilities.
    /// Every row sums to 1.
    ///
    /// # Panics
    /// Panics if called before `fit`.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Predicted class per sample (argmax of `predict_proba`, ties toward
    /// the lower class index).
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(x);
        proba
            .rows_iter()
            .map(|row| {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Number of classes the model was fitted for (0 before `fit`).
    fn n_classes(&self) -> usize;
}

/// Normalises a probability row in place; falls back to uniform when the
/// mass is zero or non-finite.
pub fn normalize_row(row: &mut [f64]) {
    let sum: f64 = row.iter().sum();
    if sum > 1e-300 && sum.is_finite() {
        for v in row.iter_mut() {
            *v /= sum;
        }
    } else {
        let u = 1.0 / row.len().max(1) as f64;
        for v in row.iter_mut() {
            *v = u;
        }
    }
}

/// Numerically stable in-place softmax.
pub fn softmax_row(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant {
        proba: Vec<f64>,
    }

    impl Classifier for Constant {
        fn fit(&mut self, _x: &Matrix, _y: &[usize], _n: usize) {}
        fn predict_proba(&self, x: &Matrix) -> Matrix {
            let mut m = Matrix::zeros(x.rows(), self.proba.len());
            for r in 0..x.rows() {
                m.row_mut(r).copy_from_slice(&self.proba);
            }
            m
        }
        fn n_classes(&self) -> usize {
            self.proba.len()
        }
    }

    #[test]
    fn predict_takes_argmax_with_low_index_ties() {
        let c = Constant { proba: vec![0.4, 0.4, 0.2] };
        let x = Matrix::zeros(3, 1);
        assert_eq!(c.predict(&x), vec![0, 0, 0]);
    }

    #[test]
    fn normalize_handles_zero_mass() {
        let mut row = vec![0.0, 0.0];
        normalize_row(&mut row);
        assert_eq!(row, vec![0.5, 0.5]);
        let mut row = vec![2.0, 6.0];
        normalize_row(&mut row);
        assert_eq!(row, vec![0.25, 0.75]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut row = vec![1000.0, 1001.0];
        softmax_row(&mut row);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(row[1] > row[0]);
    }
}
