//! # alba-ml
//!
//! From-scratch ML substrate for the ALBADross reproduction: CART decision
//! trees, bagged random forests, LightGBM-style leaf-wise gradient boosting,
//! multinomial logistic regression, an MLP classifier, a deep autoencoder
//! (for the Proctor baseline), the paper's evaluation metrics, and
//! stratified cross-validation with Table IV grid search.
//!
//! No external ML dependency is used: the Rust ecosystem does not provide
//! the scikit-learn / LightGBM / modAL pipeline the paper builds on, so the
//! substrate is reimplemented here with deterministic seeding throughout.

#![warn(missing_docs)]

pub mod autoencoder;
pub mod cv;
pub mod forest;
pub mod gbm;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod nn;
pub mod persist;
pub mod spec;
pub mod timed;
pub mod tree;

pub use autoencoder::{Autoencoder, AutoencoderParams};
pub use cv::{cross_val_f1, GridResult, GridSearch};
pub use forest::{ForestParams, RandomForest};
pub use gbm::{GbmParams, GradientBoosting};
pub use linear::{LogRegParams, LogisticRegression, Penalty};
pub use metrics::{mean_and_ci95, ConfusionMatrix, Scores};
pub use mlp::{MlpClassifier, MlpParams};
pub use model::{normalize_row, softmax_row, Classifier};
pub use nn::{par_matmul, Activation, Dense, FeedForward, Optimizer};
pub use persist::{Diagnosis, DiagnosisModel, FittedModel};
pub use spec::{table4_grid, ModelFamily, ModelSpec};
pub use timed::Timed;
pub use tree::{Criterion, DecisionTree, MaxFeatures, TreeParams};
