//! LightGBM-style gradient boosting (Table IV's `LGBM`).
//!
//! Multiclass (softmax) boosting over histogram-based regression trees with
//! *leaf-wise* (best-first) growth bounded by `num_leaves` — the structural
//! signature of LightGBM, as opposed to XGBoost's level-wise growth. The
//! hyperparameters mirror Table IV: `num_leaves`, `learning_rate`,
//! `max_depth` (-1 = unlimited, expressed as `None`), `colsample_bytree`.

use crate::model::{softmax_row, Classifier};
use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Gradient-boosting hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GbmParams {
    /// Boosting rounds (trees per class).
    pub n_estimators: usize,
    /// Maximum leaves per tree (leaf-wise growth bound).
    pub num_leaves: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Depth bound (`None` mirrors LightGBM's `-1`).
    pub max_depth: Option<usize>,
    /// Fraction of features sampled per tree.
    pub colsample_bytree: f64,
    /// Minimum samples per leaf (LightGBM's `min_data_in_leaf`; kept at 1
    /// by default because active-learning training sets start tiny).
    pub min_data_in_leaf: usize,
    /// L2 regularisation on leaf values.
    pub reg_lambda: f64,
    /// Histogram bins per feature.
    pub max_bins: usize,
    /// Master seed (feature subsampling).
    pub seed: u64,
}

impl Default for GbmParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            num_leaves: 31,
            learning_rate: 0.1,
            max_depth: None,
            colsample_bytree: 1.0,
            min_data_in_leaf: 1,
            reg_lambda: 1e-3,
            max_bins: 64,
            seed: 0,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<Node>,
}

impl RegTree {
    fn predict_one(&self, row: &[f64]) -> f64 {
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Per-feature histogram bin edges (quantile binning).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Binning {
    /// `edges[f]` holds ascending upper edges; bin b covers values
    /// `(edges[b-1], edges[b]]`.
    edges: Vec<Vec<f64>>,
}

impl Binning {
    fn fit(x: &Matrix, max_bins: usize) -> Self {
        let (rows, cols) = x.shape();
        let mut edges = Vec::with_capacity(cols);
        let mut col: Vec<f64> = Vec::with_capacity(rows);
        for c in 0..cols {
            col.clear();
            col.extend((0..rows).map(|r| x.get(r, c)));
            col.sort_by(|a, b| a.total_cmp(b));
            col.dedup();
            let mut e: Vec<f64> = if col.len() <= max_bins {
                // One bin per distinct value: edge at each value.
                col.clone()
            } else {
                (1..=max_bins)
                    .map(|b| {
                        let pos = b * (col.len() - 1) / max_bins;
                        col[pos]
                    })
                    .collect()
            };
            e.dedup();
            edges.push(e);
        }
        Self { edges }
    }

    /// Bin index of a value (training-time; values beyond the last edge map
    /// to the last bin).
    fn bin(&self, feature: usize, v: f64) -> usize {
        let e = &self.edges[feature];
        e.partition_point(|&edge| edge < v).min(e.len().saturating_sub(1))
    }

    fn n_bins(&self, feature: usize) -> usize {
        self.edges[feature].len()
    }
}

struct LeafState {
    node_slot: u32,
    indices: Vec<usize>,
    sum_g: f64,
    sum_h: f64,
    depth: usize,
}

/// A fitted gradient-boosting classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GradientBoosting {
    params: GbmParams,
    /// `trees[round][class]`.
    trees: Vec<Vec<RegTree>>,
    n_classes: usize,
    base_score: Vec<f64>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(params: GbmParams) -> Self {
        Self { params, trees: Vec::new(), n_classes: 0, base_score: Vec::new() }
    }

    /// Number of boosting rounds fitted.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    fn leaf_value(&self, sum_g: f64, sum_h: f64) -> f64 {
        -sum_g / (sum_h + self.params.reg_lambda)
    }

    fn gain(&self, g: f64, h: f64) -> f64 {
        g * g / (h + self.params.reg_lambda)
    }

    /// Best split of a leaf over the allowed features; returns
    /// `(gain, feature, threshold)`.
    fn best_split(
        &self,
        binned: &[Vec<u16>],
        binning: &Binning,
        grad: &[f64],
        hess: &[f64],
        leaf: &LeafState,
        features: &[usize],
    ) -> Option<(f64, usize, f64)> {
        let parent_gain = self.gain(leaf.sum_g, leaf.sum_h);
        let min_leaf = self.params.min_data_in_leaf;
        let mut best: Option<(f64, usize, f64)> = None;
        let mut hist_g = vec![0.0f64; self.params.max_bins + 1];
        let mut hist_h = vec![0.0f64; self.params.max_bins + 1];
        let mut hist_n = vec![0usize; self.params.max_bins + 1];
        for &f in features {
            let n_bins = binning.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            hist_g[..n_bins].iter_mut().for_each(|v| *v = 0.0);
            hist_h[..n_bins].iter_mut().for_each(|v| *v = 0.0);
            hist_n[..n_bins].iter_mut().for_each(|v| *v = 0);
            let fb = &binned[f];
            for &i in &leaf.indices {
                let b = fb[i] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += hess[i];
                hist_n[b] += 1;
            }
            let mut gl = 0.0;
            let mut hl = 0.0;
            let mut nl = 0usize;
            for b in 0..n_bins - 1 {
                gl += hist_g[b];
                hl += hist_h[b];
                nl += hist_n[b];
                let nr = leaf.indices.len() - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let gr = leaf.sum_g - gl;
                let hr = leaf.sum_h - hl;
                let gain = self.gain(gl, hl) + self.gain(gr, hr) - parent_gain;
                if gain > best.map_or(1e-9, |(g, _, _)| g) {
                    best = Some((gain, f, binning.edges[f][b]));
                }
            }
        }
        best
    }

    /// Fits one regression tree on the gradients/hessians of one class.
    fn fit_tree(
        &self,
        binned: &[Vec<u16>],
        binning: &Binning,
        grad: &[f64],
        hess: &[f64],
        features: &[usize],
    ) -> RegTree {
        let n = grad.len();
        let mut nodes = vec![Node::Leaf { value: 0.0 }];
        let root = LeafState {
            node_slot: 0,
            indices: (0..n).collect(),
            sum_g: grad.iter().sum(),
            sum_h: hess.iter().sum(),
            depth: 0,
        };
        let mut leaves = vec![root];
        let mut n_leaves = 1usize;

        while n_leaves < self.params.num_leaves {
            // Best split across all current leaves (leaf-wise growth).
            let mut best: Option<(usize, f64, usize, f64)> = None; // (leaf_pos, gain, feature, thr)
            for (pos, leaf) in leaves.iter().enumerate() {
                if let Some(max_d) = self.params.max_depth {
                    if leaf.depth >= max_d {
                        continue;
                    }
                }
                if leaf.indices.len() < 2 * self.params.min_data_in_leaf {
                    continue;
                }
                if let Some((gain, f, thr)) =
                    self.best_split(binned, binning, grad, hess, leaf, features)
                {
                    if gain > best.map_or(0.0, |(_, g, _, _)| g) {
                        best = Some((pos, gain, f, thr));
                    }
                }
            }
            let Some((pos, _gain, feature, threshold)) = best else { break };
            let leaf = leaves.swap_remove(pos);
            let thr_bin = binning.bin(feature, threshold);
            let (li, ri): (Vec<usize>, Vec<usize>) =
                leaf.indices.into_iter().partition(|&i| (binned[feature][i] as usize) <= thr_bin);
            let mk = |indices: Vec<usize>, slot: u32, depth: usize| {
                let sum_g = indices.iter().map(|&i| grad[i]).sum();
                let sum_h = indices.iter().map(|&i| hess[i]).sum();
                LeafState { node_slot: slot, indices, sum_g, sum_h, depth }
            };
            let lslot = nodes.len() as u32;
            nodes.push(Node::Leaf { value: 0.0 });
            let rslot = nodes.len() as u32;
            nodes.push(Node::Leaf { value: 0.0 });
            nodes[leaf.node_slot as usize] =
                Node::Split { feature, threshold, left: lslot, right: rslot };
            leaves.push(mk(li, lslot, leaf.depth + 1));
            leaves.push(mk(ri, rslot, leaf.depth + 1));
            n_leaves += 1;
        }
        // Finalise leaf values with shrinkage.
        for leaf in leaves {
            nodes[leaf.node_slot as usize] = Node::Leaf {
                value: self.params.learning_rate * self.leaf_value(leaf.sum_g, leaf.sum_h),
            };
        }
        RegTree { nodes }
    }

    fn raw_scores(&self, x: &Matrix) -> Matrix {
        let mut scores = Matrix::zeros(x.rows(), self.n_classes);
        for r in 0..x.rows() {
            let row_in = x.row(r);
            let row = scores.row_mut(r);
            row.copy_from_slice(&self.base_score);
            for round in &self.trees {
                for (k, tree) in round.iter().enumerate() {
                    row[k] += tree.predict_one(row_in);
                }
            }
        }
        scores
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        self.n_classes = n_classes;
        self.trees.clear();
        let n = x.rows();
        let n_features = x.cols();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        // Base score: log class priors (stabilises early rounds).
        let mut prior = vec![1e-9f64; n_classes];
        for &c in y {
            prior[c] += 1.0;
        }
        self.base_score = prior.iter().map(|p| (p / n as f64).ln()).collect();

        let binning = Binning::fit(x, self.params.max_bins);
        // Column-major binned copy: binned[f][i].
        let binned: Vec<Vec<u16>> = (0..n_features)
            .map(|f| (0..n).map(|r| binning.bin(f, x.get(r, f)) as u16).collect())
            .collect();

        // Raw scores F[i][k], updated after every round.
        let mut f_scores = vec![self.base_score.clone(); n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        let k_features = ((n_features as f64 * self.params.colsample_bytree).round() as usize)
            .clamp(1, n_features);
        let mut all_features: Vec<usize> = (0..n_features).collect();

        for _round in 0..self.params.n_estimators {
            // Class probabilities from current scores.
            let probs: Vec<Vec<f64>> = f_scores
                .iter()
                .map(|row| {
                    let mut p = row.clone();
                    softmax_row(&mut p);
                    p
                })
                .collect();
            let mut round_trees = Vec::with_capacity(n_classes);
            for k in 0..n_classes {
                for i in 0..n {
                    let p = probs[i][k];
                    let target = if y[i] == k { 1.0 } else { 0.0 };
                    grad[i] = p - target;
                    hess[i] = (p * (1.0 - p)).max(1e-9);
                }
                let features: &[usize] = if k_features == n_features {
                    &all_features
                } else {
                    all_features.shuffle(&mut rng);
                    &all_features[..k_features]
                };
                let tree = self.fit_tree(&binned, &binning, &grad, &hess, features);
                for (i, row) in f_scores.iter_mut().enumerate() {
                    row[k] += tree.predict_one(x.row(i));
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty() || self.n_classes > 0, "predict before fit");
        let mut scores = self.raw_scores(x);
        for r in 0..scores.rows() {
            softmax_row(scores.row_mut(r));
        }
        scores
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> GbmParams {
        GbmParams { n_estimators: 20, num_leaves: 8, learning_rate: 0.3, ..GbmParams::default() }
    }

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let jitter = ((i * 13) % 17) as f64 * 0.02;
            match i % 3 {
                0 => {
                    rows.push(vec![0.0 + jitter, 0.0]);
                    y.push(0);
                }
                1 => {
                    rows.push(vec![1.0, 1.0 - jitter]);
                    y.push(1);
                }
                _ => {
                    rows.push(vec![2.0 - jitter, 0.0 + jitter]);
                    y.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_three_blobs() {
        let (x, y) = blobs();
        let mut g = GradientBoosting::new(quick_params());
        g.fit(&x, &y, 3);
        assert_eq!(g.predict(&x), y);
        assert_eq!(g.n_rounds(), 20);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blobs();
        let mut g = GradientBoosting::new(quick_params());
        g.fit(&x, &y, 3);
        let p = g.predict_proba(&x);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let mut a = GradientBoosting::new(quick_params());
        let mut b = GradientBoosting::new(quick_params());
        a.fit(&x, &y, 3);
        b.fit(&x, &y, 3);
        assert_eq!(a.predict_proba(&x).as_slice(), b.predict_proba(&x).as_slice());
    }

    #[test]
    fn num_leaves_bounds_tree_size() {
        let (x, y) = blobs();
        let mut g = GradientBoosting::new(GbmParams {
            n_estimators: 3,
            num_leaves: 2,
            ..GbmParams::default()
        });
        g.fit(&x, &y, 3);
        for round in &g.trees {
            for tree in round {
                // num_leaves=2 -> at most one split -> at most 3 nodes.
                assert!(tree.nodes.len() <= 3, "tree has {} nodes", tree.nodes.len());
            }
        }
    }

    #[test]
    fn max_depth_bounds_growth() {
        let (x, y) = blobs();
        let mut g = GradientBoosting::new(GbmParams {
            n_estimators: 2,
            num_leaves: 64,
            max_depth: Some(1),
            ..GbmParams::default()
        });
        g.fit(&x, &y, 3);
        for round in &g.trees {
            for tree in round {
                assert!(tree.nodes.len() <= 3, "depth-1 tree has {} nodes", tree.nodes.len());
            }
        }
    }

    #[test]
    fn more_rounds_increase_confidence() {
        let (x, y) = blobs();
        let mut short = GradientBoosting::new(GbmParams { n_estimators: 2, ..quick_params() });
        let mut long = GradientBoosting::new(GbmParams { n_estimators: 40, ..quick_params() });
        short.fit(&x, &y, 3);
        long.fit(&x, &y, 3);
        let ps = short.predict_proba(&x);
        let pl = long.predict_proba(&x);
        let conf = |p: &Matrix| -> f64 {
            (0..p.rows()).map(|r| p.row(r).iter().cloned().fold(0.0, f64::max)).sum::<f64>()
                / p.rows() as f64
        };
        assert!(conf(&pl) > conf(&ps));
    }

    #[test]
    fn colsample_still_learns() {
        let (x, y) = blobs();
        let mut g = GradientBoosting::new(GbmParams { colsample_bytree: 0.5, ..quick_params() });
        g.fit(&x, &y, 3);
        let correct =
            g.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(correct > 0.9, "accuracy {correct}");
    }

    #[test]
    fn binning_handles_few_distinct_values() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0]]);
        let y = vec![0, 0, 1, 1];
        let mut g = GradientBoosting::new(quick_params());
        g.fit(&x, &y, 2);
        assert_eq!(g.predict(&x), y);
    }

    #[test]
    fn single_class_predicts_it() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let y = vec![1, 1];
        let mut g = GradientBoosting::new(quick_params());
        g.fit(&x, &y, 3);
        assert_eq!(g.predict(&x), vec![1, 1]);
    }
}
