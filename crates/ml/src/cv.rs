//! Stratified cross-validation and grid search (paper Sec. III-C/IV-E.2).
//!
//! Hyperparameters are tuned by grid search under 5-fold *stratified*
//! cross-validation, run only on the active-learning training dataset to
//! avoid information leakage from the test set.

use crate::metrics::Scores;
use crate::spec::ModelSpec;
use alba_data::{stratified_k_fold, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Mean macro-F1 of a spec under stratified k-fold cross-validation.
///
/// Deterministic given `seed` (fold assignment and model seeds derive from
/// it).
pub fn cross_val_f1(
    spec: &ModelSpec,
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let folds = stratified_k_fold(y, k, &mut rng);
    let scores: Vec<f64> = folds
        .par_iter()
        .enumerate()
        .map(|(fi, (train, valid))| {
            let xt = x.select_rows(train);
            let yt: Vec<usize> = train.iter().map(|&i| y[i]).collect();
            let xv = x.select_rows(valid);
            let yv: Vec<usize> = valid.iter().map(|&i| y[i]).collect();
            let mut model = spec.with_seed(seed ^ (fi as u64 + 1)).build();
            model.fit(&xt, &yt, n_classes);
            let pred = model.predict(&xv);
            Scores::compute(&yv, &pred, n_classes).f1
        })
        .collect();
    scores.iter().sum::<f64>() / scores.len().max(1) as f64
}

/// One grid-search row: spec plus its CV score.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridResult {
    /// The evaluated configuration.
    pub spec: ModelSpec,
    /// Mean macro-F1 across folds.
    pub cv_f1: f64,
}

/// Result of a full grid search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridSearch {
    /// All evaluated configurations, sorted best-first.
    pub results: Vec<GridResult>,
}

impl GridSearch {
    /// Runs the grid (parallel over configurations x folds).
    pub fn run(
        grid: &[ModelSpec],
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(!grid.is_empty(), "empty grid");
        let mut results: Vec<GridResult> = grid
            .par_iter()
            .map(|spec| GridResult {
                spec: spec.clone(),
                cv_f1: cross_val_f1(spec, x, y, n_classes, k, seed),
            })
            .collect();
        results.sort_by(|a, b| b.cv_f1.total_cmp(&a.cv_f1));
        Self { results }
    }

    /// The best configuration.
    pub fn best(&self) -> &GridResult {
        &self.results[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;
    use crate::spec::ModelFamily;

    fn blobs(n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let jitter = ((i * 13) % 17) as f64 * 0.03;
            if i % 2 == 0 {
                rows.push(vec![0.0 + jitter, jitter]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jitter, 1.0]);
                y.push(1);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn cv_scores_separable_data_high() {
        let (x, y) = blobs(60);
        let spec = ModelSpec::Forest(ForestParams { n_estimators: 10, ..ForestParams::default() });
        let f1 = cross_val_f1(&spec, &x, &y, 2, 5, 7);
        assert!(f1 > 0.95, "cv f1 {f1}");
    }

    #[test]
    fn cv_is_deterministic() {
        let (x, y) = blobs(40);
        let spec = ModelSpec::Forest(ForestParams { n_estimators: 5, ..ForestParams::default() });
        let a = cross_val_f1(&spec, &x, &y, 2, 5, 3);
        let b = cross_val_f1(&spec, &x, &y, 2, 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn grid_search_sorts_best_first() {
        let (x, y) = blobs(60);
        // A deliberately weak configuration (depth 0 is impossible; use
        // a 1-tree forest with depth 1 vs a strong forest).
        let weak = ModelSpec::Forest(ForestParams {
            n_estimators: 1,
            max_depth: Some(1),
            ..ForestParams::default()
        });
        let strong =
            ModelSpec::Forest(ForestParams { n_estimators: 20, ..ForestParams::default() });
        let gs = GridSearch::run(&[weak, strong], &x, &y, 2, 4, 11);
        assert_eq!(gs.results.len(), 2);
        assert!(gs.results[0].cv_f1 >= gs.results[1].cv_f1);
        assert!(gs.best().cv_f1 > 0.9);
    }

    #[test]
    fn tuned_specs_run_through_cv() {
        let (x, y) = blobs(40);
        for family in [ModelFamily::Lr, ModelFamily::Rf, ModelFamily::Lgbm] {
            let f1 = cross_val_f1(&ModelSpec::tuned(family, true), &x, &y, 2, 3, 1);
            assert!(f1 > 0.8, "{family:?} f1 {f1}");
        }
    }
}
