//! Evaluation metrics (paper Sec. V).
//!
//! The paper reports three scores: the macro-averaged F1-score, the false
//! alarm rate (healthy samples classified as any anomaly), and the anomaly
//! miss rate (anomalous samples classified as healthy). Class 0 is the
//! `healthy` class throughout the workspace.

use serde::{Deserialize, Serialize};

/// A confusion matrix over `n` classes; `counts[truth][pred]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_predictions(truth: &[usize], pred: &[usize], n_classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len(), "prediction length mismatch");
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&t, &p) in truth.iter().zip(pred) {
            assert!(t < n_classes && p < n_classes, "label out of range");
            counts[t * n_classes + p] += 1;
        }
        Self { n: n_classes, counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.n + p]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Per-class precision (0.0 when the class was never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.get(class, class) as f64;
        let predicted: usize = (0..self.n).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Per-class recall (0.0 when the class has no true samples).
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.get(class, class) as f64;
        let actual: usize = (0..self.n).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f64
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r < 1e-12 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that appear in the truth or the
    /// predictions (classes absent from both are excluded, mirroring
    /// scikit-learn's behaviour with `labels` restricted to observed ones).
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.n {
            let present = (0..self.n).any(|k| self.get(c, k) > 0 || self.get(k, c) > 0);
            if present {
                sum += self.f1(c);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.n).map(|c| self.get(c, c)).sum::<usize>() as f64 / total as f64
    }

    /// False alarm rate: fraction of *healthy* samples (true class
    /// `healthy_class`) classified as any other class.
    pub fn false_alarm_rate(&self, healthy_class: usize) -> f64 {
        let healthy: usize = (0..self.n).map(|p| self.get(healthy_class, p)).sum();
        if healthy == 0 {
            return 0.0;
        }
        let false_alarms = healthy - self.get(healthy_class, healthy_class);
        false_alarms as f64 / healthy as f64
    }

    /// Anomaly miss rate: fraction of *anomalous* samples (true class is
    /// not `healthy_class`) classified as healthy.
    pub fn anomaly_miss_rate(&self, healthy_class: usize) -> f64 {
        let mut anomalous = 0usize;
        let mut missed = 0usize;
        for t in 0..self.n {
            if t == healthy_class {
                continue;
            }
            for p in 0..self.n {
                let c = self.get(t, p);
                anomalous += c;
                if p == healthy_class {
                    missed += c;
                }
            }
        }
        if anomalous == 0 {
            0.0
        } else {
            missed as f64 / anomalous as f64
        }
    }
}

/// The paper's score triple.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scores {
    /// Macro-averaged F1-score.
    pub f1: f64,
    /// False-positive rate on healthy samples.
    pub false_alarm_rate: f64,
    /// False-negative rate on anomalous samples.
    pub anomaly_miss_rate: f64,
}

impl Scores {
    /// Computes the score triple from predictions (class 0 = healthy).
    pub fn compute(truth: &[usize], pred: &[usize], n_classes: usize) -> Self {
        let cm = ConfusionMatrix::from_predictions(truth, pred, n_classes);
        Self {
            f1: cm.macro_f1(),
            false_alarm_rate: cm.false_alarm_rate(0),
            anomaly_miss_rate: cm.anomaly_miss_rate(0),
        }
    }
}

/// Mean and symmetric 95 % confidence half-width of a set of values
/// (normal approximation, as in the paper's shaded CI bands).
pub fn mean_and_ci95(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 3);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.false_alarm_rate(0), 0.0);
        assert_eq!(cm.anomaly_miss_rate(0), 0.0);
    }

    #[test]
    fn known_confusion_values() {
        // truth:  0 0 0 0 1 1
        // pred:   0 0 1 1 1 0
        let truth = vec![0, 0, 0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        assert_eq!(cm.get(0, 1), 2);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        // False alarm: 2 of 4 healthy misclassified.
        assert!((cm.false_alarm_rate(0) - 0.5).abs() < 1e-12);
        // Miss: 1 of 2 anomalies predicted healthy.
        assert!((cm.anomaly_miss_rate(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        // Class 2 never appears in truth or predictions.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 3);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn macro_f1_penalises_predicted_only_classes() {
        let truth = vec![0, 0, 0, 0];
        let pred = vec![0, 0, 0, 1];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        // Class 1: precision 0, recall 0 -> F1 0; class 0 F1 = 6/7.
        let f0 = 2.0 * (1.0 * 0.75) / 1.75;
        assert!((cm.macro_f1() - f0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn rates_with_no_relevant_samples_are_zero() {
        let truth = vec![1, 1];
        let pred = vec![1, 1];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred, 2);
        assert_eq!(cm.false_alarm_rate(0), 0.0, "no healthy samples");
        let truth = vec![0, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth, 2);
        assert_eq!(cm.anomaly_miss_rate(0), 0.0, "no anomalous samples");
    }

    #[test]
    fn scores_compute_matches_manual() {
        let truth = vec![0, 1, 2, 2];
        let pred = vec![0, 0, 2, 1];
        let s = Scores::compute(&truth, &pred, 3);
        assert!((s.anomaly_miss_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.false_alarm_rate, 0.0);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }

    #[test]
    fn ci_is_zero_for_singletons_and_positive_for_spread() {
        assert_eq!(mean_and_ci95(&[5.0]), (5.0, 0.0));
        let (m, ci) = mean_and_ci95(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!(ci > 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_labels_panic() {
        let _ = ConfusionMatrix::from_predictions(&[0], &[5], 2);
    }
}
