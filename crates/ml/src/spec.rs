//! Model specifications and the Table IV hyperparameter search spaces.
//!
//! A [`ModelSpec`] is a cloneable, serialisable description of one model
//! configuration; [`ModelSpec::build`] instantiates a boxed classifier.
//! [`table4_grid`] enumerates exactly the search space of Table IV for each
//! model family.

use crate::forest::{ForestParams, RandomForest};
use crate::gbm::{GbmParams, GradientBoosting};
use crate::linear::{LogRegParams, LogisticRegression, Penalty};
use crate::mlp::{MlpClassifier, MlpParams};
use crate::model::Classifier;
use crate::timed::Timed;
use crate::tree::Criterion;
use serde::{Deserialize, Serialize};

/// The four model families evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Logistic regression.
    Lr,
    /// Random forest.
    Rf,
    /// Light gradient-boosting machine.
    Lgbm,
    /// Multi-layer perceptron.
    Mlp,
}

impl ModelFamily {
    /// Display name as used in Table IV.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::Lr => "LR",
            ModelFamily::Rf => "RF",
            ModelFamily::Lgbm => "LGBM",
            ModelFamily::Mlp => "MLP",
        }
    }
}

/// A fully specified model configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Logistic regression.
    LogReg(LogRegParams),
    /// Random forest.
    Forest(ForestParams),
    /// Gradient boosting.
    Gbm(GbmParams),
    /// Multi-layer perceptron.
    Mlp(MlpParams),
}

impl ModelSpec {
    /// Instantiates an unfitted classifier.
    ///
    /// The classifier is wrapped in [`Timed`](crate::Timed), so fit and
    /// predict times land in the global obs registry (when one is
    /// installed) under `model_fit_ns{model=...}` /
    /// `model_predict_ns{model=...}` with the Table IV family name.
    pub fn build(&self) -> Box<dyn Classifier> {
        let label = self.family().name();
        match self {
            ModelSpec::LogReg(p) => Box::new(Timed::new(LogisticRegression::new(*p), label)),
            ModelSpec::Forest(p) => Box::new(Timed::new(RandomForest::new(*p), label)),
            ModelSpec::Gbm(p) => Box::new(Timed::new(GradientBoosting::new(*p), label)),
            ModelSpec::Mlp(p) => Box::new(Timed::new(MlpClassifier::new(p.clone()), label)),
        }
    }

    /// The family this spec belongs to.
    pub fn family(&self) -> ModelFamily {
        match self {
            ModelSpec::LogReg(_) => ModelFamily::Lr,
            ModelSpec::Forest(_) => ModelFamily::Rf,
            ModelSpec::Gbm(_) => ModelFamily::Lgbm,
            ModelSpec::Mlp(_) => ModelFamily::Mlp,
        }
    }

    /// Returns a copy with the stochastic seed replaced (used to vary
    /// train-test repetitions without changing hyperparameters).
    pub fn with_seed(&self, seed: u64) -> ModelSpec {
        let mut s = self.clone();
        match &mut s {
            ModelSpec::LogReg(_) => {}
            ModelSpec::Forest(p) => p.seed = seed,
            ModelSpec::Gbm(p) => p.seed = seed,
            ModelSpec::Mlp(p) => p.seed = seed,
        }
        s
    }

    /// Human-readable hyperparameter summary (for Table IV style reports).
    pub fn describe(&self) -> String {
        match self {
            ModelSpec::LogReg(p) => format!(
                "LR(penalty={}, C={})",
                match p.penalty {
                    Penalty::L1 => "l1",
                    Penalty::L2 => "l2",
                },
                p.c
            ),
            ModelSpec::Forest(p) => format!(
                "RF(n_estimators={}, max_depth={}, criterion={})",
                p.n_estimators,
                p.max_depth.map_or("None".to_string(), |d| d.to_string()),
                match p.criterion {
                    Criterion::Gini => "gini",
                    Criterion::Entropy => "entropy",
                }
            ),
            ModelSpec::Gbm(p) => format!(
                "LGBM(num_leaves={}, learning_rate={}, max_depth={}, colsample_bytree={})",
                p.num_leaves,
                p.learning_rate,
                p.max_depth.map_or("-1".to_string(), |d| d.to_string()),
                p.colsample_bytree
            ),
            ModelSpec::Mlp(p) => format!(
                "MLP(max_iter={}, hidden_layer_sizes={:?}, alpha={})",
                p.max_iter, p.hidden_layer_sizes, p.alpha
            ),
        }
    }

    /// The paper's tuned configuration for a dataset (Table IV's starred /
    /// crossed entries). `volta = true` selects the `+` entries, otherwise
    /// the `*` (Eclipse) entries.
    pub fn tuned(family: ModelFamily, volta: bool) -> ModelSpec {
        match (family, volta) {
            (ModelFamily::Lr, true) => ModelSpec::LogReg(LogRegParams {
                penalty: Penalty::L1,
                c: 10.0,
                ..LogRegParams::default()
            }),
            (ModelFamily::Lr, false) => ModelSpec::LogReg(LogRegParams {
                penalty: Penalty::L1,
                c: 1.0,
                ..LogRegParams::default()
            }),
            (ModelFamily::Rf, true) => ModelSpec::Forest(ForestParams {
                n_estimators: 20,
                max_depth: Some(8),
                criterion: Criterion::Entropy,
                ..ForestParams::default()
            }),
            (ModelFamily::Rf, false) => ModelSpec::Forest(ForestParams {
                n_estimators: 200,
                max_depth: Some(8),
                criterion: Criterion::Entropy,
                ..ForestParams::default()
            }),
            (ModelFamily::Lgbm, true) => ModelSpec::Gbm(GbmParams {
                num_leaves: 128,
                learning_rate: 0.1,
                max_depth: Some(8),
                colsample_bytree: 1.0,
                ..GbmParams::default()
            }),
            (ModelFamily::Lgbm, false) => ModelSpec::Gbm(GbmParams {
                num_leaves: 31,
                learning_rate: 0.1,
                max_depth: None,
                colsample_bytree: 1.0,
                ..GbmParams::default()
            }),
            (ModelFamily::Mlp, true) => ModelSpec::Mlp(MlpParams {
                max_iter: 100,
                hidden_layer_sizes: vec![100],
                alpha: 0.01,
                ..MlpParams::default()
            }),
            (ModelFamily::Mlp, false) => ModelSpec::Mlp(MlpParams {
                max_iter: 100,
                hidden_layer_sizes: vec![50, 100, 50],
                alpha: 0.0001,
                ..MlpParams::default()
            }),
        }
    }
}

/// Enumerates the exact Table IV hyperparameter grid for one family.
pub fn table4_grid(family: ModelFamily) -> Vec<ModelSpec> {
    match family {
        ModelFamily::Lr => {
            let mut out = Vec::new();
            for penalty in [Penalty::L1, Penalty::L2] {
                for c in [0.001, 0.01, 0.1, 1.0, 10.0] {
                    out.push(ModelSpec::LogReg(LogRegParams {
                        penalty,
                        c,
                        ..LogRegParams::default()
                    }));
                }
            }
            out
        }
        ModelFamily::Rf => {
            let mut out = Vec::new();
            for n_estimators in [8, 10, 20, 100, 200] {
                for max_depth in [None, Some(4), Some(8), Some(10), Some(20)] {
                    for criterion in [Criterion::Gini, Criterion::Entropy] {
                        out.push(ModelSpec::Forest(ForestParams {
                            n_estimators,
                            max_depth,
                            criterion,
                            ..ForestParams::default()
                        }));
                    }
                }
            }
            out
        }
        ModelFamily::Lgbm => {
            let mut out = Vec::new();
            for num_leaves in [2, 8, 31, 128] {
                for learning_rate in [0.01, 0.1, 0.3] {
                    for max_depth in [None, Some(2), Some(8)] {
                        for colsample_bytree in [0.5, 1.0] {
                            out.push(ModelSpec::Gbm(GbmParams {
                                num_leaves,
                                learning_rate,
                                max_depth,
                                colsample_bytree,
                                ..GbmParams::default()
                            }));
                        }
                    }
                }
            }
            out
        }
        ModelFamily::Mlp => {
            let mut out = Vec::new();
            for max_iter in [100, 200, 500, 1000] {
                for hidden in [vec![10, 10, 10], vec![50, 100, 50], vec![100]] {
                    for alpha in [0.0001, 0.001, 0.01] {
                        out.push(ModelSpec::Mlp(MlpParams {
                            max_iter,
                            hidden_layer_sizes: hidden.clone(),
                            alpha,
                            ..MlpParams::default()
                        }));
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::Matrix;

    #[test]
    fn grid_sizes_match_table_iv() {
        assert_eq!(table4_grid(ModelFamily::Lr).len(), 2 * 5);
        assert_eq!(table4_grid(ModelFamily::Rf).len(), 5 * 5 * 2);
        assert_eq!(table4_grid(ModelFamily::Lgbm).len(), 4 * 3 * 3 * 2);
        assert_eq!(table4_grid(ModelFamily::Mlp).len(), 4 * 3 * 3);
    }

    #[test]
    fn specs_build_and_fit() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![1.0], vec![1.1]]);
        let y = vec![0, 0, 1, 1];
        for family in [ModelFamily::Lr, ModelFamily::Rf, ModelFamily::Lgbm, ModelFamily::Mlp] {
            let spec = ModelSpec::tuned(family, true);
            assert_eq!(spec.family(), family);
            let mut model = spec.build();
            model.fit(&x, &y, 2);
            let p = model.predict_proba(&x);
            assert_eq!(p.shape(), (4, 2));
        }
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let spec = ModelSpec::tuned(ModelFamily::Rf, true);
        let a = spec.with_seed(1);
        let b = spec.with_seed(2);
        assert_eq!(a.describe(), b.describe());
        if let (ModelSpec::Forest(pa), ModelSpec::Forest(pb)) = (&a, &b) {
            assert_ne!(pa.seed, pb.seed);
        } else {
            panic!("expected forests");
        }
    }

    #[test]
    fn describe_mentions_key_params() {
        let s = ModelSpec::tuned(ModelFamily::Lgbm, false).describe();
        assert!(s.contains("num_leaves=31"), "{s}");
        let s = ModelSpec::tuned(ModelFamily::Lr, true).describe();
        assert!(s.contains("l1") && s.contains("C=10"), "{s}");
    }
}
