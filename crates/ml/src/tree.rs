//! CART decision trees with Gini / entropy criteria.
//!
//! Foundation of the random forest (the paper's best model on both
//! datasets). Supports per-split random feature subsetting (for forests),
//! depth limits, and probabilistic leaf predictions (class frequencies),
//! matching scikit-learn's `DecisionTreeClassifier` semantics.

use crate::model::Classifier;
use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Split-quality criterion (Table IV: `gini`, `entropy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Gini impurity `1 - sum p^2`.
    Gini,
    /// Shannon entropy `-sum p log2 p`.
    Entropy,
}

impl Criterion {
    fn impurity(self, counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Criterion::Gini => 1.0 - counts.iter().map(|&c| (c / total) * (c / total)).sum::<f64>(),
            Criterion::Entropy => -counts
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / total;
                    p * p.log2()
                })
                .sum::<f64>(),
        }
    }
}

/// How many features to consider per split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features (plain CART).
    All,
    /// `sqrt(n_features)` (random-forest default).
    Sqrt,
    /// `log2(n_features)`.
    Log2,
    /// A fixed count (clamped to the feature count).
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n_features as f64).log2().round() as usize,
            MaxFeatures::Count(k) => k,
        };
        k.clamp(1, n_features.max(1))
    }
}

/// Decision-tree hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (`None` = unlimited; Table IV's `max_depth: None`).
    pub max_depth: Option<usize>,
    /// Split criterion.
    pub criterion: Criterion,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: None,
            criterion: Criterion::Gini,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf { dist: Vec<f64> },
    Split { feature: usize, threshold: f64, left: u32, right: u32 },
}

/// A fitted CART decision tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams) -> Self {
        Self { params, nodes: Vec::new(), n_classes: 0 }
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: u32) -> usize {
            match &nodes[i as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    fn leaf_dist(&self, counts: &[f64]) -> Node {
        let total: f64 = counts.iter().sum();
        let dist = if total > 0.0 {
            counts.iter().map(|&c| c / total).collect()
        } else {
            vec![1.0 / self.n_classes as f64; self.n_classes]
        };
        Node::Leaf { dist }
    }

    /// Finds the best `(feature, threshold, gain)` for the samples in `idx`.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[usize],
        idx: &[usize],
        counts: &[f64],
        features: &[usize],
        scratch: &mut Vec<(f64, usize)>,
    ) -> Option<(usize, f64, f64)> {
        let total = idx.len() as f64;
        let parent_impurity = self.params.criterion.impurity(counts, total);
        if parent_impurity <= 1e-12 {
            return None;
        }
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<(usize, f64, f64)> = None;
        let mut left_counts = vec![0.0f64; self.n_classes];
        for &f in features {
            scratch.clear();
            scratch.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
            if scratch[0].0 == scratch[scratch.len() - 1].0 {
                continue; // constant within the node
            }
            left_counts.iter_mut().for_each(|c| *c = 0.0);
            let mut n_left = 0.0f64;
            for w in 0..scratch.len() - 1 {
                let (v, c) = scratch[w];
                left_counts[c] += 1.0;
                n_left += 1.0;
                let next_v = scratch[w + 1].0;
                if v == next_v {
                    continue; // can only split between distinct values
                }
                let n_right = total - n_left;
                if (n_left as usize) < min_leaf || (n_right as usize) < min_leaf {
                    continue;
                }
                let left_imp = self.params.criterion.impurity(&left_counts, n_left);
                let right_counts: Vec<f64> =
                    counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
                let right_imp = self.params.criterion.impurity(&right_counts, n_right);
                let weighted = (n_left * left_imp + n_right * right_imp) / total;
                let gain = parent_impurity - weighted;
                // Zero-gain splits are still taken on impure nodes (as in
                // scikit-learn): greedy CART cannot learn XOR-like patterns
                // otherwise. Recursion terminates because both children are
                // strictly smaller.
                if gain > -1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, (v + next_v) / 2.0, gain));
                }
            }
        }
        best
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "labels must match rows");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        self.n_classes = n_classes;
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n_features = x.cols();
        let k_features = self.params.max_features.resolve(n_features);
        let mut all_features: Vec<usize> = (0..n_features).collect();
        let mut scratch: Vec<(f64, usize)> = Vec::new();

        // Iterative build: (node slot, sample indices, depth).
        let root_idx: Vec<usize> = (0..x.rows()).collect();
        self.nodes.push(Node::Leaf { dist: vec![] }); // placeholder
        let mut stack: Vec<(u32, Vec<usize>, usize)> = vec![(0, root_idx, 0)];

        while let Some((slot, idx, depth)) = stack.pop() {
            let mut counts = vec![0.0f64; n_classes];
            for &i in &idx {
                counts[y[i]] += 1.0;
            }
            let depth_ok = self.params.max_depth.is_none_or(|d| depth < d);
            let size_ok = idx.len() >= self.params.min_samples_split;
            let split = if depth_ok && size_ok {
                let features: &[usize] = if k_features == n_features {
                    &all_features
                } else {
                    all_features.shuffle(&mut rng);
                    &all_features[..k_features]
                };
                self.best_split(x, y, &idx, &counts, features, &mut scratch)
            } else {
                None
            };
            match split {
                Some((feature, threshold, _gain)) => {
                    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                        idx.into_iter().partition(|&i| x.get(i, feature) <= threshold);
                    let left = self.nodes.len() as u32;
                    self.nodes.push(Node::Leaf { dist: vec![] });
                    let right = self.nodes.len() as u32;
                    self.nodes.push(Node::Leaf { dist: vec![] });
                    self.nodes[slot as usize] = Node::Split { feature, threshold, left, right };
                    stack.push((left, left_idx, depth + 1));
                    stack.push((right, right_idx, depth + 1));
                }
                None => {
                    self.nodes[slot as usize] = self.leaf_dist(&counts);
                }
            }
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.nodes.is_empty(), "predict_proba called before fit");
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut node = 0u32;
            loop {
                match &self.nodes[node as usize] {
                    Node::Leaf { dist } => {
                        out.row_mut(r).copy_from_slice(dist);
                        break;
                    }
                    Node::Split { feature, threshold, left, right } => {
                        node = if row[*feature] <= *threshold { *left } else { *right };
                    }
                }
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let jitter = (i % 7) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push(vec![0.0 + jitter, 0.0 - jitter]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jitter, 1.0 + jitter]);
                y.push(1);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separable_data_is_learned_perfectly() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y, 2);
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn probabilities_reflect_leaf_purity() {
        // One feature, classes overlap in the middle region.
        let x =
            Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![0.8], vec![0.9], vec![1.0]]);
        let y = vec![0, 0, 1, 1, 1, 1];
        let mut t = DecisionTree::new(TreeParams { max_depth: Some(1), ..TreeParams::default() });
        t.fit(&x, &y, 2);
        let proba = t.predict_proba(&x);
        for r in 0..x.rows() {
            let s: f64 = proba.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Depth-1 stump: best split at 0.15 (left pure 0, right 1/4 vs 3/4... )
        assert!(proba.get(0, 0) > proba.get(5, 0));
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(TreeParams { max_depth: Some(0), ..TreeParams::default() });
        t.fit(&x, &y, 2);
        assert_eq!(t.n_nodes(), 1, "depth 0 is a single leaf");
        let proba = t.predict_proba(&x);
        assert!((proba.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_criterion_also_separates() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(TreeParams {
            criterion: Criterion::Entropy,
            ..TreeParams::default()
        });
        t.fit(&x, &y, 2);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(TreeParams { min_samples_leaf: 2, ..TreeParams::default() });
        t.fit(&x, &y, 2);
        // The only legal splits leave >=2 per side; the pure separation
        // (3 vs 1) is forbidden, so the class-1 sample cannot be isolated.
        let pred = t.predict(&x);
        assert_eq!(pred[0], 0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let y = vec![0, 1, 0];
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y, 2);
        assert_eq!(t.n_nodes(), 1);
        let p = t.predict_proba(&x);
        assert!((p.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_classes_get_zero_probability_columns() {
        let (x, y) = blobs();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&x, &y, 4); // classes 2 and 3 unseen
        let p = t.predict_proba(&x);
        assert_eq!(p.cols(), 4);
        for r in 0..x.rows() {
            assert_eq!(p.get(r, 2), 0.0);
            assert_eq!(p.get(r, 3), 0.0);
        }
    }

    #[test]
    fn feature_subsetting_is_deterministic_per_seed() {
        let (x, y) = blobs();
        let params =
            TreeParams { max_features: MaxFeatures::Count(1), seed: 3, ..TreeParams::default() };
        let mut a = DecisionTree::new(params);
        let mut b = DecisionTree::new(params);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn xor_needs_depth_two() {
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let y = vec![0, 1, 1, 0];
        let mut shallow =
            DecisionTree::new(TreeParams { max_depth: Some(1), ..TreeParams::default() });
        shallow.fit(&x, &y, 2);
        assert_ne!(shallow.predict(&x), y, "a stump cannot learn XOR");
        let mut deep = DecisionTree::new(TreeParams::default());
        deep.fit(&x, &y, 2);
        assert_eq!(deep.predict(&x), y);
    }
}
