//! Model persistence (paper Sec. III-E: "The final model is stored as a
//! *pickle* object, and for a given sample, it returns the diagnosed
//! anomaly label and its confidence").
//!
//! The Rust equivalent: fitted models serialise to JSON through serde. A
//! [`DiagnosisModel`] bundles the fitted classifier with the class names so
//! a deployment can answer "which anomaly, how confident" for new samples.

use crate::forest::RandomForest;
use crate::gbm::GradientBoosting;
use crate::linear::LogisticRegression;
use crate::mlp::MlpClassifier;
use crate::model::Classifier;
use alba_data::Matrix;
use serde::{Deserialize, Serialize};

/// A serialisable fitted classifier (one variant per model family).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FittedModel {
    /// Random forest.
    Forest(RandomForest),
    /// Gradient boosting.
    Gbm(GradientBoosting),
    /// Logistic regression.
    LogReg(LogisticRegression),
    /// Multi-layer perceptron.
    Mlp(MlpClassifier),
}

impl FittedModel {
    fn as_classifier(&self) -> &dyn Classifier {
        match self {
            FittedModel::Forest(m) => m,
            FittedModel::Gbm(m) => m,
            FittedModel::LogReg(m) => m,
            FittedModel::Mlp(m) => m,
        }
    }

    /// Short family name, used as the `model` label on obs metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            FittedModel::Forest(_) => "RF",
            FittedModel::Gbm(_) => "LGBM",
            FittedModel::LogReg(_) => "LR",
            FittedModel::Mlp(_) => "MLP",
        }
    }
}

/// One diagnosis: label plus the model's confidence in it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Predicted class name (e.g. `"healthy"`, `"memleak"`).
    pub label: String,
    /// Probability assigned to the predicted class.
    pub confidence: f64,
}

/// The deployable artifact: fitted model + class names.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiagnosisModel {
    /// The fitted classifier.
    pub model: FittedModel,
    /// Class names, index-aligned with the model's probability columns.
    pub class_names: Vec<String>,
}

impl DiagnosisModel {
    /// Bundles a fitted model with its class names.
    ///
    /// # Panics
    /// Panics when the class-name count does not match the model.
    pub fn new(model: FittedModel, class_names: Vec<String>) -> Self {
        assert_eq!(
            model.as_classifier().n_classes(),
            class_names.len(),
            "class names must match the fitted model"
        );
        Self { model, class_names }
    }

    /// Full class-probability matrix for every row of `x` (one column per
    /// entry of [`DiagnosisModel::class_names`]). Online consumers — the
    /// fleet service's uncertainty gate, the active-learning strategies —
    /// need the whole distribution, not just the argmax that
    /// [`DiagnosisModel::diagnose`] reports.
    pub fn probabilities(&self, x: &Matrix) -> Matrix {
        let _span = alba_obs::global().span("model_predict_ns", &[("model", self.model.kind())]);
        self.model.as_classifier().predict_proba(x)
    }

    /// Diagnoses every row of `x`: the predicted anomaly label and its
    /// confidence (Sec. III-E's deployment interface).
    pub fn diagnose(&self, x: &Matrix) -> Vec<Diagnosis> {
        let proba = self.probabilities(x);
        (0..proba.rows())
            .map(|r| {
                let row = proba.row(r);
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                Diagnosis { label: self.class_names[best].clone(), confidence: row[best] }
            })
            .collect()
    }

    /// Serialises to JSON (the `pickle` stand-in).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialise")
    }

    /// Restores a model from [`DiagnosisModel::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the serialised model to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a model previously written with [`DiagnosisModel::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;
    use crate::linear::LogRegParams;

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let jit = ((i * 13) % 17) as f64 * 0.02;
            if i % 2 == 0 {
                rows.push(vec![jit, 0.0]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jit, 1.0]);
                y.push(1);
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn forest_roundtrips_through_json() {
        let (x, y) = blobs();
        let mut f = RandomForest::new(ForestParams { n_estimators: 8, ..ForestParams::default() });
        f.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::Forest(f), vec!["healthy".into(), "memleak".into()]);
        let before = model.diagnose(&x);
        let restored = DiagnosisModel::from_json(&model.to_json()).unwrap();
        let after = restored.diagnose(&x);
        assert_eq!(before, after, "serialisation must preserve behaviour");
    }

    #[test]
    fn gbm_roundtrips_through_json() {
        use crate::gbm::{GbmParams, GradientBoosting};
        let (x, y) = blobs();
        let mut m = GradientBoosting::new(GbmParams { n_estimators: 10, ..GbmParams::default() });
        m.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::Gbm(m), vec!["healthy".into(), "memleak".into()]);
        let before = model.diagnose(&x);
        let restored = DiagnosisModel::from_json(&model.to_json()).unwrap();
        assert_eq!(before, restored.diagnose(&x), "serialisation must preserve behaviour");
    }

    #[test]
    fn logreg_roundtrips_through_json() {
        let (x, y) = blobs();
        let mut m = LogisticRegression::new(LogRegParams::default());
        m.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::LogReg(m), vec!["healthy".into(), "memleak".into()]);
        let before = model.diagnose(&x);
        let restored = DiagnosisModel::from_json(&model.to_json()).unwrap();
        assert_eq!(before, restored.diagnose(&x), "serialisation must preserve behaviour");
    }

    #[test]
    fn mlp_roundtrips_through_json() {
        use crate::mlp::{MlpClassifier, MlpParams};
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![8],
            max_iter: 60,
            ..MlpParams::default()
        });
        m.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::Mlp(m), vec!["healthy".into(), "memleak".into()]);
        let before = model.diagnose(&x);
        let restored = DiagnosisModel::from_json(&model.to_json()).unwrap();
        assert_eq!(before, restored.diagnose(&x), "serialisation must preserve behaviour");
    }

    #[test]
    fn probabilities_agree_with_diagnose() {
        let (x, y) = blobs();
        let mut f = RandomForest::new(ForestParams { n_estimators: 8, ..ForestParams::default() });
        f.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::Forest(f), vec!["healthy".into(), "memleak".into()]);
        let proba = model.probabilities(&x);
        let diag = model.diagnose(&x);
        assert_eq!(proba.rows(), x.rows());
        assert_eq!(proba.cols(), 2);
        for (r, d) in diag.iter().enumerate() {
            let row = proba.row(r);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(d.confidence, max, "row {r}: confidence is the max probability");
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9, "row {r} sums to 1");
        }
    }

    #[test]
    fn diagnosis_returns_label_and_confidence() {
        let (x, y) = blobs();
        let mut m = LogisticRegression::new(LogRegParams::default());
        m.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::LogReg(m), vec!["healthy".into(), "memleak".into()]);
        let d = model.diagnose(&x);
        assert_eq!(d.len(), x.rows());
        assert_eq!(d[0].label, "healthy");
        assert_eq!(d[1].label, "memleak");
        for diag in &d {
            assert!((0.0..=1.0).contains(&diag.confidence));
            assert!(diag.confidence >= 0.5, "argmax of 2 classes is >= 0.5");
        }
    }

    #[test]
    fn save_and_load_files() {
        let (x, y) = blobs();
        let mut f = RandomForest::new(ForestParams { n_estimators: 5, ..ForestParams::default() });
        f.fit(&x, &y, 2);
        let model =
            DiagnosisModel::new(FittedModel::Forest(f), vec!["healthy".into(), "dial".into()]);
        let dir = std::env::temp_dir().join("albadross_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).unwrap();
        let loaded = DiagnosisModel::load(&path).unwrap();
        assert_eq!(model.diagnose(&x), loaded.diagnose(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "class names must match")]
    fn class_name_mismatch_panics() {
        let (x, y) = blobs();
        let mut f = RandomForest::new(ForestParams { n_estimators: 3, ..ForestParams::default() });
        f.fit(&x, &y, 2);
        let _ = DiagnosisModel::new(FittedModel::Forest(f), vec!["only-one".into()]);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(DiagnosisModel::from_json("not json").is_err());
    }
}
