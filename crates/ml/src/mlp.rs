//! Multi-layer perceptron classifier (Table IV's `MLP`).
//!
//! ReLU hidden layers, softmax cross-entropy output, Adam optimiser and L2
//! regularisation `alpha` — mirroring scikit-learn's `MLPClassifier`
//! defaults used by the paper, with `hidden_layer_sizes`, `alpha` and
//! `max_iter` as the searched hyperparameters.

use crate::model::{softmax_row, Classifier};
use crate::nn::{Activation, FeedForward, Optimizer};
use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden-layer widths, e.g. `[50, 100, 50]`.
    pub hidden_layer_sizes: Vec<usize>,
    /// L2 regularisation strength.
    pub alpha: f64,
    /// Training epochs.
    pub max_iter: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size cap (scikit-learn uses `min(200, n)`).
    pub batch_size: usize,
    /// Weight-init / shuffling seed.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden_layer_sizes: vec![100],
            alpha: 1e-4,
            max_iter: 200,
            lr: 1e-3,
            batch_size: 200,
            seed: 0,
        }
    }
}

/// A fitted MLP classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MlpClassifier {
    params: MlpParams,
    net: Option<FeedForward>,
    n_classes: usize,
}

impl MlpClassifier {
    /// Creates an unfitted classifier.
    pub fn new(params: MlpParams) -> Self {
        Self { params, net: None, n_classes: 0 }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        self.n_classes = n_classes;
        let (n, d) = x.shape();
        let mut widths = vec![d];
        widths.extend(&self.params.hidden_layer_sizes);
        widths.push(n_classes);
        let mut acts = vec![Activation::Relu; self.params.hidden_layer_sizes.len()];
        acts.push(Activation::Linear); // softmax applied in the loss
        let mut net = FeedForward::new(&widths, &acts, self.params.seed);
        let mut opt = Optimizer::adam(self.params.lr);
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x5EED);
        let batch = self.params.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..self.params.max_iter {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                let xb = x.select_rows(chunk);
                let acts_all = net.forward_all(&xb);
                let out = acts_all.last().expect("output layer");
                // Softmax cross-entropy delta: p - onehot.
                let mut delta = out.clone();
                for r in 0..delta.rows() {
                    softmax_row(delta.row_mut(r));
                }
                for (r, &i) in chunk.iter().enumerate() {
                    let v = delta.get(r, y[i]);
                    delta.set(r, y[i], v - 1.0);
                }
                let grads = net.backward(&acts_all, delta);
                opt.step(&mut net, &grads, self.params.alpha);
            }
        }
        self.net = Some(net);
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let net = self.net.as_ref().expect("predict before fit");
        let mut out = net.forward(x);
        for r in 0..out.rows() {
            softmax_row(out.row_mut(r));
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MlpParams {
        MlpParams { hidden_layer_sizes: vec![16], max_iter: 150, lr: 0.01, ..MlpParams::default() }
    }

    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            let jitter = ((i * 13) % 17) as f64 * 0.02;
            match i % 3 {
                0 => {
                    rows.push(vec![0.0 + jitter, 0.0]);
                    y.push(0);
                }
                1 => {
                    rows.push(vec![1.0, 1.0 - jitter]);
                    y.push(1);
                }
                _ => {
                    rows.push(vec![0.0, 1.0 + jitter]);
                    y.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(quick());
        m.fit(&x, &y, 3);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_xor_unlike_linear_models() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jit = ((i * 7) % 13) as f64 * 0.005;
            rows.push(vec![a + jit, b - jit]);
            y.push((a as usize) ^ (b as usize));
        }
        let x = Matrix::from_rows(&rows);
        let mut m = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![16, 16],
            max_iter: 400,
            lr: 0.01,
            ..MlpParams::default()
        });
        m.fit(&x, &y, 2);
        let acc =
            m.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn probabilities_are_normalised() {
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(quick());
        m.fit(&x, &y, 3);
        let p = m.predict_proba(&x);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let mut a = MlpClassifier::new(quick());
        let mut b = MlpClassifier::new(quick());
        a.fit(&x, &y, 3);
        b.fit(&x, &y, 3);
        assert_eq!(a.predict_proba(&x).as_slice(), b.predict_proba(&x).as_slice());
    }

    #[test]
    fn three_hidden_layers_shape() {
        let (x, y) = blobs();
        let mut m = MlpClassifier::new(MlpParams {
            hidden_layer_sizes: vec![10, 10, 10],
            max_iter: 50,
            lr: 0.01,
            ..MlpParams::default()
        });
        m.fit(&x, &y, 3);
        let net = m.net.as_ref().unwrap();
        assert_eq!(net.layers.len(), 4);
        assert_eq!(net.n_outputs(), 3);
    }
}
