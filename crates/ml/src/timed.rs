//! A transparent timing wrapper around any [`Classifier`].
//!
//! [`Timed`] forwards every call to the wrapped model while recording
//! fit and predict wall time into the process-wide
//! [`alba_obs::global`] registry as `model_fit_ns{model=...}` /
//! `model_predict_ns{model=...}` histograms. When no global registry
//! is installed the spans are no-ops, so wrapping is free in
//! unobserved runs. [`ModelSpec::build`](crate::ModelSpec::build)
//! wraps every classifier it constructs, which is how experiment
//! harnesses get per-family timing without touching the model code.

use crate::model::Classifier;
use alba_data::Matrix;

/// Wraps a classifier, timing `fit` and `predict_proba` through the
/// global obs registry under the given model label.
#[derive(Clone, Debug)]
pub struct Timed<C> {
    inner: C,
    label: &'static str,
}

impl<C: Classifier> Timed<C> {
    /// Wraps `inner`, labelling its metrics with `label` (e.g. `"RF"`).
    pub fn new(inner: C, label: &'static str) -> Self {
        Self { inner, label }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps the classifier.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Classifier> Classifier for Timed<C> {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        let _span = alba_obs::global().span("model_fit_ns", &[("model", self.label)]);
        self.inner.fit(x, y, n_classes);
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let _span = alba_obs::global().span("model_predict_ns", &[("model", self.label)]);
        self.inner.predict_proba(x)
    }

    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestParams, RandomForest};

    #[test]
    fn timed_wrapper_is_transparent_and_records() {
        let obs = alba_obs::Obs::wall();
        alba_obs::set_global(obs.clone());

        let x =
            Matrix::from_rows(&[vec![0.0, 0.1], vec![0.1, 0.0], vec![1.0, 0.9], vec![0.9, 1.0]]);
        let y = vec![0, 0, 1, 1];
        let params = ForestParams { n_estimators: 3, ..ForestParams::default() };
        // A label no other (concurrently running) test uses, so the
        // global registry's counts are exactly this test's.
        let mut plain = RandomForest::new(params);
        let mut timed = Timed::new(RandomForest::new(params), "timed-test");
        plain.fit(&x, &y, 2);
        timed.fit(&x, &y, 2);

        // Identical results — the wrapper changes nothing but metrics.
        assert_eq!(timed.predict(&x), plain.predict(&x));
        assert_eq!(timed.n_classes(), 2);

        let fits = obs.histogram("model_fit_ns", &[("model", "timed-test")]).snapshot().unwrap();
        assert_eq!(fits.count, 1);
        let preds =
            obs.histogram("model_predict_ns", &[("model", "timed-test")]).snapshot().unwrap();
        assert!(preds.count >= 1);
        alba_obs::clear_global();
    }
}
