//! Minimal feed-forward neural-network substrate.
//!
//! Shared by the MLP classifier (Table IV's `MLP`) and the Proctor
//! autoencoder baseline (Sec. IV-D): dense layers, ReLU activations,
//! and the Adam / Adadelta optimisers, all deterministic under a seed.

use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-layer activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x for x > 0, else 0.01 x — keeps gradient flowing through
    /// inactive units, so narrow bottleneck layers cannot die wholesale
    /// on unlucky seeds.
    LeakyRelu,
    /// identity
    Linear,
    /// logistic sigmoid
    Sigmoid,
}

impl Activation {
    fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::LeakyRelu => {
                if v > 0.0 {
                    v
                } else {
                    0.01 * v
                }
            }
            Activation::Linear => v,
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Linear => 1.0,
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// Parallel (rayon) dense matmul: `a (n x k) * b (k x m)`.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let (n, m) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(n, m);
    out.as_mut_slice().par_chunks_mut(m).enumerate().for_each(|(i, o_row)| {
        let a_row = a.row(i);
        for (k, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (j, &b_kj) in b_row.iter().enumerate() {
                o_row[j] += a_ik * b_kj;
            }
        }
    });
    out
}

/// One dense layer (`inputs x outputs` weights plus bias).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `n_in x n_out`.
    pub w: Matrix,
    /// Bias vector, length `n_out`.
    pub b: Vec<f64>,
    /// Activation applied to the affine output.
    pub act: Activation,
}

impl Dense {
    /// He-style initialisation, deterministic under the RNG.
    pub fn init(n_in: usize, n_out: usize, act: Activation, rng: &mut StdRng) -> Self {
        let scale = (2.0 / n_in.max(1) as f64).sqrt();
        let mut w = Matrix::zeros(n_in, n_out);
        for v in w.as_mut_slice() {
            // Uniform(-scale, scale): adequate for these shallow nets and
            // cheaper than Gaussian sampling.
            *v = (rng.gen::<f64>() * 2.0 - 1.0) * scale;
        }
        Self { w, b: vec![0.0; n_out], act }
    }

    /// Forward pass: returns the activated output `(n x n_out)`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = par_matmul(x, &self.w);
        let n_out = self.b.len();
        for (i, v) in z.as_mut_slice().iter_mut().enumerate() {
            *v = self.act.apply(*v + self.b[i % n_out]);
        }
        z
    }
}

/// Gradients of one layer.
#[derive(Clone, Debug)]
pub struct DenseGrad {
    /// dL/dW.
    pub w: Matrix,
    /// dL/db.
    pub b: Vec<f64>,
}

/// A feed-forward network: a stack of dense layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedForward {
    /// The layers, input to output.
    pub layers: Vec<Dense>,
}

impl FeedForward {
    /// Builds a network with the given layer widths and activations
    /// (`widths.len() - 1` layers).
    ///
    /// # Panics
    /// Panics when fewer than two widths are given or the activation count
    /// does not match the layer count.
    pub fn new(widths: &[usize], acts: &[Activation], seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        assert_eq!(acts.len(), widths.len() - 1, "one activation per layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = widths
            .windows(2)
            .zip(acts)
            .map(|(w, &act)| Dense::init(w[0], w[1], act, &mut rng))
            .collect();
        Self { layers }
    }

    /// Input width.
    pub fn n_inputs(&self) -> usize {
        self.layers.first().map_or(0, |l| l.w.rows())
    }

    /// Output width.
    pub fn n_outputs(&self) -> usize {
        self.layers.last().map_or(0, |l| l.b.len())
    }

    /// Full forward pass; returns the activations of every layer
    /// (`result[0]` is the input, `result.last()` the network output).
    pub fn forward_all(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Convenience forward pass returning only the output.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backpropagation. `acts` comes from [`FeedForward::forward_all`];
    /// `delta` is dL/d(output activation) *already multiplied by the output
    /// activation derivative if needed* (for softmax cross-entropy pass
    /// `p - y` with a `Linear` output layer).
    ///
    /// Returns per-layer gradients (same order as `layers`).
    pub fn backward(&self, acts: &[Matrix], mut delta: Matrix) -> Vec<DenseGrad> {
        let n = acts[0].rows().max(1) as f64;
        let mut grads: Vec<DenseGrad> = Vec::with_capacity(self.layers.len());
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let input = &acts[li];
            // delta currently holds dL/dz for this layer.
            let gw = par_matmul(&input.transpose(), &delta);
            let mut gw = gw;
            gw.map_inplace(|v| v / n);
            let n_out = layer.b.len();
            let mut gb = vec![0.0; n_out];
            for row in delta.rows_iter() {
                for (j, &d) in row.iter().enumerate() {
                    gb[j] += d;
                }
            }
            for g in &mut gb {
                *g /= n;
            }
            grads.push(DenseGrad { w: gw, b: gb });
            if li > 0 {
                // Propagate: dL/da_{l-1} = delta * W^T, then times act'.
                let mut prev_delta = par_matmul(&delta, &layer.w.transpose());
                let prev_layer = &self.layers[li - 1];
                let prev_act = &acts[li];
                debug_assert_eq!(prev_act.rows(), prev_delta.rows());
                // acts[li] is the *output* of layer li-1.
                for (v, &a) in prev_delta.as_mut_slice().iter_mut().zip(prev_act.as_slice()) {
                    *v *= prev_layer.act.derivative_from_output(a);
                }
                delta = prev_delta;
            }
        }
        grads.reverse();
        grads
    }
}

/// Optimiser state for one network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Optimizer {
    /// Adam (Kingma & Ba) — used by the MLP, as in scikit-learn's default.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
        /// Numerical floor.
        eps: f64,
        /// Step counter.
        t: u64,
        /// First moments (w then b per layer).
        m: Vec<Vec<f64>>,
        /// Second moments.
        v: Vec<Vec<f64>>,
    },
    /// Adadelta (Zeiler) — the optimiser Proctor trains its autoencoder
    /// with (Sec. IV-E.3).
    Adadelta {
        /// Decay rate rho.
        rho: f64,
        /// Numerical floor.
        eps: f64,
        /// Running average of squared gradients.
        eg2: Vec<Vec<f64>>,
        /// Running average of squared updates.
        ex2: Vec<Vec<f64>>,
    },
}

impl Optimizer {
    /// Adam with standard defaults.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adadelta with Keras-style defaults (rho = 0.95).
    pub fn adadelta() -> Self {
        Optimizer::Adadelta { rho: 0.95, eps: 1e-6, eg2: Vec::new(), ex2: Vec::new() }
    }

    fn ensure_state(slot: &mut Vec<Vec<f64>>, net: &FeedForward) {
        if slot.len() != net.layers.len() * 2 {
            slot.clear();
            for layer in &net.layers {
                slot.push(vec![0.0; layer.w.as_slice().len()]);
                slot.push(vec![0.0; layer.b.len()]);
            }
        }
    }

    /// Applies one optimisation step. `l2` adds `l2 * w` to weight
    /// gradients (bias excluded), matching scikit-learn's `alpha`.
    pub fn step(&mut self, net: &mut FeedForward, grads: &[DenseGrad], l2: f64) {
        assert_eq!(grads.len(), net.layers.len(), "gradient count mismatch");
        match self {
            Optimizer::Adam { lr, beta1, beta2, eps, t, m, v } => {
                Self::ensure_state(m, net);
                Self::ensure_state(v, net);
                *t += 1;
                let bc1 = 1.0 - beta1.powi(*t as i32);
                let bc2 = 1.0 - beta2.powi(*t as i32);
                for (li, (layer, grad)) in net.layers.iter_mut().zip(grads).enumerate() {
                    let apply =
                        |param: &mut [f64], g: &[f64], m: &mut [f64], v: &mut [f64], reg: f64| {
                            for i in 0..param.len() {
                                let gi = g[i] + reg * param[i];
                                m[i] = *beta1 * m[i] + (1.0 - *beta1) * gi;
                                v[i] = *beta2 * v[i] + (1.0 - *beta2) * gi * gi;
                                let mhat = m[i] / bc1;
                                let vhat = v[i] / bc2;
                                param[i] -= *lr * mhat / (vhat.sqrt() + *eps);
                            }
                        };
                    let (mw, rest) = m[li * 2..].split_at_mut(1);
                    let mb = &mut rest[0];
                    let (vw, rest) = v[li * 2..].split_at_mut(1);
                    let vb = &mut rest[0];
                    apply(layer.w.as_mut_slice(), grad.w.as_slice(), &mut mw[0], &mut vw[0], l2);
                    apply(&mut layer.b, &grad.b, mb, vb, 0.0);
                }
            }
            Optimizer::Adadelta { rho, eps, eg2, ex2 } => {
                Self::ensure_state(eg2, net);
                Self::ensure_state(ex2, net);
                for (li, (layer, grad)) in net.layers.iter_mut().zip(grads).enumerate() {
                    let apply = |param: &mut [f64],
                                 g: &[f64],
                                 eg2: &mut [f64],
                                 ex2: &mut [f64],
                                 reg: f64| {
                        for i in 0..param.len() {
                            let gi = g[i] + reg * param[i];
                            eg2[i] = *rho * eg2[i] + (1.0 - *rho) * gi * gi;
                            let update = -((ex2[i] + *eps).sqrt() / (eg2[i] + *eps).sqrt()) * gi;
                            ex2[i] = *rho * ex2[i] + (1.0 - *rho) * update * update;
                            param[i] += update;
                        }
                    };
                    let (ew, rest) = eg2[li * 2..].split_at_mut(1);
                    let eb = &mut rest[0];
                    let (xw, rest) = ex2[li * 2..].split_at_mut(1);
                    let xb = &mut rest[0];
                    apply(layer.w.as_mut_slice(), grad.w.as_slice(), &mut ew[0], &mut xw[0], l2);
                    apply(&mut layer.b, &grad.b, eb, xb, 0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_matmul_matches_serial() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        assert_eq!(par_matmul(&a, &b), a.matmul(&b));
    }

    #[test]
    fn forward_shapes() {
        let net = FeedForward::new(&[4, 8, 3], &[Activation::Relu, Activation::Linear], 1);
        let x = Matrix::zeros(5, 4);
        let out = net.forward(&x);
        assert_eq!(out.shape(), (5, 3));
        assert_eq!(net.n_inputs(), 4);
        assert_eq!(net.n_outputs(), 3);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.5), 1.0);
    }

    #[test]
    fn init_is_deterministic() {
        let a = FeedForward::new(&[3, 5, 2], &[Activation::Relu, Activation::Linear], 42);
        let b = FeedForward::new(&[3, 5, 2], &[Activation::Relu, Activation::Linear], 42);
        assert_eq!(a.layers[0].w.as_slice(), b.layers[0].w.as_slice());
        let c = FeedForward::new(&[3, 5, 2], &[Activation::Relu, Activation::Linear], 43);
        assert_ne!(a.layers[0].w.as_slice(), c.layers[0].w.as_slice());
    }

    /// Numerical gradient check on a tiny network with linear output and
    /// squared-error loss.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut net = FeedForward::new(&[2, 3, 1], &[Activation::Relu, Activation::Linear], 7);
        let x = Matrix::from_rows(&[vec![0.5, -0.3], vec![1.0, 2.0], vec![-1.5, 0.2]]);
        let target = [1.0, -1.0, 0.5];
        let loss = |net: &FeedForward| -> f64 {
            let out = net.forward(&x);
            (0..3).map(|i| (out.get(i, 0) - target[i]).powi(2)).sum::<f64>() / 3.0
        };
        // Analytic gradients: dL/dout = 2 (out - t) / n.
        let acts = net.forward_all(&x);
        let out = acts.last().unwrap();
        let mut delta = Matrix::zeros(3, 1);
        for (i, &t) in target.iter().enumerate() {
            delta.set(i, 0, 2.0 * (out.get(i, 0) - t));
        }
        let grads = net.backward(&acts, delta);
        // Numerical check of a few weights in each layer.
        let eps = 1e-6;
        for (li, grad) in grads.iter().enumerate() {
            for wi in [0usize, 1] {
                let orig = net.layers[li].w.as_slice()[wi];
                net.layers[li].w.as_mut_slice()[wi] = orig + eps;
                let lp = loss(&net);
                net.layers[li].w.as_mut_slice()[wi] = orig - eps;
                let lm = loss(&net);
                net.layers[li].w.as_mut_slice()[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.w.as_slice()[wi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {li} w{wi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn adam_reduces_regression_loss() {
        let mut net = FeedForward::new(&[1, 8, 1], &[Activation::Relu, Activation::Linear], 3);
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>());
        let t: Vec<f64> = (0..20).map(|i| 2.0 * (i as f64 / 10.0) + 1.0).collect();
        let mut opt = Optimizer::adam(0.05);
        let loss_of = |net: &FeedForward| {
            let out = net.forward(&x);
            (0..20).map(|i| (out.get(i, 0) - t[i]).powi(2)).sum::<f64>() / 20.0
        };
        let before = loss_of(&net);
        for _ in 0..300 {
            let acts = net.forward_all(&x);
            let out = acts.last().unwrap();
            let mut delta = Matrix::zeros(20, 1);
            for (i, &ti) in t.iter().enumerate() {
                delta.set(i, 0, 2.0 * (out.get(i, 0) - ti));
            }
            let grads = net.backward(&acts, delta);
            opt.step(&mut net, &grads, 0.0);
        }
        let after = loss_of(&net);
        assert!(after < before * 0.05, "loss {before} -> {after}");
    }

    #[test]
    fn adadelta_reduces_loss_without_lr() {
        let mut net = FeedForward::new(&[2, 6, 2], &[Activation::Relu, Activation::Linear], 9);
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let mut opt = Optimizer::adadelta();
        let loss_of = |net: &FeedForward| {
            let out = net.forward(&x);
            out.as_slice().iter().zip(x.as_slice()).map(|(o, t)| (o - t) * (o - t)).sum::<f64>()
        };
        let before = loss_of(&net);
        for _ in 0..500 {
            let acts = net.forward_all(&x);
            let out = acts.last().unwrap();
            let mut delta = out.clone();
            for (d, t) in delta.as_mut_slice().iter_mut().zip(x.as_slice()) {
                *d = 2.0 * (*d - t);
            }
            let grads = net.backward(&acts, delta);
            opt.step(&mut net, &grads, 0.0);
        }
        assert!(loss_of(&net) < before * 0.5, "{before} -> {}", loss_of(&net));
    }
}
