//! Deep autoencoder — the representation learner inside the Proctor
//! baseline (Sec. IV-E.3).
//!
//! Proctor trains "a deep autoencoder with 2000 neurons in the code layer"
//! with the Adadelta optimiser and MSE loss for 100 epochs, then trains a
//! logistic-regression head on the code representation. This module
//! provides the autoencoder; the Proctor composition lives in the
//! `albadross` crate. Layer widths are configurable so the default
//! reduced-scale runs stay fast while `paper()` reproduces the topology.

use crate::nn::{Activation, FeedForward, Optimizer};
use alba_data::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Autoencoder hyperparameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutoencoderParams {
    /// Encoder hidden widths, ending with the code width; the decoder
    /// mirrors it. E.g. `[512, 256]` encodes `in -> 512 -> 256 -> 512 -> in`.
    pub encoder_widths: Vec<usize>,
    /// Training epochs (the paper uses 100).
    pub epochs: usize,
    /// Mini-batch size cap.
    pub batch_size: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl AutoencoderParams {
    /// Reduced-scale default: 128-wide code, 20 epochs (sized for the
    /// single-machine reproduction; `paper()` restores the original).
    pub fn reduced() -> Self {
        Self { encoder_widths: vec![256, 128], epochs: 20, batch_size: 128, seed: 0 }
    }

    /// The Proctor topology: 2000-neuron code layer, 100 epochs.
    pub fn paper() -> Self {
        Self { encoder_widths: vec![2000], epochs: 100, batch_size: 128, seed: 0 }
    }
}

/// A fitted autoencoder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Autoencoder {
    params: AutoencoderParams,
    net: Option<FeedForward>,
    n_inputs: usize,
    /// Index of the code layer within the network's activation list.
    code_layer: usize,
}

impl Autoencoder {
    /// Creates an unfitted autoencoder.
    pub fn new(params: AutoencoderParams) -> Self {
        Self { params, net: None, n_inputs: 0, code_layer: 0 }
    }

    /// Width of the code (bottleneck) layer.
    pub fn code_width(&self) -> usize {
        *self.params.encoder_widths.last().expect("non-empty encoder")
    }

    /// Trains with MSE reconstruction loss and Adadelta (Sec. IV-E.3).
    pub fn fit(&mut self, x: &Matrix) {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(!self.params.encoder_widths.is_empty(), "encoder needs at least one layer");
        let (n, d) = x.shape();
        self.n_inputs = d;
        // Symmetric topology: d -> enc... -> code -> ...enc reversed -> d.
        let mut widths = vec![d];
        widths.extend(&self.params.encoder_widths);
        for w in self.params.encoder_widths.iter().rev().skip(1) {
            widths.push(*w);
        }
        widths.push(d);
        self.code_layer = self.params.encoder_widths.len();
        // Leaky ReLU rather than plain ReLU in the hidden layers: a
        // plain-ReLU unit pushed permanently negative early in training
        // has zero gradient forever, and with a narrow bottleneck a
        // handful of such deaths collapses the whole code. The code
        // layer itself is linear — a compressing projection has nothing
        // to gain from saturation and must stay full-rank.
        let mut acts = vec![Activation::LeakyRelu; widths.len() - 2];
        acts[self.code_layer - 1] = Activation::Linear;
        acts.push(Activation::Linear); // linear reconstruction output
        let mut net = FeedForward::new(&widths, &acts, self.params.seed);
        let mut opt = Optimizer::adadelta();
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0xAE);
        let batch = self.params.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                let xb = x.select_rows(chunk);
                let acts_all = net.forward_all(&xb);
                let out = acts_all.last().expect("output layer");
                // dMSE/dout = 2 (out - x) / d.
                let mut delta = out.clone();
                for (v, &t) in delta.as_mut_slice().iter_mut().zip(xb.as_slice()) {
                    *v = 2.0 * (*v - t) / d as f64;
                }
                let grads = net.backward(&acts_all, delta);
                opt.step(&mut net, &grads, 0.0);
            }
        }
        self.net = Some(net);
    }

    /// Mean squared reconstruction error per sample.
    pub fn reconstruction_errors(&self, x: &Matrix) -> Vec<f64> {
        let recon = self.reconstruct(x);
        (0..x.rows())
            .map(|r| {
                let a = x.row(r);
                let b = recon.row(r);
                a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>() / a.len() as f64
            })
            .collect()
    }

    /// Full reconstruction.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.net.as_ref().expect("reconstruct before fit").forward(x)
    }

    /// Code-layer representation (`n x code_width`).
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let net = self.net.as_ref().expect("encode before fit");
        let mut cur = x.clone();
        for layer in net.layers.iter().take(self.code_layer) {
            cur = layer.forward(&cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data on a 1-D manifold embedded in 4-D.
    fn manifold(n: usize) -> Matrix {
        Matrix::from_rows(
            &(0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    vec![t, 2.0 * t, -t, 0.5 * t + 0.1]
                })
                .collect::<Vec<_>>(),
        )
    }

    fn quick_params() -> AutoencoderParams {
        AutoencoderParams { encoder_widths: vec![8, 2], epochs: 200, batch_size: 32, seed: 1 }
    }

    #[test]
    fn reconstructs_low_rank_data() {
        let x = manifold(64);
        let mut ae = Autoencoder::new(quick_params());
        ae.fit(&x);
        let errs = ae.reconstruction_errors(&x);
        let mean_err: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.01, "reconstruction error {mean_err}");
    }

    #[test]
    fn encode_has_code_width() {
        let x = manifold(32);
        let mut ae = Autoencoder::new(quick_params());
        ae.fit(&x);
        let code = ae.encode(&x);
        assert_eq!(code.shape(), (32, 2));
        assert_eq!(ae.code_width(), 2);
    }

    #[test]
    fn anomalous_points_reconstruct_worse() {
        let x = manifold(64);
        let mut ae = Autoencoder::new(quick_params());
        ae.fit(&x);
        // A point far off the manifold.
        let off = Matrix::from_rows(&[vec![1.0, -2.0, 1.0, 3.0]]);
        let on = Matrix::from_rows(&[vec![0.5, 1.0, -0.5, 0.35]]);
        let e_off = ae.reconstruction_errors(&off)[0];
        let e_on = ae.reconstruction_errors(&on)[0];
        assert!(e_off > 5.0 * e_on, "off-manifold {e_off} vs on-manifold {e_on}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = manifold(32);
        let mut a = Autoencoder::new(quick_params());
        let mut b = Autoencoder::new(quick_params());
        a.fit(&x);
        b.fit(&x);
        assert_eq!(a.encode(&x).as_slice(), b.encode(&x).as_slice());
    }

    /// The bottleneck must not collapse on unlucky init seeds (dead-ReLU
    /// regression guard: plain-ReLU 2-unit codes died on ~30% of seeds).
    #[test]
    fn reconstructs_low_rank_data_across_seeds() {
        let x = manifold(64);
        for seed in [2, 6, 9] {
            let mut p = quick_params();
            p.seed = seed;
            let mut ae = Autoencoder::new(p);
            ae.fit(&x);
            let errs = ae.reconstruction_errors(&x);
            let mean_err: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
            assert!(mean_err < 0.01, "seed {seed}: reconstruction error {mean_err}");
        }
    }

    #[test]
    fn paper_topology_has_2000_code() {
        assert_eq!(AutoencoderParams::paper().encoder_widths.last().copied(), Some(2000));
    }
}
