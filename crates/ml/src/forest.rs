//! Bagged random forest (Table IV's `RF`, the paper's chosen model).
//!
//! Trees are fitted on bootstrap resamples with `sqrt`-feature subsetting
//! and trained in parallel with rayon; `predict_proba` averages the leaf
//! distributions of all trees (scikit-learn semantics).

use crate::model::Classifier;
use crate::tree::{Criterion, DecisionTree, MaxFeatures, TreeParams};
use alba_data::{bootstrap_indices, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters (Table IV search space).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees (`n_estimators`).
    pub n_estimators: usize,
    /// Maximum tree depth (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Split criterion.
    pub criterion: Criterion,
    /// Features per split (defaults to `Sqrt`, the scikit-learn default).
    pub max_features: MaxFeatures,
    /// Bootstrap resampling (true in scikit-learn by default).
    pub bootstrap: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            max_depth: None,
            criterion: Criterion::Gini,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: ForestParams) -> Self {
        Self { params, trees: Vec::new(), n_classes: 0 }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(self.params.n_estimators > 0, "need at least one tree");
        self.n_classes = n_classes;
        let mut seeder = StdRng::seed_from_u64(self.params.seed);
        let tree_seeds: Vec<u64> = (0..self.params.n_estimators).map(|_| seeder.gen()).collect();

        self.trees = tree_seeds
            .into_par_iter()
            .map(|seed| {
                let params = TreeParams {
                    max_depth: self.params.max_depth,
                    criterion: self.params.criterion,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    max_features: self.params.max_features,
                    seed,
                };
                let mut tree = DecisionTree::new(params);
                if self.params.bootstrap {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xB007);
                    let idx = bootstrap_indices(x.rows(), x.rows(), &mut rng);
                    let xb = x.select_rows(&idx);
                    let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
                    tree.fit(&xb, &yb, n_classes);
                } else {
                    tree.fit(x, y, n_classes);
                }
                tree
            })
            .collect();
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        assert!(!self.trees.is_empty(), "predict_proba called before fit");
        // Sum tree probabilities in parallel, then average.
        let mut acc = self
            .trees
            .par_iter()
            .map(|t| t.predict_proba(x))
            .reduce_with(|mut a, b| {
                for (va, vb) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
                    *va += vb;
                }
                a
            })
            .expect("at least one tree");
        let n = self.trees.len() as f64;
        acc.map_inplace(|v| v / n);
        acc
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let jitter = ((i * 13) % 17) as f64 * 0.02;
            match i % 3 {
                0 => {
                    rows.push(vec![0.0 + jitter, 0.0, jitter]);
                    y.push(0);
                }
                1 => {
                    rows.push(vec![2.0, 2.0 - jitter, jitter]);
                    y.push(1);
                }
                _ => {
                    rows.push(vec![4.0 - jitter, 0.0, 1.0 - jitter]);
                    y.push(2);
                }
            }
        }
        (Matrix::from_rows(&rows), y)
    }

    fn small_forest(seed: u64) -> RandomForest {
        RandomForest::new(ForestParams { n_estimators: 15, seed, ..ForestParams::default() })
    }

    #[test]
    fn learns_three_blobs() {
        let (x, y) = blobs(60);
        let mut f = small_forest(1);
        f.fit(&x, &y, 3);
        assert_eq!(f.n_trees(), 15);
        assert_eq!(f.predict(&x), y);
    }

    #[test]
    fn probabilities_are_normalised() {
        let (x, y) = blobs(30);
        let mut f = small_forest(2);
        f.fit(&x, &y, 3);
        let p = f.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(45);
        let mut a = small_forest(7);
        let mut b = small_forest(7);
        a.fit(&x, &y, 3);
        b.fit(&x, &y, 3);
        assert_eq!(a.predict_proba(&x).as_slice(), b.predict_proba(&x).as_slice());
    }

    #[test]
    fn different_seeds_differ_on_overlapping_data() {
        // Overlapping classes: bootstrap resampling makes per-seed
        // probability estimates differ near the decision boundary.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let v = i as f64 / 80.0 + ((i * 37 % 11) as f64) * 0.03;
            rows.push(vec![v]);
            // Label noise keeps leaves impure so bootstrap resamples yield
            // different leaf distributions.
            y.push(usize::from(v > 0.5) ^ usize::from(i % 7 == 0));
        }
        let x = Matrix::from_rows(&rows);
        let mut a = RandomForest::new(ForestParams {
            n_estimators: 10,
            max_depth: Some(2),
            seed: 7,
            ..ForestParams::default()
        });
        let mut b = RandomForest::new(ForestParams {
            n_estimators: 10,
            max_depth: Some(2),
            seed: 8,
            ..ForestParams::default()
        });
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_ne!(a.predict_proba(&x).as_slice(), b.predict_proba(&x).as_slice());
    }

    #[test]
    fn bagging_produces_soft_probabilities_near_boundary() {
        // Overlapping classes on one feature: forest probabilities should be
        // strictly between 0 and 1 near the overlap.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            rows.push(vec![v]);
            y.push(usize::from(v + ((i * 31 % 10) as f64) * 0.05 > 0.5));
        }
        let x = Matrix::from_rows(&rows);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 25,
            max_depth: Some(3),
            ..ForestParams::default()
        });
        f.fit(&x, &y, 2);
        let p = f.predict_proba(&Matrix::from_rows(&[vec![0.5]]));
        assert!(p.get(0, 0) > 0.02 && p.get(0, 0) < 0.98, "boundary proba {}", p.get(0, 0));
    }

    #[test]
    fn single_class_training_is_certain() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1, 1, 1];
        let mut f = small_forest(3);
        f.fit(&x, &y, 3);
        let p = f.predict_proba(&x);
        for r in 0..3 {
            assert_eq!(p.get(r, 1), 1.0);
        }
    }
}
