//! Property tests on the classifiers: probability normalisation, label
//! range and determinism must hold for any labeled dataset, not only the
//! unit-test fixtures.

use alba_data::Matrix;
use alba_ml::{
    Classifier, ForestParams, GbmParams, GradientBoosting, LogRegParams, LogisticRegression,
    RandomForest,
};
use proptest::prelude::*;

/// An arbitrary small labeled dataset with at least one sample per class.
fn dataset() -> impl Strategy<Value = (Matrix, Vec<usize>, usize)> {
    (2usize..4, 4usize..24, 1usize..5, 0u64..10_000).prop_map(|(classes, n, d, seed)| {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut x = Matrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let class = r % classes; // guarantees every class appears
            for c in 0..d {
                x.set(r, c, class as f64 + next() * 0.6 - 0.3);
            }
            y.push(class);
        }
        (x, y, classes)
    })
}

fn check_probabilities(
    model: &dyn Classifier,
    x: &Matrix,
    n_classes: usize,
) -> Result<(), TestCaseError> {
    let p = model.predict_proba(x);
    prop_assert_eq!(p.shape(), (x.rows(), n_classes));
    for r in 0..p.rows() {
        let row = p.row(r);
        prop_assert!(row.iter().all(|v| v.is_finite() && *v >= -1e-12));
        let sum: f64 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
    }
    let pred = model.predict(x);
    prop_assert!(pred.iter().all(|&c| c < n_classes));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forest_probabilities_are_valid((x, y, k) in dataset()) {
        let mut m = RandomForest::new(ForestParams { n_estimators: 5, ..ForestParams::default() });
        m.fit(&x, &y, k);
        check_probabilities(&m, &x, k)?;
    }

    #[test]
    fn gbm_probabilities_are_valid((x, y, k) in dataset()) {
        let mut m = GradientBoosting::new(GbmParams {
            n_estimators: 5,
            num_leaves: 4,
            ..GbmParams::default()
        });
        m.fit(&x, &y, k);
        check_probabilities(&m, &x, k)?;
    }

    #[test]
    fn logreg_probabilities_are_valid((x, y, k) in dataset()) {
        let mut m = LogisticRegression::new(LogRegParams { max_iter: 50, ..LogRegParams::default() });
        m.fit(&x, &y, k);
        check_probabilities(&m, &x, k)?;
    }

    #[test]
    fn forest_is_deterministic_under_seed((x, y, k) in dataset()) {
        let params = ForestParams { n_estimators: 4, seed: 9, ..ForestParams::default() };
        let mut a = RandomForest::new(params);
        let mut b = RandomForest::new(params);
        a.fit(&x, &y, k);
        b.fit(&x, &y, k);
        let pa = a.predict_proba(&x);
        let pb = b.predict_proba(&x);
        prop_assert_eq!(pa.as_slice(), pb.as_slice());
    }

    #[test]
    fn well_separated_classes_are_learned((x, y, k) in dataset()) {
        // The generator puts class c at level c with ±0.3 jitter: fully
        // separable, so a forest must fit the training data perfectly.
        let mut m = RandomForest::new(ForestParams { n_estimators: 10, ..ForestParams::default() });
        m.fit(&x, &y, k);
        let acc = m
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / y.len() as f64;
        prop_assert!(acc > 0.95, "training accuracy {acc}");
    }
}
