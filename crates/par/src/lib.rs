//! # alba-par
//!
//! A deterministic, fixed-size worker pool built for the serve
//! pipeline's parallel shard runtime.
//!
//! The design goal is *byte-identical replay under real threads*: the
//! pool may change wall-clock timing, but it must never be able to
//! change any output an equal-seeded run serialises. Three rules
//! enforce that, and everything else here is plumbing:
//!
//! 1. **Deterministic assignment.** An epoch's jobs are numbered by
//!    their position (`slot`), and slot `s` always runs on worker
//!    `s % n_workers`. No work stealing, no load balancing — placement
//!    is a pure function of `(slot, n_workers)`, never of timing.
//! 2. **Epoch barrier.** [`Pool::run_epoch`] submits one batch of jobs
//!    and blocks until *all* of them complete before returning. No job
//!    from epoch `e+1` can overlap epoch `e`, so cross-epoch
//!    interleavings cannot exist.
//! 3. **Ordered merge.** Results are committed into a slot-indexed
//!    buffer and returned in slot order, regardless of the order
//!    completions arrive in. Callers never observe arrival order.
//!
//! Worker threads run every job under `catch_unwind`, so a panicking
//! job yields an `Err(payload)` in its slot instead of poisoning the
//! pool; the caller decides what a lost job costs. A worker whose
//! thread has died (job queue disconnected) is respawned transparently
//! and the job is resubmitted — the pool survives anything short of a
//! process abort.
//!
//! Observability: per-worker `par_worker_jobs_total` /
//! `par_worker_busy_ns_total` counters and a `par_epoch_ns` histogram
//! (epoch barrier wall time, on the registry clock) are recorded when
//! the pool is built with an enabled [`Obs`]. Counters are
//! order-independent merged totals, so recording them from worker
//! threads cannot perturb replay identity; *events* are never emitted
//! off the caller's thread.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, SendError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use alba_obs::Obs;

/// What a worker receives on its private job queue.
enum Msg<J> {
    /// One job to run: `(epoch, slot, payload)`.
    Job(u64, usize, J),
    /// Drain and exit.
    Shutdown,
}

/// What a worker sends back on the shared completion queue.
struct Completion<R> {
    epoch: u64,
    slot: usize,
    outcome: std::thread::Result<R>,
}

struct Worker<J> {
    tx: Sender<Msg<J>>,
    handle: Option<JoinHandle<()>>,
}

type JobFn<J, R> = dyn Fn(usize, J) -> R + Send + Sync;

/// A fixed-size worker pool with deterministic slot→worker assignment
/// and an epoch-barrier ordered merge (see the crate docs).
///
/// `J` is the job payload moved *into* a worker; `R` is the result
/// moved back. Both cross thread boundaries, hence `Send + 'static`.
pub struct Pool<J: Send + 'static, R: Send + 'static> {
    workers: Vec<Worker<J>>,
    job_fn: Arc<JobFn<J, R>>,
    results_rx: Receiver<Completion<R>>,
    /// Kept so `results_rx.recv()` can never disconnect, and cloned
    /// into respawned workers.
    results_tx: Sender<Completion<R>>,
    obs: Obs,
    epoch: u64,
    respawns: u64,
}

impl<J: Send + 'static, R: Send + 'static> Pool<J, R> {
    /// Spawns `n_workers` threads running `job_fn`.
    ///
    /// # Panics
    /// Panics when `n_workers == 0` or a worker thread cannot be
    /// spawned (process resource exhaustion — not a recoverable state
    /// for a fixed-size pool).
    pub fn new<F>(n_workers: usize, obs: Obs, job_fn: F) -> Self
    where
        F: Fn(usize, J) -> R + Send + Sync + 'static,
    {
        assert!(n_workers >= 1, "a pool needs at least one worker");
        let (results_tx, results_rx) = channel();
        let job_fn: Arc<JobFn<J, R>> = Arc::new(job_fn);
        let mut pool = Self {
            workers: Vec::with_capacity(n_workers),
            job_fn,
            results_rx,
            results_tx,
            obs,
            epoch: 0,
            respawns: 0,
        };
        for w in 0..n_workers {
            let worker = pool.spawn_worker(w);
            pool.workers.push(worker);
        }
        pool
    }

    fn spawn_worker(&self, w: usize) -> Worker<J> {
        let (tx, rx) = channel::<Msg<J>>();
        let job_fn = Arc::clone(&self.job_fn);
        let results = self.results_tx.clone();
        let obs = self.obs.clone();
        let handle = std::thread::Builder::new()
            .name(format!("alba-par-w{w}"))
            .spawn(move || worker_loop(w, rx, results, job_fn, obs))
            // alba-lint: allow(reachable-panic) reason="spawn fails only on resource exhaustion; the supervisor dies loudly"
            .expect("spawn pool worker thread");
        Worker { tx, handle: Some(handle) }
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Lifetime count of workers respawned after their thread died.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Runs one epoch: submits `jobs` (slot `s` to worker
    /// `s % n_workers`), blocks until every job completes, and returns
    /// the outcomes **in slot order**. A job that panicked comes back
    /// as `Err(payload)` in its slot; all other slots are unaffected.
    pub fn run_epoch(&mut self, jobs: Vec<J>) -> Vec<std::thread::Result<R>> {
        self.epoch += 1;
        let epoch = self.epoch;
        let n = jobs.len();
        for (slot, job) in jobs.into_iter().enumerate() {
            let w = slot % self.workers.len();
            let mut msg = Msg::Job(epoch, slot, job);
            // A disconnected queue means the worker thread is gone
            // (its send on the results channel failed, or it was
            // killed externally): respawn and resubmit. `SendError`
            // returns the message, so nothing is lost.
            loop {
                // alba-lint: allow(reachable-panic) reason="w = slot % workers.len() is always in range"
                match self.workers[w].tx.send(msg) {
                    Ok(()) => break,
                    Err(SendError(back)) => {
                        self.respawn(w);
                        msg = back;
                    }
                }
            }
        }
        // Epoch barrier + ordered merge: collect exactly `n`
        // completions for this epoch into a slot-indexed buffer, so the
        // returned order is the submission order, not arrival order.
        let t0 = self.obs.now_ns();
        let mut out: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        let mut got = 0usize;
        while got < n {
            // Cannot disconnect: the pool holds `results_tx`.
            let Ok(c) = self.results_rx.recv() else { break };
            // alba-lint: allow(reachable-panic) reason="c.slot >= n is ruled out by this same condition"
            if c.epoch != epoch || c.slot >= n || out[c.slot].is_some() {
                continue; // stale or duplicate — defensive, unreachable by protocol
            }
            // alba-lint: allow(reachable-panic) reason="slot bound checked in the condition above"
            out[c.slot] = Some(c.outcome);
            got += 1;
        }
        self.obs.histogram("par_epoch_ns", &[]).record(self.obs.now_ns().saturating_sub(t0));
        out.into_iter()
            .map(|o| {
                o.unwrap_or_else(|| Err(Box::new("worker lost") as Box<dyn std::any::Any + Send>))
            })
            .collect()
    }

    fn respawn(&mut self, w: usize) {
        // alba-lint: allow(reachable-panic) reason="w comes from run_epoch's modulo over workers"
        if let Some(handle) = self.workers[w].handle.take() {
            let _ = handle.join();
        }
        // alba-lint: allow(reachable-panic) reason="w comes from run_epoch's modulo over workers"
        self.workers[w] = self.spawn_worker(w);
        self.respawns += 1;
        self.obs.counter("par_worker_respawns_total", &[]).inc();
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for Pool<J, R> {
    fn drop(&mut self) {
        // Deterministic shutdown: signal then join in worker-index
        // order (never in completion order).
        for w in &self.workers {
            let _ = w.tx.send(Msg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop<J, R>(
    w: usize,
    rx: Receiver<Msg<J>>,
    results: Sender<Completion<R>>,
    job_fn: Arc<JobFn<J, R>>,
    obs: Obs,
) {
    let label = w.to_string();
    let jobs_c = obs.counter("par_worker_jobs_total", &[("worker", &label)]);
    let busy_c = obs.counter("par_worker_busy_ns_total", &[("worker", &label)]);
    while let Ok(msg) = rx.recv() {
        let (epoch, slot, job) = match msg {
            Msg::Job(epoch, slot, job) => (epoch, slot, job),
            Msg::Shutdown => break,
        };
        let t0 = obs.now_ns();
        let outcome = catch_unwind(AssertUnwindSafe(|| job_fn(w, job)));
        busy_c.add(obs.now_ns().saturating_sub(t0));
        jobs_c.inc();
        if results.send(Completion { epoch, slot, outcome }).is_err() {
            break; // pool dropped mid-epoch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The core determinism contract: results come back in slot order
    /// at every worker count, even when early slots run slowest.
    #[test]
    fn merge_order_is_slot_order_at_any_worker_count() {
        let reference: Vec<usize> = (0..17).map(|i| i * i).collect();
        for n_workers in [1, 2, 4, 8] {
            let mut pool: Pool<usize, usize> =
                Pool::new(n_workers, Obs::disabled(), |_w, i: usize| {
                    // Early slots sleep longest: arrival order is
                    // roughly the reverse of slot order.
                    std::thread::sleep(std::time::Duration::from_millis((17 - i as u64).min(8)));
                    i * i
                });
            let got: Vec<usize> = pool
                .run_epoch((0..17).collect())
                .into_iter()
                .map(|r| r.expect("no job panicked"))
                .collect();
            assert_eq!(got, reference, "order broke at {n_workers} workers");
        }
    }

    /// A panicking job surfaces as Err in its own slot; other slots
    /// complete, and the pool keeps working across epochs.
    #[test]
    fn panics_are_contained_per_slot() {
        let mut pool: Pool<usize, usize> = Pool::new(2, Obs::disabled(), |_w, i: usize| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
        let out = pool.run_epoch((0..6).collect());
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.is_err(), i == 3, "only slot 3 may fail");
        }
        let again = pool.run_epoch(vec![10, 11]);
        assert_eq!(again.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(), vec![10, 11]);
        assert_eq!(pool.respawns(), 0, "a caught panic must not cost a thread");
    }

    /// Slot→worker placement is `slot % n_workers`, observable through
    /// the worker index handed to the job fn.
    #[test]
    fn assignment_is_modular_and_static() {
        let mut pool: Pool<usize, (usize, usize)> =
            Pool::new(3, Obs::disabled(), |w, slot: usize| (w, slot));
        for _epoch in 0..3 {
            let out = pool.run_epoch((0..10).collect());
            for (slot, r) in out.into_iter().enumerate() {
                let (w, s) = r.unwrap();
                assert_eq!(s, slot);
                assert_eq!(w, slot % 3, "placement must be slot % n_workers");
            }
        }
    }

    /// Epochs are barriers: every job of epoch e finishes before
    /// run_epoch returns, so a shared counter settles exactly.
    #[test]
    fn epoch_barrier_waits_for_all_jobs() {
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let mut pool: Pool<u64, ()> = Pool::new(4, Obs::disabled(), move |_w, v: u64| {
            t.fetch_add(v, Ordering::SeqCst);
        });
        for round in 1..=5u64 {
            pool.run_epoch((0..100).collect());
            assert_eq!(total.load(Ordering::SeqCst), round * 4950);
        }
    }

    /// Per-worker counters land in the obs registry; the epoch
    /// histogram records once per epoch.
    #[test]
    fn pool_records_worker_counters() {
        let obs = Obs::wall();
        let mut pool: Pool<usize, usize> = Pool::new(2, obs.clone(), |_w, i| i);
        pool.run_epoch((0..5).collect());
        pool.run_epoch((0..5).collect());
        // Slots 0,2,4 on worker 0; slots 1,3 on worker 1; twice.
        assert_eq!(obs.counter("par_worker_jobs_total", &[("worker", "0")]).get(), 6);
        assert_eq!(obs.counter("par_worker_jobs_total", &[("worker", "1")]).get(), 4);
        let snap = obs.histogram("par_epoch_ns", &[]).snapshot().unwrap();
        assert_eq!(snap.count, 2);
    }

    /// An empty epoch is legal and returns immediately.
    #[test]
    fn empty_epoch_is_a_no_op() {
        let mut pool: Pool<usize, usize> = Pool::new(2, Obs::disabled(), |_w, i| i);
        assert!(pool.run_epoch(Vec::new()).is_empty());
    }
}
