//! String-label encoding.

use serde::{Deserialize, Serialize};

/// Bidirectional mapping between class names and contiguous class indices.
///
/// The order of insertion defines the class index, so an encoder built from
/// `["healthy", "cpuoccupy", ...]` always encodes `healthy` as class 0 —
/// experiments rely on this to compute false-alarm and miss rates.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelEncoder {
    names: Vec<String>,
}

impl LabelEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an encoder from a fixed, ordered list of class names.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        let mut enc = Self::new();
        for n in names {
            assert!(enc.encode(n.as_ref()).is_none(), "duplicate class name {:?}", n.as_ref());
            enc.names.push(n.as_ref().to_string());
        }
        enc
    }

    /// Returns the index for `name`, inserting it if unseen.
    pub fn encode_or_insert(&mut self, name: &str) -> usize {
        if let Some(i) = self.encode(name) {
            i
        } else {
            self.names.push(name.to_string());
            self.names.len() - 1
        }
    }

    /// Returns the index for `name` if known.
    pub fn encode(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Returns the name for class `idx` if in range.
    pub fn decode(&self, idx: usize) -> Option<&str> {
        self.names.get(idx).map(String::as_str)
    }

    /// Number of known classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no class has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All class names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_defines_index() {
        let enc = LabelEncoder::from_names(&["healthy", "memleak", "dial"]);
        assert_eq!(enc.encode("healthy"), Some(0));
        assert_eq!(enc.encode("dial"), Some(2));
        assert_eq!(enc.decode(1), Some("memleak"));
        assert_eq!(enc.decode(3), None);
    }

    #[test]
    fn encode_or_insert_is_idempotent() {
        let mut enc = LabelEncoder::new();
        let a = enc.encode_or_insert("x");
        let b = enc.encode_or_insert("y");
        let a2 = enc.encode_or_insert("x");
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(enc.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn from_names_rejects_duplicates() {
        let _ = LabelEncoder::from_names(&["a", "a"]);
    }
}
