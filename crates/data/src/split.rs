//! Stratified splitting and cross-validation folds.
//!
//! The paper repeats its train/test split five times with *stratified
//! sampling* so class proportions match the full dataset (Sec. IV-E.2), and
//! tunes hyperparameters with 5-fold *stratified* cross-validation on the
//! active-learning training dataset only.

use rand::seq::SliceRandom;
use rand::Rng;

/// Deterministically shuffles `idx` with the provided RNG.
pub fn shuffle_indices<R: Rng>(idx: &mut [usize], rng: &mut R) {
    idx.shuffle(rng);
}

/// Groups sample indices by class label.
fn by_class(y: &[usize]) -> Vec<Vec<usize>> {
    let n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); n_classes];
    for (i, &c) in y.iter().enumerate() {
        groups[c].push(i);
    }
    groups
}

/// Stratified train/test split.
///
/// Returns `(train_idx, test_idx)` where each class contributes
/// `round(count * train_fraction)` samples to the training side, with at
/// least one sample per side whenever the class has two or more samples.
///
/// # Panics
/// Panics if `train_fraction` is outside `(0, 1)`.
pub fn stratified_split<R: Rng>(
    y: &[usize],
    train_fraction: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train_fraction must be in (0,1), got {train_fraction}"
    );
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut members in by_class(y) {
        if members.is_empty() {
            continue;
        }
        members.shuffle(rng);
        let n = members.len();
        let mut n_train = (n as f64 * train_fraction).round() as usize;
        if n >= 2 {
            n_train = n_train.clamp(1, n - 1);
        } else {
            n_train = n_train.min(n);
        }
        train.extend_from_slice(&members[..n_train]);
        test.extend_from_slice(&members[n_train..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// Stratified k-fold assignment.
///
/// Returns `k` pairs of `(train_idx, validation_idx)` partitioning the
/// dataset so that each fold's class distribution approximates the global
/// one. Classes with fewer than `k` samples appear in fewer folds'
/// validation sides (mirroring scikit-learn's behaviour of spreading what is
/// available).
///
/// # Panics
/// Panics when `k < 2`.
pub fn stratified_k_fold<R: Rng>(
    y: &[usize],
    k: usize,
    rng: &mut R,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2, got {k}");
    let mut fold_of = vec![0usize; y.len()];
    for mut members in by_class(y) {
        members.shuffle(rng);
        for (pos, &i) in members.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut valid = Vec::new();
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    valid.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, valid)
        })
        .collect()
}

/// Draws `n` indices uniformly at random *with replacement* from `0..len`
/// (bootstrap sampling for bagged ensembles).
pub fn bootstrap_indices<R: Rng>(len: usize, n: usize, rng: &mut R) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..len)).collect()
}

/// Selects, for every `(application, class)` pair present, exactly one
/// sample index — the paper's initial labeled dataset ("one sample for each
/// application and anomaly pair", Sec. III).
///
/// `apps` and `y` are parallel arrays; the chosen sample per pair is random.
pub fn one_per_app_class_pair<R: Rng>(apps: &[&str], y: &[usize], rng: &mut R) -> Vec<usize> {
    assert_eq!(apps.len(), y.len());
    let mut pairs: Vec<(&str, usize, Vec<usize>)> = Vec::new();
    for i in 0..y.len() {
        match pairs.iter_mut().find(|(a, c, _)| *a == apps[i] && *c == y[i]) {
            Some((_, _, v)) => v.push(i),
            None => pairs.push((apps[i], y[i], vec![i])),
        }
    }
    let mut out: Vec<usize> = pairs.iter().map(|(_, _, v)| v[rng.gen_range(0..v.len())]).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn stratified_split_preserves_class_ratio() {
        // 60 of class 0, 30 of class 1, 10 of class 2.
        let mut y = vec![0usize; 60];
        y.extend(vec![1usize; 30]);
        y.extend(vec![2usize; 10]);
        let (train, test) = stratified_split(&y, 0.7, &mut rng());
        assert_eq!(train.len() + test.len(), 100);
        let count = |idx: &[usize], c: usize| idx.iter().filter(|&&i| y[i] == c).count();
        assert_eq!(count(&train, 0), 42);
        assert_eq!(count(&train, 1), 21);
        assert_eq!(count(&train, 2), 7);
        // No overlap.
        for i in &train {
            assert!(!test.contains(i));
        }
    }

    #[test]
    fn stratified_split_keeps_one_per_side_for_small_classes() {
        let y = vec![0, 0, 0, 0, 1, 1];
        let (train, test) = stratified_split(&y, 0.9, &mut rng());
        assert!(test.iter().any(|&i| y[i] == 1), "rare class must reach the test side");
        assert!(train.iter().any(|&i| y[i] == 1));
    }

    #[test]
    fn k_fold_partitions_everything_once() {
        let y: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let folds = stratified_k_fold(&y, 5, &mut rng());
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; y.len()];
        for (train, valid) in &folds {
            assert_eq!(train.len() + valid.len(), y.len());
            for &i in valid {
                seen[i] += 1;
            }
            for i in train {
                assert!(!valid.contains(i));
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "each sample validates exactly once");
    }

    #[test]
    fn k_fold_spreads_classes() {
        let y: Vec<usize> = (0..40).map(|i| i % 4).collect();
        for (_, valid) in stratified_k_fold(&y, 5, &mut rng()) {
            for c in 0..4 {
                assert_eq!(valid.iter().filter(|&&i| y[i] == c).count(), 2);
            }
        }
    }

    #[test]
    fn bootstrap_is_in_range_with_replacement() {
        let idx = bootstrap_indices(10, 1000, &mut rng());
        assert_eq!(idx.len(), 1000);
        assert!(idx.iter().all(|&i| i < 10));
        // With 1000 draws from 10 values duplicates are certain.
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() <= 10);
    }

    #[test]
    fn one_per_pair_covers_every_pair() {
        let apps = vec!["bt", "bt", "cg", "cg", "bt", "cg"];
        let y = vec![0, 1, 0, 1, 0, 1];
        let apps_ref: Vec<&str> = apps.clone();
        let chosen = one_per_app_class_pair(&apps_ref, &y, &mut rng());
        assert_eq!(chosen.len(), 4); // 2 apps x 2 classes
        let mut pairs: Vec<(&str, usize)> = chosen.iter().map(|&i| (apps[i], y[i])).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), 4);
    }
}
