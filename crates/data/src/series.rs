//! Multivariate time-series containers produced by the telemetry substrate
//! and consumed by the feature-extraction pipeline.

use serde::{Deserialize, Serialize};

/// How a metric reports its value, mirroring LDMS semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Instantaneous value (e.g. `MemFree`).
    Gauge,
    /// Monotonically increasing counter (e.g. per-core CPU time); the
    /// pipeline differences these before feature extraction (Sec. IV-E.1).
    Counter,
}

/// Static description of one collected metric.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetricDef {
    /// Fully qualified name, e.g. `"meminfo.MemFree"`.
    pub name: String,
    /// Subsystem grouping (memory, cpu, network, filesystem, cray).
    pub subsystem: String,
    /// Gauge or cumulative counter.
    pub kind: MetricKind,
}

/// A multivariate time series: `T` timestamps x `M` metrics, sampled at a
/// fixed rate (1 Hz in the paper). Values may be NaN where the collector
/// dropped a sample.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiSeries {
    /// Metric definitions, parallel to the inner vectors of `values`.
    pub metrics: Vec<MetricDef>,
    /// `values[m][t]` is metric `m` at timestamp `t`.
    pub values: Vec<Vec<f64>>,
}

impl MultiSeries {
    /// Creates an empty series for the given metric definitions.
    pub fn new(metrics: Vec<MetricDef>) -> Self {
        let n = metrics.len();
        Self { metrics, values: vec![Vec::new(); n] }
    }

    /// Number of metrics.
    pub fn n_metrics(&self) -> usize {
        self.metrics.len()
    }

    /// Number of timestamps (0 when no metric has been appended yet).
    pub fn len(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }

    /// True when no timestamps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one timestamp worth of readings.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the metric count.
    pub fn push_sample(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_metrics(), "sample width mismatch");
        for (series, &v) in self.values.iter_mut().zip(row) {
            series.push(v);
        }
    }

    /// Returns the series of metric `m`.
    pub fn metric(&self, m: usize) -> &[f64] {
        &self.values[m]
    }

    /// Drops the first `head` and last `tail` timestamps from every metric —
    /// the paper omits initialization and termination phases (Sec. IV-E.1).
    ///
    /// If fewer than `head + tail + 1` timestamps exist, the series is left
    /// with a single middle sample rather than becoming empty.
    pub fn trim(&mut self, head: usize, tail: usize) {
        let len = self.len();
        if len == 0 {
            return;
        }
        let (head, tail) = if head + tail >= len {
            // Keep the middle sample.
            let mid = len / 2;
            (mid, len - mid - 1)
        } else {
            (head, tail)
        };
        for series in &mut self.values {
            series.drain(len - tail..);
            series.drain(..head);
        }
    }

    /// Verifies internal consistency (all metrics same length).
    pub fn validate(&self) -> Result<(), String> {
        let len = self.len();
        for (m, series) in self.values.iter().enumerate() {
            if series.len() != len {
                return Err(format!(
                    "metric {m} ({}) has {} samples, expected {len}",
                    self.metrics[m].name,
                    series.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs(n: usize) -> Vec<MetricDef> {
        (0..n)
            .map(|i| MetricDef {
                name: format!("m{i}"),
                subsystem: "cpu".into(),
                kind: MetricKind::Gauge,
            })
            .collect()
    }

    #[test]
    fn push_sample_grows_all_metrics() {
        let mut s = MultiSeries::new(defs(3));
        s.push_sample(&[1.0, 2.0, 3.0]);
        s.push_sample(&[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.metric(1), &[2.0, 5.0]);
        s.validate().unwrap();
    }

    #[test]
    fn trim_removes_transients() {
        let mut s = MultiSeries::new(defs(1));
        for t in 0..10 {
            s.push_sample(&[t as f64]);
        }
        s.trim(2, 3);
        assert_eq!(s.metric(0), &[2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn trim_never_empties_short_series() {
        let mut s = MultiSeries::new(defs(1));
        for t in 0..4 {
            s.push_sample(&[t as f64]);
        }
        s.trim(10, 10);
        assert_eq!(s.len(), 1);
        assert_eq!(s.metric(0), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "sample width mismatch")]
    fn push_sample_validates_width() {
        let mut s = MultiSeries::new(defs(2));
        s.push_sample(&[1.0]);
    }

    #[test]
    fn validate_detects_ragged_series() {
        let mut s = MultiSeries::new(defs(2));
        s.push_sample(&[1.0, 2.0]);
        s.values[1].push(9.0);
        assert!(s.validate().is_err());
    }
}
