//! Dense row-major matrix used across the workspace.
//!
//! The reproduction deliberately avoids a heavyweight linear-algebra
//! dependency: every consumer (feature extraction, tree ensembles, linear
//! models, the MLP) only needs contiguous row access, column iteration and a
//! handful of BLAS-1/2 style kernels, all of which are easy to keep
//! cache-friendly on a flat `Vec<f64>`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f64`.
///
/// Rows are samples and columns are features everywhere in this workspace.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` into a freshly allocated vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns a new matrix containing only the rows listed in `idx`
    /// (in that order; duplicates allowed, enabling bootstrap resampling).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (dst, &src) in idx.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Returns a new matrix containing only the columns listed in `idx`.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (j, &c) in idx.iter().enumerate() {
                dst[j] = src[c];
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics when the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Appends a single row.
    ///
    /// # Panics
    /// Panics when `row.len() != cols` (unless the matrix is still 0x0).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// Dense matrix product `self * rhs`.
    ///
    /// Straightforward ikj-ordered kernel; fast enough for the MLP /
    /// autoencoder layer sizes used in this reproduction.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                let o_row = out.row_mut(i);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    o_row[j] += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Per-column minimum and maximum, ignoring non-finite entries.
    ///
    /// Columns without a single finite value report `(0.0, 0.0)`.
    pub fn column_min_max(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mins = vec![f64::INFINITY; self.cols];
        let mut maxs = vec![f64::NEG_INFINITY; self.cols];
        for row in self.rows_iter() {
            for (c, &v) in row.iter().enumerate() {
                if v.is_finite() {
                    if v < mins[c] {
                        mins[c] = v;
                    }
                    if v > maxs[c] {
                        maxs[c] = v;
                    }
                }
            }
        }
        for c in 0..self.cols {
            if !mins[c].is_finite() {
                mins[c] = 0.0;
                maxs[c] = 0.0;
            }
        }
        (mins, maxs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Chunked accumulation lets LLVM vectorise without `-ffast-math`.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        acc[0] += a[o] * b[o];
        acc[1] += a[o + 1] * b[o + 1];
        acc[2] += a[o + 2] * b[o + 2];
        acc[3] += a[o + 3] * b[o + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_rows_allows_duplicates() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 2, 0]);
        assert_eq!(s.column(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn select_cols_reorders() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn push_row_grows_and_sets_cols() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn column_min_max_ignores_nan() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![3.0, f64::NAN]]);
        let (mins, maxs) = m.column_min_max();
        assert_eq!(mins, vec![1.0, 0.0]);
        assert_eq!(maxs, vec![3.0, 0.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let b = vec![2.0; 11];
        assert_eq!(dot(&a, &b), 2.0 * (0..11).sum::<i32>() as f64);
    }
}
