//! # alba-data
//!
//! Shared data structures for the ALBADross reproduction: a dense row-major
//! [`Matrix`], labeled [`Dataset`]s with per-sample provenance, multivariate
//! time-series containers, and stratified splitting / cross-validation
//! utilities used throughout the evaluation.

#![warn(missing_docs)]

pub mod dataset;
pub mod labels;
pub mod matrix;
pub mod series;
pub mod split;

pub use dataset::{Dataset, SampleMeta};
pub use labels::LabelEncoder;
pub use matrix::{dot, Matrix};
pub use series::{MetricDef, MetricKind, MultiSeries};
pub use split::{
    bootstrap_indices, one_per_app_class_pair, shuffle_indices, stratified_k_fold, stratified_split,
};
