//! Labeled feature datasets with per-sample provenance.
//!
//! A *sample* — exactly as in the paper — is the telemetry collected on one
//! compute node during one application run, reduced to a feature vector.
//! Besides the feature matrix and encoded class label, every sample carries
//! [`SampleMeta`] provenance (application, input deck, run, node) because the
//! robustness experiments (Figs. 6–8) slice datasets by application and by
//! input deck, and the drill-down analysis (Fig. 4) groups queried samples by
//! application and label.

use crate::labels::LabelEncoder;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Provenance of one sample (one node of one application run).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Application name, e.g. `"Kripke"` or `"LAMMPS"`.
    pub app: String,
    /// Input deck index (0-based; the paper uses three decks per app).
    pub input_deck: usize,
    /// Identifier of the job run this node participated in.
    pub run_id: usize,
    /// Node index within the allocation (anomalies are injected on node 0).
    pub node: usize,
    /// Total nodes in the allocation.
    pub node_count: usize,
    /// Injected anomaly intensity in percent (0 for healthy samples).
    pub intensity_pct: u32,
}

impl SampleMeta {
    /// Compact human-readable provenance string (used in reports).
    pub fn describe(&self) -> String {
        format!(
            "{} deck{} run{} node{}/{} int{}%",
            self.app, self.input_deck, self.run_id, self.node, self.node_count, self.intensity_pct
        )
    }
}

/// A labeled dataset: feature matrix, encoded labels, class names and
/// per-sample provenance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub x: Matrix,
    /// Encoded class label per sample (index into `encoder`).
    pub y: Vec<usize>,
    /// Label encoder mapping class indices to class names.
    pub encoder: LabelEncoder,
    /// Per-sample provenance, parallel to the rows of `x`.
    pub meta: Vec<SampleMeta>,
    /// Feature names, parallel to the columns of `x`.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset, validating that all parallel structures agree.
    ///
    /// # Panics
    /// Panics when lengths are inconsistent or a label index is out of range.
    pub fn new(
        x: Matrix,
        y: Vec<usize>,
        encoder: LabelEncoder,
        meta: Vec<SampleMeta>,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "labels do not match rows");
        assert_eq!(x.rows(), meta.len(), "meta does not match rows");
        assert_eq!(x.cols(), feature_names.len(), "feature names do not match cols");
        assert!(
            y.iter().all(|&c| c < encoder.len()),
            "label index out of range for encoder with {} classes",
            encoder.len()
        );
        Self { x, y, encoder, meta, feature_names }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of classes known to the encoder.
    pub fn n_classes(&self) -> usize {
        self.encoder.len()
    }

    /// Returns a new dataset restricted to the samples listed in `idx`
    /// (order preserved, duplicates allowed).
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            encoder: self.encoder.clone(),
            meta: idx.iter().map(|&i| self.meta[i].clone()).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Returns the indices of samples satisfying `pred`.
    pub fn indices_where(&self, pred: impl Fn(&SampleMeta, usize) -> bool) -> Vec<usize> {
        (0..self.len()).filter(|&i| pred(&self.meta[i], self.y[i])).collect()
    }

    /// Returns a new dataset with only the listed feature columns.
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_cols(cols),
            y: self.y.clone(),
            encoder: self.encoder.clone(),
            meta: self.meta.clone(),
            feature_names: cols.iter().map(|&c| self.feature_names[c].clone()).collect(),
        }
    }

    /// Concatenates two datasets with identical schema.
    ///
    /// # Panics
    /// Panics when feature names or encoders differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.feature_names, other.feature_names, "schema mismatch");
        assert_eq!(self.encoder, other.encoder, "encoder mismatch");
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        let mut meta = self.meta.clone();
        meta.extend_from_slice(&other.meta);
        Dataset {
            x: self.x.vstack(&other.x),
            y,
            encoder: self.encoder.clone(),
            meta,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Per-class sample counts, indexed by class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &c in &self.y {
            counts[c] += 1;
        }
        counts
    }

    /// Sorted list of distinct application names present in the dataset.
    pub fn applications(&self) -> Vec<String> {
        let mut apps: Vec<String> = self.meta.iter().map(|m| m.app.clone()).collect();
        apps.sort();
        apps.dedup();
        apps
    }

    /// Fraction of samples whose label is not the given healthy class.
    pub fn anomaly_ratio(&self, healthy_class: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let anomalous = self.y.iter().filter(|&&c| c != healthy_class).count();
        anomalous as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(app: &str, deck: usize) -> SampleMeta {
        SampleMeta {
            app: app.to_string(),
            input_deck: deck,
            run_id: 0,
            node: 0,
            node_count: 4,
            intensity_pct: 0,
        }
    }

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]);
        let encoder = LabelEncoder::from_names(&["healthy", "memleak"]);
        Dataset::new(
            x,
            vec![0, 1, 0],
            encoder,
            vec![meta("bt", 0), meta("cg", 1), meta("bt", 2)],
            vec!["f0".into(), "f1".into()],
        )
    }

    #[test]
    fn select_preserves_parallel_structures() {
        let d = toy();
        let s = d.select(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y, vec![0, 0]);
        assert_eq!(s.meta[0].input_deck, 2);
        assert_eq!(s.x.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn select_features_renames() {
        let d = toy();
        let s = d.select_features(&[1]);
        assert_eq!(s.feature_names, vec!["f1".to_string()]);
        assert_eq!(s.x.column(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.len(), 6);
        assert_eq!(c.y[3..], d.y[..]);
    }

    #[test]
    fn class_counts_and_anomaly_ratio() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 1]);
        assert!((d.anomaly_ratio(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn applications_are_sorted_unique() {
        let d = toy();
        assert_eq!(d.applications(), vec!["bt".to_string(), "cg".to_string()]);
    }

    #[test]
    #[should_panic(expected = "labels do not match rows")]
    fn new_validates_lengths() {
        let x = Matrix::zeros(2, 1);
        let encoder = LabelEncoder::from_names(&["a"]);
        let _ = Dataset::new(x, vec![0], encoder, vec![], vec!["f".into()]);
    }

    #[test]
    fn indices_where_filters_by_meta_and_label() {
        let d = toy();
        let idx = d.indices_where(|m, y| m.app == "bt" && y == 0);
        assert_eq!(idx, vec![0, 2]);
    }
}
