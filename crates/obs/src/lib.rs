//! # alba-obs
//!
//! Observability substrate for the ALBADross workspace: the pipeline
//! that diagnoses a production fleet must itself be monitorable
//! (E2EWatch ships its diagnosis pipeline as an operational service;
//! RUAD stresses per-stage cost on production telemetry). This crate
//! has **no dependencies** — not even the vendored shims — so every
//! layer of the workspace can adopt it without widening its build
//! graph:
//!
//! * [`registry`] — a thread-safe [`Obs`] handle over named counters,
//!   gauges and log-bucketed [`Histogram`]s, with a Prometheus-style
//!   text exposition dump,
//! * [`histogram`] — log-linear-bucketed latency histograms
//!   (p50/p90/p99/max, mergeable across shards),
//! * [`clock`] — the injectable [`Clock`]: [`WallClock`] in production,
//!   [`TickClock`] for deterministic tests and replays,
//! * [`event`] — structured events serialised as JSONL into a
//!   pluggable [`EventSink`],
//! * [`global`] — an optional process-wide handle so deep call sites
//!   (model fits, feature extraction) can record without plumbing.
//!
//! A disabled handle ([`Obs::disabled`]) turns every operation into a
//! no-op, so instrumented hot paths cost nothing when observability is
//! off — the `obs_overhead` benchmark holds the enabled path within a
//! few percent of that baseline.
//!
//! ## Determinism contract
//!
//! With a [`TickClock`] every event timestamp and span duration derives
//! from explicitly advanced ticks, so two runs of a seeded pipeline
//! emit **identical JSONL event logs** — asserted by the serve
//! integration suite. Events must be emitted from deterministic
//! single-threaded contexts (the service tick loop); histograms and
//! counters may be recorded from worker threads, as their merged totals
//! are order-independent.
//!
//! ```
//! use alba_obs::{Obs, MemorySink, TickClock, Value};
//! use std::sync::Arc;
//!
//! let clock = Arc::new(TickClock::new());
//! let obs = Obs::with_clock(clock.clone());
//! let sink = Arc::new(MemorySink::new());
//! obs.set_sink(sink.clone());
//!
//! obs.counter("windows_total", &[("shard", "0")]).inc();
//! clock.set(1_000);
//! obs.event("alarm", &[("node", Value::from(3u64)), ("label", Value::from("memleak"))]);
//! {
//!     let _span = obs.span("stage_ns", &[("stage", "extract")]);
//!     clock.advance(250);
//! } // drop records 250 ns into the `stage_ns{stage="extract"}` histogram
//!
//! assert_eq!(sink.lines()[0], r#"{"ts":1000,"kind":"alarm","node":3,"label":"memleak"}"#);
//! assert!(obs.expose().contains("windows_total{shard=\"0\"} 1"));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod global;
pub mod histogram;
pub mod registry;

pub use clock::{Clock, TickClock, WallClock};
pub use event::{json_escape, push_u64, EventSink, FileSink, MemorySink, Value};
pub use global::{clear_global, global, set_global};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Hist, HistogramRow, Obs, Span};

/// Opens a timing span on an [`Obs`] handle; the span records its
/// elapsed time into the named histogram when dropped.
///
/// ```
/// use alba_obs::{span, Obs};
/// let obs = Obs::wall();
/// {
///     let _s = span!(obs, "stage_ns", "stage" => "extract");
/// }
/// assert_eq!(obs.histogram("stage_ns", &[("stage", "extract")]).snapshot().unwrap().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name, &[])
    };
    ($obs:expr, $name:expr, $($k:expr => $v:expr),+ $(,)?) => {
        $obs.span($name, &[$(($k, $v)),+])
    };
}
