//! Structured events serialised as JSON Lines into a pluggable sink.
//!
//! An event is a `kind` plus typed fields; the registry renders it as
//! one self-contained JSON object per line (`{"ts":..,"kind":..,...}`)
//! so logs can be tailed, grepped and parsed without a schema. JSON is
//! rendered by hand — this crate carries no dependencies — with the
//! escaping rules the serialisation needs and nothing more.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// A typed event-field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `null`).
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Borrowed static string (escaped on render) — what `&'static
    /// str` literals convert into, so hot paths (the tracer's hop
    /// renderer, per-sample events) attach identifier fields without
    /// allocating.
    Ident(&'static str),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Ident(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    /// Renders the value as a JSON literal into `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Value::U64(v) => push_u64(out, *v),
            Value::I64(v) => {
                if *v < 0 {
                    out.push('-');
                    push_u64(out, v.unsigned_abs());
                } else {
                    push_u64(out, *v as u64);
                }
            }
            // fmt::Write to a String never errors; discard the Result.
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Str(s) => {
                out.push('"');
                json_escape(s, out);
                out.push('"');
            }
            Value::Ident(s) => {
                out.push('"');
                json_escape(s, out);
                out.push('"');
            }
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

/// Appends `v` in decimal — the same bytes as `write!(out, "{v}")`
/// without the `core::fmt` machinery. Rendered on every event field
/// and trace hop, which is why it is hand-rolled. Pushes chars (always
/// ASCII digits), so the path is infallible by construction.
pub fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

/// Appends `s` to `out` with JSON string escaping applied.
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a JSON line (no trailing newline).
pub(crate) fn render_event(ts: u64, kind: &str, fields: &[(&str, Value)]) -> String {
    let mut line = String::with_capacity(64);
    line.push_str("{\"ts\":");
    push_u64(&mut line, ts);
    line.push_str(",\"kind\":\"");
    json_escape(kind, &mut line);
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        json_escape(k, &mut line);
        line.push_str("\":");
        v.render_into(&mut line);
    }
    line.push('}');
    line
}

/// Receives rendered JSONL event lines.
pub trait EventSink: Send + Sync {
    /// Consumes one rendered line (no trailing newline).
    fn emit(&self, line: &str);
}

/// An in-memory sink capturing every line — for tests and determinism
/// assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every line emitted so far, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Lines emitted so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).push(line.to_string());
    }
}

/// A sink appending one line per event to a file (unbuffered writes —
/// event rates in this workspace are low and crash-safety matters more
/// than syscall counts).
#[derive(Debug)]
pub struct FileSink {
    file: Mutex<File>,
}

impl FileSink {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { file: Mutex::new(File::create(path)?) })
    }
}

impl EventSink for FileSink {
    fn emit(&self, line: &str) {
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // A failed log write must never take down the pipeline it
        // observes; the error is intentionally dropped.
        let _ = writeln!(f, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_typed_fields() {
        let line = render_event(
            7,
            "alarm",
            &[
                ("node", Value::from(3usize)),
                ("score", Value::from(0.5f64)),
                ("label", Value::from("memleak")),
                ("confirmed", Value::from(true)),
                ("delta", Value::from(-2i64)),
            ],
        );
        assert_eq!(
            line,
            r#"{"ts":7,"kind":"alarm","node":3,"score":0.5,"label":"memleak","confirmed":true,"delta":-2}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let line = render_event(
            0,
            "x",
            &[("s", Value::from("a\"b\\c\nd\u{1}")), ("nan", Value::from(f64::NAN))],
        );
        assert_eq!(line, r#"{"ts":0,"kind":"x","s":"a\"b\\c\nd\u0001","nan":null}"#);
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit("a");
        sink.emit("b");
        assert_eq!(sink.lines(), vec!["a", "b"]);
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join("alba_obs_file_sink_test.jsonl");
        let sink = FileSink::create(&path).unwrap();
        sink.emit(r#"{"ts":0,"kind":"a"}"#);
        sink.emit(r#"{"ts":1,"kind":"b"}"#);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
