//! Log-linear-bucketed histograms for latency distributions.
//!
//! Values (typically nanoseconds or ticks) land in buckets that are
//! exact below 8 and otherwise split each power-of-two octave into 8
//! linear sub-buckets, bounding the relative quantile error at 12.5 %
//! while keeping the whole `u64` range in 496 fixed buckets. Recording
//! is a bounds check plus an increment; histograms from different
//! shards [`merge`](Histogram::merge) by bucket-wise addition, so
//! fleet-wide percentiles are exact aggregations of per-shard state —
//! no sample is kept, no allocation happens after construction.

/// Linear sub-buckets per octave = `1 << SUB_BITS`.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: `SUBS` exact small buckets + 61 octaves × `SUBS`.
const N_BUCKETS: usize = SUBS + 61 * SUBS;

/// Bucket index for a value (monotonic in the value).
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (octave - 1) * SUBS + sub
}

/// Inclusive lower bound of a bucket.
fn lower_bound(bucket: usize) -> u64 {
    if bucket < SUBS {
        return bucket as u64;
    }
    let octave = (bucket - SUBS) / SUBS + 1;
    let sub = ((bucket - SUBS) % SUBS) as u64;
    let msb = octave as u32 + SUB_BITS - 1;
    (1u64 << msb) + sub * (1u64 << (msb - SUB_BITS))
}

/// A mergeable latency histogram (see the module docs for bucketing).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Folds another histogram into this one (bucket-wise addition), the
    /// cross-shard aggregation path.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// An immutable summary of the current state (only occupied buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (lower_bound(i), c))
                .collect(),
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), `None` when empty; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// Frozen histogram state: occupied `(bucket lower bound, count)` pairs
/// plus the scalar summary, ready for serialisation or exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Occupied buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the lower bound of the
    /// first bucket whose cumulative count reaches `q * count`, clamped
    /// to the observed min/max. Exact for values below 8; within 12.5 %
    /// above. A percentile of an empty histogram is undefined, so the
    /// empty case is `None` — never a fabricated 0 and never a panic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(lo.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Appends this histogram in Prometheus text-exposition format:
    /// cumulative `_bucket{le=...}` lines (one per occupied bucket plus
    /// `+Inf`), then `_sum`, `_count` and `_max`. `labels` must already
    /// be rendered (e.g. `shard="0"`) or empty.
    pub fn expose_into(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        writeln!(out, "# TYPE {name} histogram").unwrap();
        let mut cum = 0u64;
        for &(lo, c) in &self.buckets {
            cum += c;
            writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{lo}\"}} {cum}").unwrap();
        }
        writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", self.count).unwrap();
        let braced = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        writeln!(out, "{name}_sum{braced} {}", self.sum).unwrap();
        writeln!(out, "{name}_count{braced} {}", self.count).unwrap();
        writeln!(out, "{name}_max{braced} {}", self.max).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotonic_and_consistent() {
        let mut prev = 0;
        for b in 0..N_BUCKETS {
            let lo = lower_bound(b);
            assert!(b == 0 || lo > prev, "bucket {b} bound {lo} <= {prev}");
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b} maps back");
            prev = lo;
        }
        // Extremes stay in range.
        assert_eq!(bucket_of(0), 0);
        assert!(bucket_of(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 5, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(1.0), Some(7));
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 21);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn large_quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let est = h.quantile(q).unwrap() as f64;
            assert!((est - exact).abs() / exact < 0.125, "q{q}: {est} vs {exact}");
        }
        assert_eq!(h.quantile(1.0), Some(h.snapshot().buckets.last().unwrap().0.max(1)));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..1_000u64 {
            if v % 2 == 0 { &mut a } else { &mut b }.record(v * 17);
            whole.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn empty_histogram_percentiles_are_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q{q} of an empty histogram");
        }
        assert_eq!(h.max(), 0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_every_percentile_is_the_sample() {
        // Including values whose bucket lower bound sits below the
        // sample: the min/max clamp must pull the estimate back.
        for v in [0u64, 1, 7, 9, 1_000, 123_456_789] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "q{q} of single sample {v}");
            }
        }
    }

    #[test]
    fn exposition_renders_cumulative_buckets() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(5);
        let mut out = String::new();
        h.snapshot().expose_into("lat_ns", "stage=\"x\"", &mut out);
        assert!(out.contains("# TYPE lat_ns histogram"));
        assert!(out.contains("lat_ns_bucket{stage=\"x\",le=\"1\"} 2"));
        assert!(out.contains("lat_ns_bucket{stage=\"x\",le=\"5\"} 3"));
        assert!(out.contains("lat_ns_bucket{stage=\"x\",le=\"+Inf\"} 3"));
        assert!(out.contains("lat_ns_sum{stage=\"x\"} 7"));
        assert!(out.contains("lat_ns_count{stage=\"x\"} 3"));
        assert!(out.contains("lat_ns_max{stage=\"x\"} 5"));
    }
}
