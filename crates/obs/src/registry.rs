//! The thread-safe metric registry and its cheap recording handles.
//!
//! An [`Obs`] is a cloneable handle over one shared registry (or over
//! nothing — [`Obs::disabled`] turns every operation into a no-op, so
//! instrumentation can stay in place unconditionally). Metrics are
//! identified by name plus a sorted label set; looking one up returns a
//! handle ([`Counter`], [`Gauge`], [`Hist`]) that callers may cache to
//! keep hot paths down to an atomic increment. [`Obs::expose`] renders
//! every registered metric in Prometheus text-exposition format, in a
//! deterministic (sorted) order.

use crate::clock::{Clock, WallClock};
use crate::event::{render_event, EventSink, Value};
use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric identity: name plus sorted `(key, value)` labels.
type MetricId = (String, Vec<(String, String)>);

/// One registry histogram as returned by [`Obs::histogram_snapshots`]:
/// metric name, sorted labels, snapshot.
pub type HistogramRow = (String, Vec<(String, String)>, HistogramSnapshot);

fn metric_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut ls: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    ls.sort();
    (name.to_string(), ls)
}

/// Renders a sorted label set as `k1="v1",k2="v2"` (empty for none).
fn render_labels(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        crate::event::json_escape(v, &mut out);
        out.push('"');
    }
    out
}

struct Inner {
    clock: Arc<dyn Clock>,
    counters: Mutex<BTreeMap<MetricId, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<AtomicI64>>>,
    hists: Mutex<BTreeMap<MetricId, Arc<Mutex<Histogram>>>>,
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    events: AtomicU64,
}

/// A cloneable observability handle (see the module docs).
#[derive(Clone)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Obs {
    /// An enabled registry timed by the given clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                sink: Mutex::new(None),
                events: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled registry timed by a fresh [`WallClock`].
    pub fn wall() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A no-op handle: every operation does nothing and costs (almost)
    /// nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the registry clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Attaches (or replaces) the JSONL event sink.
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        if let Some(i) = &self.inner {
            *i.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
        }
    }

    /// The named counter (created on first use). Cache the returned
    /// handle on hot paths.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            let mut map = i.counters.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(metric_id(name, labels)).or_default())
        }))
    }

    /// The named gauge (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            let mut map = i.gauges.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(metric_id(name, labels)).or_default())
        }))
    }

    /// The named histogram (created on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Hist {
        Hist(self.inner.as_ref().map(|i| {
            let mut map = i.hists.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(metric_id(name, labels)).or_default())
        }))
    }

    /// Opens an RAII timing span: on drop, the elapsed clock time lands
    /// in the named histogram. The [`span!`](crate::span) macro is sugar
    /// for this.
    pub fn span(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        Span {
            hist: self.histogram(name, labels),
            clock: self.inner.as_ref().map(|i| Arc::clone(&i.clock)),
            start: self.now_ns(),
        }
    }

    /// Emits one structured event to the sink (if any) with the current
    /// clock time as `ts`. Events must be emitted from deterministic
    /// contexts when reproducible logs matter — see the crate docs.
    pub fn event(&self, kind: &str, fields: &[(&str, Value)]) {
        let Some(i) = &self.inner else { return };
        i.events.fetch_add(1, Ordering::Relaxed);
        let sink = i.sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(sink) = sink {
            sink.emit(&render_event(i.clock.now_ns(), kind, fields));
        }
    }

    /// Events emitted since construction (counted even without a sink).
    pub fn events_emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.events.load(Ordering::Relaxed))
    }

    /// Snapshots of every registered histogram, sorted by metric id.
    pub fn histogram_snapshots(&self) -> Vec<HistogramRow> {
        let Some(i) = &self.inner else { return Vec::new() };
        let map = i.hists.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|((name, labels), h)| {
                let snap = h.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
                (name.clone(), labels.clone(), snap)
            })
            .collect()
    }

    /// Renders every registered metric in Prometheus text-exposition
    /// format (empty string when disabled). Output order is
    /// deterministic: counters, gauges, then histograms, each sorted by
    /// name and labels.
    pub fn expose(&self) -> String {
        let Some(i) = &self.inner else { return String::new() };
        let mut out = String::new();
        let mut last_name = String::new();
        {
            let map = i.counters.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), v) in map.iter() {
                if *name != last_name {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    last_name.clone_from(name);
                }
                let ls = render_labels(labels);
                let braced = if ls.is_empty() { String::new() } else { format!("{{{ls}}}") };
                let _ = writeln!(out, "{name}{braced} {}", v.load(Ordering::Relaxed));
            }
        }
        last_name.clear();
        {
            let map = i.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), v) in map.iter() {
                if *name != last_name {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    last_name.clone_from(name);
                }
                let ls = render_labels(labels);
                let braced = if ls.is_empty() { String::new() } else { format!("{{{ls}}}") };
                let _ = writeln!(out, "{name}{braced} {}", v.load(Ordering::Relaxed));
            }
        }
        {
            let map = i.hists.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), h) in map.iter() {
                let snap = h.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
                snap.expose_into(name, &render_labels(labels), &mut out);
            }
        }
        out
    }
}

/// Handle to a registered counter (no-op when obs is disabled).
#[derive(Clone, Debug)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Handle to a registered gauge (no-op when obs is disabled).
#[derive(Clone, Debug)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Moves the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Handle to a registered histogram (no-op when obs is disabled).
#[derive(Clone, Debug)]
pub struct Hist(Option<Arc<Mutex<Histogram>>>);

impl Hist {
    /// Records one value.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap_or_else(|e| e.into_inner()).record(v);
        }
    }

    /// A snapshot of the histogram (`None` when disabled).
    pub fn snapshot(&self) -> Option<HistogramSnapshot> {
        self.0.as_ref().map(|h| h.lock().unwrap_or_else(|e| e.into_inner()).snapshot())
    }
}

/// RAII timing guard: records elapsed clock time into its histogram on
/// drop (or explicitly via [`Span::finish`]).
pub struct Span {
    hist: Hist,
    clock: Option<Arc<dyn Clock>>,
    start: u64,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("start", &self.start).finish()
    }
}

impl Span {
    /// Ends the span now, recording the elapsed time.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(clock) = &self.clock {
            self.hist.record(clock.now_ns().saturating_sub(self.start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;
    use crate::event::MemorySink;

    #[test]
    fn disabled_obs_is_a_no_op() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        obs.gauge("g", &[]).set(5);
        obs.histogram("h", &[]).record(1);
        assert!(obs.histogram("h", &[]).snapshot().is_none());
        obs.event("e", &[]);
        assert_eq!(obs.events_emitted(), 0);
        assert_eq!(obs.expose(), "");
        drop(obs.span("s", &[]));
    }

    #[test]
    fn counters_and_gauges_share_state_by_id() {
        let obs = Obs::wall();
        obs.counter("hits", &[("shard", "0")]).add(2);
        obs.counter("hits", &[("shard", "0")]).inc();
        obs.counter("hits", &[("shard", "1")]).inc();
        assert_eq!(obs.counter("hits", &[("shard", "0")]).get(), 3);
        assert_eq!(obs.counter("hits", &[("shard", "1")]).get(), 1);
        let g = obs.gauge("depth", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(obs.gauge("depth", &[]).get(), 5);
    }

    #[test]
    fn label_order_does_not_split_metrics() {
        let obs = Obs::wall();
        obs.counter("c", &[("a", "1"), ("b", "2")]).inc();
        obs.counter("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(obs.counter("c", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    fn spans_record_tick_clock_durations() {
        let clock = Arc::new(TickClock::new());
        let obs = Obs::with_clock(clock.clone());
        {
            let _s = obs.span("stage_ns", &[("stage", "extract")]);
            clock.advance(120);
        }
        {
            let s = obs.span("stage_ns", &[("stage", "extract")]);
            clock.advance(3);
            s.finish();
        }
        let snap = obs.histogram("stage_ns", &[("stage", "extract")]).snapshot().unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 123);
        assert_eq!(snap.max, 120);
    }

    #[test]
    fn events_flow_to_the_sink_with_clock_time() {
        let clock = Arc::new(TickClock::new());
        let obs = Obs::with_clock(clock.clone());
        let sink = Arc::new(MemorySink::new());
        obs.set_sink(sink.clone());
        clock.set(42);
        obs.event("swap", &[("round", Value::from(1u64))]);
        assert_eq!(sink.lines(), vec![r#"{"ts":42,"kind":"swap","round":1}"#]);
        assert_eq!(obs.events_emitted(), 1);
    }

    #[test]
    fn exposition_is_deterministic_and_typed() {
        let obs = Obs::wall();
        obs.counter("b_total", &[]).inc();
        obs.counter("a_total", &[("x", "1")]).add(4);
        obs.gauge("depth", &[]).set(-3);
        obs.histogram("lat", &[]).record(5);
        let text = obs.expose();
        assert_eq!(text, obs.expose(), "stable across calls");
        let a = text.find("a_total{x=\"1\"} 4").unwrap();
        let b = text.find("b_total 1").unwrap();
        assert!(a < b, "sorted by name");
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -3"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"5\"} 1"));
        assert!(text.contains("lat_count 1"));
    }

    #[test]
    fn exposition_is_independent_of_insertion_order() {
        // Two registries built in opposite orders must expose byte-identical
        // text — the Prometheus page is a replay artifact, so map iteration
        // order can never leak into it.
        let fwd = Obs::wall();
        fwd.counter("a_total", &[("x", "1")]).add(4);
        fwd.counter("b_total", &[]).inc();
        fwd.gauge("depth", &[]).set(-3);
        fwd.histogram("lat", &[]).record(5);
        let rev = Obs::wall();
        rev.histogram("lat", &[]).record(5);
        rev.gauge("depth", &[]).set(-3);
        rev.counter("b_total", &[]).inc();
        rev.counter("a_total", &[("x", "1")]).add(4);
        assert_eq!(fwd.expose(), rev.expose(), "exposition must not depend on insertion order");
    }

    #[test]
    fn clones_share_the_registry() {
        let obs = Obs::wall();
        let c = obs.clone().counter("shared", &[]);
        c.inc();
        assert_eq!(obs.counter("shared", &[]).get(), 1);
    }
}
