//! An optional process-wide [`Obs`] handle.
//!
//! Deep call sites — model fits inside the ML substrate, feature
//! extraction inside experiment drivers — cannot reasonably thread an
//! [`Obs`] through every signature. They record through [`global`],
//! which is a cheap clone of whatever handle the application installed
//! with [`set_global`] (a disabled no-op handle until then). Harnesses
//! that want per-run isolation install a fresh registry at startup and
//! [`clear_global`] when done.

use crate::registry::Obs;
use std::sync::RwLock;

static GLOBAL: RwLock<Option<Obs>> = RwLock::new(None);

/// Installs `obs` as the process-wide handle (replacing any previous).
pub fn set_global(obs: Obs) {
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(obs);
}

/// Removes the process-wide handle; [`global`] returns a disabled
/// handle again.
pub fn clear_global() {
    *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// The process-wide handle ([`Obs::disabled`] when none is installed).
pub fn global() -> Obs {
    GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_disabled_and_round_trips() {
        // Single test touching the global: no cross-test interference.
        assert!(!global().is_enabled());
        let obs = Obs::wall();
        set_global(obs.clone());
        global().counter("via_global", &[]).inc();
        assert_eq!(obs.counter("via_global", &[]).get(), 1);
        clear_global();
        assert!(!global().is_enabled());
    }
}
