// alba-lint: allow-file(no-ambient-time) reason="the one sanctioned wall-clock seam; everything else must inject a Clock"
//! The injectable time source behind spans and event timestamps.
//!
//! Production uses [`WallClock`] (monotonic nanoseconds since the clock
//! was created). Tests and deterministic replays use [`TickClock`],
//! which only moves when explicitly advanced — so span durations and
//! event timestamps are bit-identical across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed on this clock (monotonic, starts near 0).
    fn now_ns(&self) -> u64;
}

/// Real time: monotonic nanoseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored at "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic tests and replays.
///
/// Reads return the last value stored with [`TickClock::set`] /
/// [`TickClock::advance`]; time never moves on its own.
#[derive(Debug, Default)]
pub struct TickClock {
    now: AtomicU64,
}

impl TickClock {
    /// A tick clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jumps the clock to `ns`.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for TickClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_only_moves_when_told() {
        let c = TickClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0, "time does not pass on its own");
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ns(), 12);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }
}
