//! # alba-bench
//!
//! Benchmarks and reproduction harness for the ALBADross workspace. The
//! crate's substance lives in its binaries and benches:
//!
//! * `repro` — regenerates every table and figure of the paper
//!   (`cargo run --release -p alba-bench --bin repro -- --help`),
//! * `diag` — the simulator-calibration report,
//! * `benches/substrate.rs` — micro-benchmarks of every pipeline stage,
//! * `benches/experiments.rs` — one Criterion benchmark per paper artifact.

#![warn(missing_docs)]
