//! `repro` — regenerates every table and figure of the ALBADross paper.
//!
//! ```text
//! repro --exp <id>[,<id>...] [--scale smoke|default|full] [--seed N] [--out DIR]
//!
//! ids: tables-setup  Tables I–III (experimental setup)
//!      table4        Table IV (hyperparameter grid search, both systems)
//!      table5        Table V (summary of diagnosis results)
//!      fig3          Fig. 3 (Volta query curves)
//!      fig4          Fig. 4 (Volta query drill-down)
//!      fig5          Fig. 5 (Eclipse query curves)
//!      fig6          Fig. 6 (previously unseen applications)
//!      fig7          Fig. 7 (robustness motivation)
//!      fig8          Fig. 8 (previously unseen inputs)
//!      ablations     extensions beyond the paper (strategy x model matrix,
//!                    extractor 2x2, chi-square k sweep, intensity sensitivity,
//!                    batch-mode querying)
//!      all           everything above
//! ```
//!
//! Text renderings go to stdout; machine-readable JSON is written to
//! `--out` (default `results/`).
//!
//! `repro --chaos [--seed N]` runs the fault-injection drill instead: a
//! 52-node Volta fleet under a seeded [`alba_chaos::FaultPlan`], with
//! the event log, the plan and the injection/recovery counters written
//! to `--out`. Equal seeds produce byte-identical event logs;
//! `--chaos-plan FILE` replays a previously saved plan exactly.
//!
//! `repro --grid FILE [--grid-workers N] [--store DIR]` runs a
//! declarative [`alba_grid::GridSpec`] instead: the spec expands into
//! content-addressed cells, fans out over `N` workers (any count yields
//! byte-identical output), memoises completed cells in the `--store`
//! (so a killed sweep resumes without recomputation), and writes
//! `grid_<name>.json` plus a markdown leaderboard and a causal trace
//! log to `--out`. The fig3/fig5 experiment ids themselves run through
//! this grid runner (from `specs/fig3.json` / `specs/fig5.json`), so
//! figure replays share the memo store and its resume semantics.
//!
//! The whole run is observed through [`alba_obs`]: a wall-clock registry
//! is installed globally, each experiment runs under an
//! `experiment_ns{exp=...}` span, the pipeline stages record their own
//! histograms (`exp_stage_ns`, `al_*_ns`, `model_*_ns`), and the
//! collected timings are written to `stage_timings_<scale>.json`.

use albadross::experiments::{
    self, run_robustness, run_table4, run_unseen_apps, run_unseen_inputs, DrilldownResult,
    RobustnessConfig, Table4Config, UnseenAppsConfig, UnseenInputsConfig,
};
use albadross::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args {
    exps: Vec<String>,
    scale_name: String,
    seed: u64,
    out: PathBuf,
    store: Option<PathBuf>,
    chaos: bool,
    chaos_plan: Option<PathBuf>,
    grid: Option<PathBuf>,
    grid_workers: usize,
    scale_set: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut exps = vec!["all".to_string()];
    let mut scale_name = "default".to_string();
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut store = None;
    let mut chaos = false;
    let mut chaos_plan = None;
    let mut grid = None;
    let mut grid_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut scale_set = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--chaos" => {
                chaos = true;
            }
            "--chaos-plan" => {
                i += 1;
                chaos = true;
                chaos_plan = Some(PathBuf::from(&argv[i]));
            }
            "--grid" => {
                i += 1;
                grid = Some(PathBuf::from(&argv[i]));
            }
            "--grid-workers" => {
                i += 1;
                grid_workers = argv[i].parse().expect("worker count must be an integer");
            }
            "--exp" => {
                i += 1;
                exps = argv[i].split(',').map(str::to_string).collect();
            }
            "--scale" => {
                i += 1;
                scale_name = argv[i].clone();
                scale_set = true;
            }
            "--seed" => {
                i += 1;
                seed = argv[i].parse().expect("seed must be an integer");
                scale_set = true;
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&argv[i]);
            }
            "--store" => {
                i += 1;
                store = Some(PathBuf::from(&argv[i]));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp id,id,...] [--scale smoke|default|full] \
                     [--seed N] [--out DIR] [--store DIR]\nids: tables-setup table4 table5 \
                     fig3 fig4 fig5 fig6 fig7 fig8 ablations all\n--store DIR memoises \
                     campaigns, feature matrices and grid cells in an on-disk telemetry \
                     store (equivalent to setting ALBA_STORE_DIR) and reports cache \
                     statistics.\n\
                     --chaos runs the fault-injection drill (seeded 52-node fleet under a \
                     FaultPlan; event log, plan and counters land in --out).\n\
                     --chaos-plan FILE replays a FaultPlan saved by a previous --chaos run.\n\
                     --grid FILE runs a declarative experiment grid spec; \
                     --grid-workers N sizes its worker pool (any N is byte-identical)."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { exps, scale_name, seed, out, store, chaos, chaos_plan, grid, grid_workers, scale_set }
}

/// The `--chaos` drill: a 52-node Volta fleet runs under a seeded
/// fault plan with every structured event streamed to a JSONL file.
/// Writes `chaos_events_<seed>.jsonl`, `chaos_plan_<seed>.json`
/// (replayable via `--chaos-plan`) and `chaos_stats_<seed>.json`, and
/// exits non-zero if injection or recovery counters stayed at zero.
fn run_chaos_drill(args: &Args) {
    use alba_obs::{FileSink, Obs, TickClock};
    use alba_serve::{FleetService, ServeConfig};
    use std::sync::Arc;

    let mut cfg = ServeConfig::new(System::Volta, alba_telemetry::Scale::Smoke, 52, args.seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor =
        albadross::MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg.store_dir = args.store.as_ref().map(|d| d.display().to_string());
    cfg.chaos = Some(alba_chaos::ChaosConfig::default());

    // A tick clock (not wall time) stamps events, so equal seeds yield
    // byte-identical logs.
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    std::fs::create_dir_all(&args.out).expect("create output directory");
    let events_path = args.out.join(format!("chaos_events_{}.jsonl", args.seed));
    obs.set_sink(Arc::new(FileSink::create(&events_path).expect("create event log")));

    let mut svc = match &args.chaos_plan {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read fault plan {}: {e}", path.display()));
            let plan = alba_chaos::FaultPlan::from_json(&json)
                .unwrap_or_else(|e| panic!("parse fault plan {}: {e}", path.display()));
            println!("# chaos drill — replaying {} ({} events)\n", path.display(), plan.len());
            FleetService::with_chaos_plan(cfg, plan, obs.clone())
        }
        None => {
            println!("# chaos drill — seed={} (52-node Volta fleet)\n", args.seed);
            FleetService::with_obs(cfg, obs.clone())
        }
    };
    let plan = svc.chaos_plan().expect("chaotic service carries a plan").clone();
    let plan_path = args.out.join(format!("chaos_plan_{}.json", args.seed));
    std::fs::write(&plan_path, plan.to_json().expect("serialise plan")).expect("write plan");
    println!("[saved {}]", plan_path.display());

    let t = Instant::now();
    let stats = svc.run_to_completion();
    let chaos = stats.chaos.clone().expect("chaotic run exports chaos stats");
    save_json(&args.out, &format!("chaos_stats_{}", args.seed), &stats);
    println!("[saved {}]", events_path.display());

    println!("\n== chaos drill ==");
    println!(
        "ticks={} windows={} alarms={} swaps={:?}",
        stats.ticks, stats.windows, stats.alarms, stats.swap_ticks
    );
    println!(
        "faults: started={} injected={} (blackout={} burst={} stuck={} garbage={} skew={} storm_dup={})",
        chaos.faults_started,
        chaos.total_injected(),
        chaos.injected.blackout_drops,
        chaos.injected.burst_drops,
        chaos.injected.stuck_readings,
        chaos.injected.garbage_readings,
        chaos.injected.skewed_samples,
        chaos.injected.storm_duplicates,
    );
    println!(
        "recovery: total={} shard_restarts={} quarantines={}→{} oracle_timeouts={} oracle_recoveries={} journal_recoveries={} backoff_waits={} ({} simulated ns)",
        chaos.total_recoveries(),
        chaos.shard_restarts,
        chaos.quarantines_entered,
        chaos.quarantines_released,
        chaos.oracle_timeouts,
        chaos.oracle_recoveries,
        chaos.journal_recoveries,
        chaos.backoff_waits,
        chaos.backoff_ns,
    );
    println!(
        "errors: unroutable={} malformed={} oracle_misses={} journal_reopens={} journal_failures={}",
        stats.errors.unroutable_samples,
        stats.errors.malformed_samples,
        stats.errors.oracle_misses,
        stats.errors.journal_reopens,
        stats.errors.journal_failures,
    );
    println!("# done in {:?}", t.elapsed());

    if chaos.total_injected() == 0 {
        eprintln!("chaos drill injected nothing — plan or injector is broken");
        std::process::exit(3);
    }
    if chaos.total_recoveries() == 0 {
        eprintln!("chaos drill recovered nothing — self-healing is broken");
        std::process::exit(4);
    }
}

/// Resolves a committed spec file: the repo's `specs/` when run from
/// the repository root, falling back to the path anchored at this
/// crate's manifest (cargo may run the binary from elsewhere).
fn spec_path(name: &str) -> PathBuf {
    let local = Path::new("specs").join(name);
    if local.exists() {
        return local;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs").join(name)
}

/// Opens the cell memo store when `--store` was given. Campaign /
/// feature memoisation goes through the `ALBA_STORE_DIR` env var
/// (already set by `main`); grid cells take the handle directly.
fn open_cell_store(args: &Args) -> Option<alba_store::TelemetryStore> {
    args.store.as_ref().map(|dir| {
        alba_store::TelemetryStore::open(dir)
            .unwrap_or_else(|e| panic!("open store {}: {e}", dir.display()))
    })
}

/// Saves raw pre-rendered text (the grid report JSON must be written
/// byte-exactly — re-serialising would be redundant, not wrong, but
/// this keeps "bytes on disk" and "bytes compared in tests" one thing).
fn save_text(dir: &Path, file: &str, text: &str) {
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(file);
    std::fs::write(&path, text).expect("write result file");
    println!("[saved {}]", path.display());
}

/// Runs one grid spec through [`alba_grid::run_grid`] and writes its
/// artifacts. Shared by `--grid FILE` mode and the fig3/fig5 drivers.
fn run_grid_spec(
    spec: &alba_grid::GridSpec,
    args: &Args,
    obs: &alba_obs::Obs,
    tracer: alba_trace::Tracer,
) -> alba_grid::GridOutcome {
    let opts = alba_grid::RunOptions {
        workers: args.grid_workers,
        store: open_cell_store(args),
        obs: obs.clone(),
        tracer,
    };
    let t = Instant::now();
    let outcome = alba_grid::run_grid(spec, &opts)
        .unwrap_or_else(|e| panic!("grid {} failed: {e}", spec.name));
    println!(
        "[grid {}: {} cells, {} memoised, {} computed in {:?}]",
        outcome.name,
        outcome.stats.cells,
        outcome.stats.memo_hits,
        outcome.stats.computed,
        t.elapsed()
    );
    save_text(&args.out, &format!("grid_{}.json", outcome.name), &outcome.json);
    save_text(&args.out, &format!("grid_{}_leaderboard.md", outcome.name), &outcome.leaderboard_md);
    outcome
}

/// The `--grid FILE` mode: parse, run, rank. `--scale`/`--seed` (when
/// given explicitly) override a figure spec's committed sizing.
fn run_grid_file(args: &Args, file: &Path) {
    use std::sync::Arc;
    let src = std::fs::read_to_string(file)
        .unwrap_or_else(|e| panic!("read grid spec {}: {e}", file.display()));
    let override_scale = if args.scale_set {
        Some(
            RunScale::parse(&args.scale_name, args.seed)
                .unwrap_or_else(|| panic!("unknown scale {:?}", args.scale_name)),
        )
    } else {
        None
    };
    let spec = alba_grid::GridSpec::parse(&src, override_scale.as_ref())
        .unwrap_or_else(|e| panic!("grid spec {}: {e}", file.display()));
    println!("# grid {} — mode={} workers={}\n", spec.name, spec.mode_name(), args.grid_workers);

    let obs = alba_obs::Obs::wall();
    alba_obs::set_global(obs.clone());
    // Cells hop on shard lanes, the merge on the service lane; a tick
    // clock keeps the trace log byte-identical across equal runs.
    let tracer =
        Arc::new(alba_trace::Tracer::new(args.seed, Arc::new(alba_obs::TickClock::new()), 256));
    std::fs::create_dir_all(&args.out).expect("create output directory");
    let trace_path = args.out.join(format!("grid_{}_trace.jsonl", spec.name));
    tracer.set_sink(Arc::new(
        alba_obs::FileSink::create(&trace_path).expect("create grid trace log"),
    ));

    let outcome = run_grid_spec(&spec, args, &obs, (*tracer).clone());
    println!("[saved {}]", trace_path.display());
    println!("\n== leaderboard ==\n{}", outcome.leaderboard_md);
    if let Some(dir) = &args.store {
        let stats = store_stats(&obs, dir);
        save_json(&args.out, &format!("store_stats_grid_{}", outcome.name), &stats);
    }
    alba_obs::clear_global();
}

/// Per-entry-kind cache statistics pulled from the obs registry after a
/// store-backed run.
#[derive(serde::Serialize)]
struct StoreKindStats {
    kind: String,
    cache_hits: u64,
    cache_misses: u64,
    corrupt_entries: u64,
    samples_written: u64,
    samples_read: u64,
}

/// The `store_stats_<scale>.json` payload: one row per entry kind plus
/// journal totals.
#[derive(serde::Serialize)]
struct StoreStats {
    dir: String,
    kinds: Vec<StoreKindStats>,
    journal_appends: u64,
    journal_replayed: u64,
}

fn store_stats(obs: &alba_obs::Obs, dir: &Path) -> StoreStats {
    let kinds = ["campaign", "features", "fleet", "cell"]
        .iter()
        .map(|kind| {
            let c = |name: &str| obs.counter(name, &[("kind", kind)]).get();
            StoreKindStats {
                kind: kind.to_string(),
                cache_hits: c("store_cache_hits_total"),
                cache_misses: c("store_cache_misses_total"),
                corrupt_entries: c("store_corrupt_entries_total"),
                samples_written: c("store_samples_written_total"),
                samples_read: c("store_samples_read_total"),
            }
        })
        .collect();
    StoreStats {
        dir: dir.display().to_string(),
        kinds,
        journal_appends: obs.counter("store_journal_appends_total", &[]).get(),
        journal_replayed: obs.counter("store_journal_replayed_total", &[]).get(),
    }
}

fn save_svgs(dir: &Path, stem: &str, curves: &[alba_active::MethodCurves]) {
    std::fs::create_dir_all(dir).expect("create output directory");
    for (name, svg) in albadross::figure_panels(stem, curves) {
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, svg).expect("write SVG");
        println!("[saved {}]", path.display());
    }
}

fn save_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialise result");
    std::fs::write(&path, json).expect("write result file");
    println!("[saved {}]", path.display());
}

/// One row of the stage-timings report: a histogram collected during the
/// run, flattened to the quantiles operators care about.
#[derive(serde::Serialize)]
struct TimingEntry {
    metric: String,
    labels: Vec<(String, String)>,
    count: u64,
    total_ms: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// Flattens every histogram in the registry into [`TimingEntry`] rows
/// (sorted by metric name, then labels — the registry iterates a BTreeMap,
/// so the order is already deterministic).
fn stage_timings(obs: &alba_obs::Obs) -> Vec<TimingEntry> {
    let ms = |ns: u64| ns as f64 / 1e6;
    obs.histogram_snapshots()
        .into_iter()
        .map(|(metric, labels, snap)| TimingEntry {
            metric,
            labels,
            count: snap.count,
            total_ms: ms(snap.sum),
            mean_ms: snap.mean() / 1e6,
            p50_ms: ms(snap.quantile(0.5).unwrap_or(0)),
            p99_ms: ms(snap.quantile(0.99).unwrap_or(0)),
            max_ms: ms(snap.max),
        })
        .collect()
}

fn main() {
    let args = parse_args();
    if args.chaos {
        run_chaos_drill(&args);
        return;
    }
    if let Some(file) = args.grid.clone() {
        if let Some(dir) = &args.store {
            std::env::set_var(albadross::STORE_DIR_ENV, dir);
        }
        run_grid_file(&args, &file);
        return;
    }
    let scale = RunScale::parse(&args.scale_name, args.seed)
        .unwrap_or_else(|| panic!("unknown scale {:?}", args.scale_name));
    let wants =
        |id: &str| args.exps.iter().any(|e| e == id) || args.exps.iter().any(|e| e == "all");
    println!("# ALBADross reproduction harness — scale={} seed={}\n", args.scale_name, args.seed);
    let t_total = Instant::now();

    // A --store directory routes dataset generation through the on-disk
    // telemetry store (the env var is what the pipeline consults, so the
    // flag and ALBA_STORE_DIR are interchangeable).
    if let Some(dir) = &args.store {
        std::env::set_var(albadross::STORE_DIR_ENV, dir);
    }

    // Observe the whole run: stage spans deep in the pipeline record into
    // this registry, and the harness wraps each experiment in its own span.
    let obs = alba_obs::Obs::wall();
    alba_obs::set_global(obs.clone());
    let experiment = |exp: &str| obs.span("experiment_ns", &[("exp", exp)]);

    if wants("tables-setup") {
        println!("{}", experiments::render_setup_tables());
    }

    // Fig. 3 / Fig. 5 replay through the grid runner: the committed
    // specs expand to exactly the jobs `run_curves` would run (same
    // order, same seeds), so the reconstructed curves are byte-identical
    // to the monolithic driver's — with memoisation and resume for free.
    let run_figure = |spec_file: &str| {
        let path = spec_path(spec_file);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read grid spec {}: {e}", path.display()));
        let spec = alba_grid::GridSpec::parse(&src, Some(&scale))
            .unwrap_or_else(|e| panic!("grid spec {}: {e}", path.display()));
        let outcome = run_grid_spec(&spec, &args, &obs, alba_trace::Tracer::disabled());
        outcome.curves.unwrap_or_else(|| panic!("figure spec {spec_file} yields curves"))
    };

    // Keep the Fig.3 curves around: Fig. 4 and Table V reuse them.
    let mut fig3_curves = None;
    if wants("fig3") || wants("fig4") || wants("table5") {
        let _span = experiment("fig3");
        let t = Instant::now();
        let res = run_figure("fig3.json");
        println!("{}\n[fig3 in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("fig3_{}", args.scale_name), &res.curves);
        save_svgs(&args.out, &format!("fig3_{}", args.scale_name), &res.curves);
        fig3_curves = Some(res);
    }

    if wants("fig4") {
        let res = fig3_curves.as_ref().expect("fig3 ran above");
        let first_n = 50.min(scale.budget);
        let d = DrilldownResult::from_curves(res, "uncertainty", first_n);
        println!("{}", d.render());
        save_json(&args.out, &format!("fig4_{}", args.scale_name), &d);
    }

    let mut fig5_curves = None;
    if wants("fig5") || wants("table5") {
        let _span = experiment("fig5");
        let t = Instant::now();
        let res = run_figure("fig5.json");
        println!("{}\n[fig5 in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("fig5_{}", args.scale_name), &res.curves);
        save_svgs(&args.out, &format!("fig5_{}", args.scale_name), &res.curves);
        fig5_curves = Some(res);
    }

    if wants("table5") {
        let _span = experiment("table5");
        let t = Instant::now();
        let rows = vec![
            experiments::table5_row(fig3_curves.as_ref().expect("fig3 ran"), &scale),
            experiments::table5_row(fig5_curves.as_ref().expect("fig5 ran"), &scale),
        ];
        let table = experiments::Table5 { rows };
        println!(
            "== Table V-style summary ==\n{}\n[table5 in {:?}]\n",
            table.render(),
            t.elapsed()
        );
        save_json(&args.out, &format!("table5_{}", args.scale_name), &table);
    }

    if wants("fig6") {
        let _span = experiment("fig6");
        let t = Instant::now();
        let res = run_unseen_apps(&UnseenAppsConfig::paper(scale.clone()));
        println!("{}\n[fig6 in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("fig6_{}", args.scale_name), &res);
    }

    if wants("fig7") {
        let _span = experiment("fig7");
        let t = Instant::now();
        let res = run_robustness(&RobustnessConfig::paper(scale.clone()));
        println!("{}\n[fig7 in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("fig7_{}", args.scale_name), &res);
    }

    if wants("fig8") {
        let _span = experiment("fig8");
        let t = Instant::now();
        let res = run_unseen_inputs(&UnseenInputsConfig::paper(scale.clone()));
        println!("{}\n[fig8 in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("fig8_{}", args.scale_name), &res);
    }

    if wants("ablations") {
        let _span = experiment("ablations");
        let t = Instant::now();
        let res = experiments::run_ablations(&scale);
        println!("{}\n[ablations in {:?}]\n", res.render(), t.elapsed());
        save_json(&args.out, &format!("ablations_{}", args.scale_name), &res);
    }

    if wants("table4") {
        let _span = experiment("table4");
        for system in [System::Volta, System::Eclipse] {
            let t = Instant::now();
            let res = run_table4(&Table4Config::paper(system, scale.clone()));
            println!("{}\n[table4/{} in {:?}]\n", res.render(), system.name(), t.elapsed());
            save_json(
                &args.out,
                &format!("table4_{}_{}", system.name().to_lowercase(), args.scale_name),
                &res,
            );
        }
    }

    // Report what the store did for (or against) us this run.
    if let Some(dir) = &args.store {
        let stats = store_stats(&obs, dir);
        save_json(&args.out, &format!("store_stats_{}", args.scale_name), &stats);
        println!("\n== store cache ==");
        for k in &stats.kinds {
            println!(
                "{:<10} hits={} misses={} corrupt={} written={} read={}",
                k.kind,
                k.cache_hits,
                k.cache_misses,
                k.corrupt_entries,
                k.samples_written,
                k.samples_read
            );
        }
    }

    // Dump the stage timings the pipeline recorded along the way.
    let timings = stage_timings(&obs);
    save_json(&args.out, &format!("stage_timings_{}", args.scale_name), &timings);
    println!("\n== stage timings (total / count) ==");
    for t in timings.iter().filter(|t| t.metric == "experiment_ns" || t.metric == "exp_stage_ns") {
        let labels: Vec<String> = t.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("{:<16} {:<24} {:>10.1} ms / {}", t.metric, labels.join(","), t.total_ms, t.count);
    }
    alba_obs::clear_global();

    println!("# done in {:?}", t_total.elapsed());
}
