//! Renders saved curve artifacts (`results/figN_<scale>.json`, as written
//! by `repro`) into the paper-style SVG panels without re-running the
//! experiment.
//!
//! ```text
//! render_svg results/fig3_default.json [more.json ...]
//! ```

use alba_active::MethodCurves;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: render_svg <curves.json> [...]");
        std::process::exit(2);
    }
    for arg in &args {
        let path = Path::new(arg);
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {arg}: {e}"));
        let curves: Vec<MethodCurves> = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{arg} is not a curves artifact: {e}"));
        let stem = path.file_stem().and_then(|s| s.to_str()).expect("file has a stem").to_string();
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        for (name, svg) in albadross::figure_panels(&stem, &curves) {
            let out = dir.join(format!("{name}.svg"));
            std::fs::write(&out, svg).expect("write SVG");
            println!("wrote {}", out.display());
        }
    }
}
