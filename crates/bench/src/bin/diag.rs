//! Developer diagnostic: class-separability report for the simulated
//! campaigns. Prints per-class F1, the confusion matrix and per-intensity
//! recall so simulator signal levels can be calibrated against the paper's
//! observed behaviour.

use alba_ml::{Classifier, ConfusionMatrix, ModelFamily, ModelSpec};
use albadross::prelude::*;
use albadross::{prepare_split, SplitConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system = if args.iter().any(|a| a == "eclipse") { System::Eclipse } else { System::Volta };
    let scale = if args.iter().any(|a| a == "default") { Scale::Default } else { Scale::Smoke };
    let method = if args.iter().any(|a| a == "tsfresh") {
        FeatureMethod::TsFresh
    } else {
        FeatureMethod::Mvts
    };
    let t0 = std::time::Instant::now();
    let data = SystemData::generate(system, method, scale, 7);
    println!(
        "system={} method={} scale={scale:?} samples={} features={} gen_time={:?}",
        system.name(),
        method.name(),
        data.dataset.len(),
        data.dataset.x.cols(),
        t0.elapsed()
    );
    println!("class counts: {:?}", data.dataset.class_counts());

    let split =
        prepare_split(&data.dataset, &SplitConfig { train_fraction: 0.6, top_k_features: 1200 }, 1);
    let spec = ModelSpec::tuned(ModelFamily::Rf, system == System::Volta);
    let t1 = std::time::Instant::now();
    let mut model = spec.build();
    model.fit(&split.train.x, &split.train.y, split.train.n_classes());
    println!("fit({} samples) in {:?}", split.train.len(), t1.elapsed());
    // Capacity check: training accuracy + alternative models.
    let train_pred = model.predict(&split.train.x);
    let train_cm = ConfusionMatrix::from_predictions(&split.train.y, &train_pred, 6);
    println!("tuned RF train macro F1={:.3}", train_cm.macro_f1());
    {
        use alba_ml::{Criterion, DecisionTree, MaxFeatures, TreeParams};
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit(&split.train.x, &split.train.y, 6);
        let p = tree.predict(&split.test.x);
        let cm = ConfusionMatrix::from_predictions(&split.test.y, &p, 6);
        println!(
            "single full tree: test macro F1={:.3} miss={:.3}",
            cm.macro_f1(),
            cm.anomaly_miss_rate(0)
        );
        let mut big = alba_ml::RandomForest::new(alba_ml::ForestParams {
            n_estimators: 100,
            max_depth: None,
            criterion: Criterion::Gini,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            seed: 1,
        });
        big.fit(&split.train.x, &split.train.y, 6);
        let p = big.predict(&split.test.x);
        let cm = ConfusionMatrix::from_predictions(&split.test.y, &p, 6);
        println!(
            "RF100 unlimited: test macro F1={:.3} miss={:.3}",
            cm.macro_f1(),
            cm.anomaly_miss_rate(0)
        );
    }
    let pred = model.predict(&split.test.x);
    let cm = ConfusionMatrix::from_predictions(&split.test.y, &pred, 6);
    println!(
        "macro F1={:.3} FAR={:.3} MISS={:.3}",
        cm.macro_f1(),
        cm.false_alarm_rate(0),
        cm.anomaly_miss_rate(0)
    );
    for c in 0..6 {
        println!(
            "  class {c} ({}): f1={:.3} precision={:.3} recall={:.3}",
            split.test.encoder.decode(c).unwrap(),
            cm.f1(c),
            cm.precision(c),
            cm.recall(c)
        );
    }
    print!("confusion:\n     ");
    for p in 0..6 {
        print!("{:>6}", split.test.encoder.decode(p).unwrap().chars().take(5).collect::<String>());
    }
    println!();
    for t in 0..6 {
        print!("{:>5}", split.test.encoder.decode(t).unwrap().chars().take(5).collect::<String>());
        for p in 0..6 {
            print!("{:>6}", cm.get(t, p));
        }
        println!();
    }
    // Per-intensity recall on anomalous test samples.
    let mut by_intensity: std::collections::BTreeMap<u32, (usize, usize)> = Default::default();
    for (p, (m, &y)) in pred.iter().zip(split.test.meta.iter().zip(&split.test.y)) {
        if y == 0 {
            continue;
        }
        let e = by_intensity.entry(m.intensity_pct).or_default();
        e.1 += 1;
        if *p == y {
            e.0 += 1;
        }
    }
    for (int, (ok, total)) in by_intensity {
        println!("intensity {int:>3}%: correctly diagnosed {ok}/{total}");
    }

    // Class-conditional means of hand-picked diagnostic features (raw,
    // pre-selection dataset) to verify the anomaly signal exists at all.
    for needle in [
        "procstat.per_core_user.0::mean",
        "perfevent.llc_misses.0::mean",
        "meminfo.mem_bw.0::mean",
        "cray_aries.cpu_freq.0::mean",
        "cray_aries.power.0::mean",
        "cray_aries.wb_counter.0::mean",
    ] {
        let Some(col) = data.dataset.feature_names.iter().position(|n| n == needle) else {
            println!("feature {needle} missing");
            continue;
        };
        let mut sums = [0.0f64; 6];
        let mut counts = [0usize; 6];
        // Split high-intensity anomalies out to see the raw effect.
        let mut hi_sums = [0.0f64; 6];
        let mut hi_counts = [0usize; 6];
        for i in 0..data.dataset.len() {
            let c = data.dataset.y[i];
            let v = data.dataset.x.get(i, col);
            sums[c] += v;
            counts[c] += 1;
            if data.dataset.meta[i].intensity_pct >= 50 || c == 0 {
                hi_sums[c] += v;
                hi_counts[c] += 1;
            }
        }
        print!("{needle:<36}");
        for c in 0..6 {
            let all = sums[c] / counts[c].max(1) as f64;
            let hi = hi_sums[c] / hi_counts[c].max(1) as f64;
            print!(" {:>5.1}/{:<5.1}", all, hi);
        }
        println!();
    }
    // Was the key feature selected by chi2?
    let selected: Vec<&String> =
        split.selected_features.iter().map(|&i| &data.dataset.feature_names[i]).collect();
    for stem in
        ["per_core_user", "llc_misses", "mem_bw", "cpu_freq", "power", "wb_counter", "Active"]
    {
        let n = selected.iter().filter(|s| s.contains(stem)).count();
        println!("chi2 kept {n} features containing {stem:?}");
    }
    // Global chi2 rank of each stem's best feature.
    {
        use alba_features::chi_square_scores;
        let scores = chi_square_scores(&data.dataset.x, &data.dataset.y, 6);
        let order = scores.top_k(data.dataset.x.cols());
        for stem in ["per_core_user", "per_core_sys", "cpu_freq", "power", "llc_misses", "pgfault"]
        {
            let rank = order.iter().position(|&c| data.dataset.feature_names[c].contains(stem));
            println!("best rank of {stem:?}: {rank:?}");
        }
    }
}
