//! Parallel shard runtime and zero-copy extraction throughput.
//!
//! Three measured regions:
//!
//! * `extract` — one unscaled model-input row from a 34-metric,
//!   60-sample window with NaN gaps, through the **materialised** path
//!   (`FeatureView::unscaled_row`: clone + full preprocess + extract
//!   every metric, then select) versus the **zero-copy** path
//!   (`FeatureView::unscaled_row_into`: per-metric sub-slice preprocess
//!   in a reusable scratch, only the metrics the [`ExtractPlan`]
//!   touches). The selected set mirrors the production Volta profile:
//!   300 features clustered on 18 of the 34 metrics, so the plan skips
//!   roughly half the catalog. The `speedup` key is the acceptance
//!   number `scripts/ci.sh` asserts ≥ 2.
//! * `serve` — a full `FleetService` replay at 1/2/4/8 pool workers,
//!   node-metric readings per wall second per core (the container CI
//!   runs on is single-core, so worker counts beyond 1 measure barrier
//!   overhead, not parallel speedup).
//! * `merge barrier` — p50/p99 of `par_epoch_ns` (dispatch → last
//!   shard joined) from a wall-clock `Obs` over the 4-worker run.
//!
//! Writes `results/BENCH_parallel.json` — the trajectory point
//! `scripts/bench_gate.sh` gates — and prints the same numbers.
//!
//! Environment knobs:
//!
//! * `ALBA_BENCH_QUICK=1` — fewer extraction repetitions, shorter
//!   replay.
//!
//! Run with: `cargo bench -p alba-bench --bench parallel_throughput`

use std::hint::black_box;
use std::time::Instant;

use alba_data::{Matrix, MetricDef, MetricKind, MultiSeries};
use alba_features::{FeatureExtractor, FeatureView, MinMaxScaler, Mvts, PreprocessConfig};
use alba_obs::Obs;
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

const WINDOW: usize = 60;
const N_METRICS: usize = 34;
const SELECTED_METRICS: usize = 18;
const TOP_K: usize = 300;

/// A Volta-shaped window: 34 metrics (gauge/counter mix), 60 samples,
/// a NaN gap stripe so the interpolation path is on the measured clock.
fn window() -> MultiSeries {
    let metrics: Vec<MetricDef> = (0..N_METRICS)
        .map(|m| MetricDef {
            name: format!("m{m}"),
            subsystem: "bench".to_string(),
            kind: if m % 4 == 0 { MetricKind::Counter } else { MetricKind::Gauge },
        })
        .collect();
    let mut s = MultiSeries::new(metrics);
    for t in 0..WINDOW {
        let row: Vec<f64> = (0..N_METRICS)
            .map(|m| {
                if t % 13 == 5 && m % 7 == 2 {
                    f64::NAN // sensor gap
                } else {
                    (t as f64 * 0.31 + m as f64).sin() * 12.0 + (m * t) as f64 * 0.01 + 50.0
                }
            })
            .collect();
        s.push_sample(&row);
    }
    s
}

/// The production selection profile: `TOP_K` features clustered on
/// `SELECTED_METRICS` of the `N_METRICS` metrics (chi-square selection
/// concentrates on the informative subsystems), spread deterministically
/// over each chosen metric's per-metric features.
fn production_view(npm: usize) -> FeatureView {
    let mut selected = Vec::with_capacity(TOP_K);
    let mut slot = 0usize;
    'outer: loop {
        for m in 0..SELECTED_METRICS {
            let metric = m * (N_METRICS / SELECTED_METRICS); // every other metric
            let f = metric * npm + (slot % npm);
            if !selected.contains(&f) {
                selected.push(f);
                if selected.len() == TOP_K {
                    break 'outer;
                }
            }
        }
        slot += 1;
    }
    selected.sort_unstable();
    let k = selected.len();
    let scaler = MinMaxScaler::fit(&Matrix::from_rows(&[vec![0.0; k], vec![1.0; k]]));
    FeatureView::new(selected, scaler)
}

struct ExtractRun {
    materialized_rows_per_sec: f64,
    zero_copy_rows_per_sec: f64,
    speedup: f64,
}

fn bench_extract(reps: usize) -> ExtractRun {
    let ex = Mvts;
    let view = production_view(ex.n_features_per_metric());
    let pre = PreprocessConfig { trim_frac: 0.0, diff_counters: true, interpolate: true };
    let w = window();

    let plan = view.plan(&ex);
    let mut scratch = alba_features::ExtractScratch::default();
    let mut out = vec![0.0; view.n_features()];

    // Warm-up + the bit-identity check the whole refactor rests on.
    let golden = view.unscaled_row(&ex, &w, &pre);
    view.unscaled_row_into(&ex, &w, &pre, &plan, &mut scratch, &mut out);
    assert_eq!(
        golden.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the measured paths must be bit-identical"
    );

    // Interleaved rounds, best rate per path: the container is a shared
    // single core, so any one timed region can absorb a scheduler
    // stall — the per-path *maximum* over alternating chunks is the
    // stable statistic (criterion's min-time idea, by hand).
    const ROUNDS: usize = 5;
    let chunk = (reps / ROUNDS).max(1);
    let mut mat: f64 = 0.0;
    let mut zc: f64 = 0.0;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..chunk {
            // Materialised: clone + full preprocess + all 34 metrics.
            black_box(view.unscaled_row(&ex, black_box(&w), &pre));
        }
        mat = mat.max(chunk as f64 / t.elapsed().as_secs_f64().max(1e-9));

        let t = Instant::now();
        for _ in 0..chunk {
            // Zero-copy: planned extraction, reusable scratch, no clone.
            view.unscaled_row_into(&ex, black_box(&w), &pre, &plan, &mut scratch, &mut out);
            black_box(&out);
        }
        zc = zc.max(chunk as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }

    ExtractRun {
        materialized_rows_per_sec: mat,
        zero_copy_rows_per_sec: zc,
        speedup: zc / mat.max(1e-9),
    }
}

struct ServeRun {
    node_metrics_per_sec: f64,
    epoch_p50_ns: u64,
    epoch_p99_ns: u64,
}

/// One full replay at `workers` pool workers against a wall clock.
fn bench_serve(workers: usize, quick: bool) -> ServeRun {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, if quick { 16 } else { 32 }, 42);
    cfg.fleet.duration_override_s = Some(if quick { 120 } else { 240 });
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.max_retrains = 0; // pure ingest + diagnosis in the measured region
    cfg.n_workers = workers;
    let obs = Obs::wall();
    let mut svc = FleetService::with_obs(cfg, obs.clone());
    let readings_per_sample =
        svc.fleet_batches().first().and_then(|b| b.first()).map_or(0, |s| s.values.len());

    let t = Instant::now();
    let stats = svc.run_to_completion();
    let elapsed = t.elapsed().as_secs_f64().max(1e-9);
    assert!(stats.windows > 0, "bench replay must diagnose windows");

    let epochs = obs.histogram("par_epoch_ns", &[]).snapshot();
    ServeRun {
        node_metrics_per_sec: stats.samples_emitted as f64 * readings_per_sample as f64 / elapsed,
        epoch_p50_ns: epochs.as_ref().and_then(|h| h.quantile(0.50)).unwrap_or(0),
        epoch_p99_ns: epochs.as_ref().and_then(|h| h.quantile(0.99)).unwrap_or(0),
    }
}

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 2_000 } else { 20_000 };

    let extract = bench_extract(reps);
    println!(
        "par/extract  materialised          {:>14.0} rows/s/core",
        extract.materialized_rows_per_sec
    );
    println!(
        "par/extract  zero-copy             {:>14.0} rows/s/core  ({:.2}x)",
        extract.zero_copy_rows_per_sec, extract.speedup
    );

    let worker_counts = [1usize, 2, 4, 8];
    let runs: Vec<ServeRun> = worker_counts.iter().map(|&w| bench_serve(w, quick)).collect();
    for (w, run) in worker_counts.iter().zip(&runs) {
        println!(
            "par/serve    w={w}                   {:>14.0} node-metrics/s/core",
            run.node_metrics_per_sec
        );
    }
    let barrier = &runs[2]; // the 4-worker run
    println!(
        "par/barrier  epoch (4 workers)     p50 {} ns, p99 {} ns",
        barrier.epoch_p50_ns, barrier.epoch_p99_ns
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel_throughput\",\n  \"quick\": {},\n  \
         \"extract_rows_per_sec_per_core_materialized\": {:.0},\n  \
         \"extract_rows_per_sec_per_core_zero_copy\": {:.0},\n  \
         \"extract_zero_copy_speedup\": {:.2},\n  \
         \"serve_node_metrics_per_sec_per_core_w1\": {:.0},\n  \
         \"serve_node_metrics_per_sec_per_core_w2\": {:.0},\n  \
         \"serve_node_metrics_per_sec_per_core_w4\": {:.0},\n  \
         \"serve_node_metrics_per_sec_per_core_w8\": {:.0},\n  \
         \"merge_barrier_p50_ns\": {},\n  \
         \"merge_barrier_p99_ns\": {}\n}}\n",
        quick,
        extract.materialized_rows_per_sec,
        extract.zero_copy_rows_per_sec,
        extract.speedup,
        runs[0].node_metrics_per_sec,
        runs[1].node_metrics_per_sec,
        runs[2].node_metrics_per_sec,
        runs[3].node_metrics_per_sec,
        barrier.epoch_p50_ns,
        barrier.epoch_p99_ns,
    );
    // `cargo bench` runs the binary with cwd = the package dir, so
    // anchor the artifact at the workspace root explicitly.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_parallel.json"), json)
        .expect("write results/BENCH_parallel.json");
    println!("par/json     wrote results/BENCH_parallel.json");
}
