//! One Criterion benchmark per paper table/figure.
//!
//! Each benchmark runs the corresponding experiment driver at smoke scale
//! (the drivers themselves are scale-parameterised; `repro --scale
//! default|full` regenerates the actual results). Benchmarking the drivers
//! end-to-end keeps the regeneration path exercised and tracks its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alba_ml::ModelFamily;
use albadross::experiments::{
    render_setup_tables, run_curves, run_robustness, run_table4, run_unseen_apps,
    run_unseen_inputs, CurvesConfig, DrilldownResult, RobustnessConfig, Table4Config,
    UnseenAppsConfig, UnseenInputsConfig,
};
use albadross::prelude::*;

fn scale() -> RunScale {
    RunScale::smoke(42)
}

fn bench_tables_setup(c: &mut Criterion) {
    c.bench_function("paper/tables_1_2_3_setup", |b| b.iter(|| black_box(render_setup_tables())));
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("paper/fig3_volta_curves", |b| {
        b.iter(|| {
            black_box(run_curves(&CurvesConfig {
                system: System::Volta,
                method: Some(FeatureMethod::Mvts),
                scale: scale(),
                include_proctor: false,
            }))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let curves = run_curves(&CurvesConfig {
        system: System::Volta,
        method: Some(FeatureMethod::Mvts),
        scale: scale(),
        include_proctor: false,
    });
    c.bench_function("paper/fig4_query_drilldown", |b| {
        b.iter(|| black_box(DrilldownResult::from_curves(&curves, "uncertainty", 10)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("paper/fig5_eclipse_curves", |b| {
        b.iter(|| {
            black_box(run_curves(&CurvesConfig {
                system: System::Eclipse,
                method: Some(FeatureMethod::Mvts),
                scale: scale(),
                include_proctor: false,
            }))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("paper/fig6_unseen_apps", |b| {
        b.iter(|| {
            black_box(run_unseen_apps(&UnseenAppsConfig {
                training_app_counts: vec![2],
                n_combos: 1,
                strategies: vec![Strategy::Uncertainty, Strategy::Random],
                scale: scale(),
            }))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("paper/fig7_robustness", |b| {
        b.iter(|| {
            black_box(run_robustness(&RobustnessConfig {
                training_app_counts: vec![2, 6],
                n_test_apps: 3,
                n_combos: 2,
                scale: scale(),
            }))
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("paper/fig8_unseen_inputs", |b| {
        b.iter(|| {
            black_box(run_unseen_inputs(&UnseenInputsConfig {
                held_out_decks: vec![0],
                strategies: vec![Strategy::Uncertainty, Strategy::Random],
                scale: scale(),
            }))
        })
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("paper/table4_grid_search_lr", |b| {
        b.iter(|| {
            black_box(run_table4(&Table4Config {
                system: System::Volta,
                families: vec![ModelFamily::Lr],
                k_folds: 3,
                max_samples: Some(80),
                scale: scale(),
            }))
        })
    });
}

fn bench_table5(c: &mut Criterion) {
    // Table V combines the curves results with two ceiling computations;
    // the ceilings are the part not covered by the fig3/fig5 benches.
    let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 42);
    c.bench_function("paper/table5_pool_ceiling", |b| {
        b.iter(|| black_box(albadross::experiments::table5::pool_ceiling(&data, &scale(), true)))
    });
    c.bench_function("paper/table5_cv_ceiling", |b| {
        b.iter(|| black_box(albadross::experiments::table5::cv_ceiling(&data, &scale(), true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables_setup, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_table4, bench_table5
}
criterion_main!(benches);
