//! Store I/O: cold `generate + extract` versus warm feature-cache reads.
//!
//! The store's reason to exist is that re-deriving a dataset (campaign
//! generation + TSFRESH/MVTS extraction) costs seconds to hours while
//! reading the memoised matrix back costs milliseconds. This bench pins
//! that claim down at smoke scale:
//!
//! * `cold`  — [`SystemData::generate_uncached`]: the full pipeline,
//!   nothing persisted,
//! * `warm`  — [`SystemData::generate_stored`] against a pre-populated
//!   [`TelemetryStore`]: two checksummed reads (telemetry entry skipped,
//!   feature matrix decoded straight into a dataset),
//! * `telemetry` — [`TelemetryStore::get_or_generate_campaign`] warm:
//!   segment decode alone, isolating the column-codec cost.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `ALBA_BENCH_QUICK=1` — fewer repetitions,
//! * `ALBA_STORE_IO_ASSERT=<N>` — exit non-zero unless warm reads are at
//!   least `N`x faster than the cold pipeline.
//!
//! Run with: `cargo bench -p alba-bench --bench store_io`

use alba_store::TelemetryStore;
use alba_telemetry::Scale;
use albadross::{FeatureMethod, System, SystemData};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (cold_reps, warm_reps) = if quick { (1, 3) } else { (3, 10) };
    let (system, method, scale, seed) = (System::Volta, FeatureMethod::Mvts, Scale::Smoke, 71);

    let dir = std::env::temp_dir().join(format!("alba-store-io-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = TelemetryStore::open(&dir).expect("open bench store");

    // Populate the store once (not measured) and sanity-check warm == cold.
    let reference = SystemData::generate_stored(&store, system, method, scale, seed)
        .expect("populate bench store");
    let warm_data =
        SystemData::generate_stored(&store, system, method, scale, seed).expect("warm read");
    assert_eq!(reference.dataset.x.as_slice(), warm_data.dataset.x.as_slice());

    let cold = best_of(cold_reps, || SystemData::generate_uncached(system, method, scale, seed));
    let warm = best_of(warm_reps, || {
        SystemData::generate_stored(&store, system, method, scale, seed).expect("warm read")
    });
    let campaign = system.campaign(scale, seed);
    let telemetry = best_of(warm_reps, || {
        store.get_or_generate_campaign(&campaign).expect("warm telemetry read")
    });

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!("store_io/cold       generate+extract   {cold:>12.3?}");
    println!("store_io/warm       feature-cache read {warm:>12.3?}");
    println!("store_io/telemetry  segment decode     {telemetry:>12.3?}");
    println!("store_io/speedup    warm vs cold       {speedup:>11.1}x");

    std::fs::remove_dir_all(&dir).ok();

    if let Ok(min) = std::env::var("ALBA_STORE_IO_ASSERT") {
        let min: f64 = min.parse().expect("ALBA_STORE_IO_ASSERT must be a number");
        assert!(
            speedup >= min,
            "warm feature-cache read is only {speedup:.1}x faster than the cold \
             pipeline (required: {min}x)"
        );
        println!("store_io/assert     speedup >= {min}x: OK");
    }
}
