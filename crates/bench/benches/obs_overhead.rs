//! Observability overhead: the same fleet-service run with metrics on
//! versus off.
//!
//! The acceptance bar for `alba-obs` is that a fully observed service
//! (stage spans, per-shard histograms, counters, an attached JSONL
//! sink) stays within a few percent of the unobserved run. Three
//! cases isolate where the cost comes from:
//!
//! * `disabled` — `Obs::disabled()`: every obs call is a no-op on a
//!   `None` handle (the baseline),
//! * `enabled` — a live wall-clock registry, no event sink,
//! * `enabled+sink` — the registry plus a `MemorySink` capturing every
//!   structured event.
//!
//! Run with: `cargo bench -p alba-bench --bench obs_overhead`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use alba_obs::{MemorySink, Obs};
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

/// The serve_throughput 32-node fleet, reused so the two benches are
/// directly comparable.
fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 32, 42);
    cfg.fleet.duration_override_s = Some(120);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.n_shards = 4;
    cfg.max_retrains = 0;
    cfg
}

fn bench_obs_overhead(c: &mut Criterion) {
    // Build each prototype once (training + replay generation are setup,
    // not measured); every iteration clones it and runs the replay end to
    // end. Clones share the prototype's registry (the handles are Arcs),
    // so the per-operation cost being measured is exactly the steady-state
    // cost of a long-lived registry.
    let disabled = FleetService::new(config());
    c.bench_function("obs/disabled", |b| {
        b.iter(|| {
            let mut svc = disabled.clone();
            let stats = svc.run_to_completion();
            assert!(stats.windows > 0);
            black_box(stats.windows)
        })
    });

    let enabled = FleetService::with_obs(config(), Obs::wall());
    c.bench_function("obs/enabled", |b| {
        b.iter(|| {
            let mut svc = enabled.clone();
            let stats = svc.run_to_completion();
            assert!(stats.windows > 0);
            black_box(stats.windows)
        })
    });

    let obs = Obs::wall();
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    let sinked = FleetService::with_obs(config(), obs);
    c.bench_function("obs/enabled+sink", |b| {
        b.iter(|| {
            let mut svc = sinked.clone();
            let stats = svc.run_to_completion();
            assert!(stats.windows > 0);
            black_box((stats.windows, sink.lines().len()))
        })
    });
}

criterion_group! {
    name = obs_overhead;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(obs_overhead);
