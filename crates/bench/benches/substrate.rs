//! Micro-benchmarks of the substrates: telemetry generation, feature
//! extraction, selection, model training and query-strategy scoring.
//!
//! These quantify the cost of each pipeline stage; the per-table/figure
//! benchmarks live in `experiments.rs` and the full-scale regeneration in
//! the `repro` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use alba_active::{select, SelectionContext, Strategy};
use alba_data::Matrix;
use alba_features::{
    chi_square_scores, extract_features, FeatureExtractor, MinMaxScaler, Mvts, PreprocessConfig,
    TsFresh,
};
use alba_ml::{Classifier, ForestParams, GbmParams, GradientBoosting, RandomForest};
use alba_telemetry::{
    class_names, find_application, generate_run, AnomalyKind, CampaignConfig, Injection,
    MetricCatalog, NoiseConfig, RunConfig, Scale, SignatureConfig, SystemSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let catalog = MetricCatalog::build(&SystemSpec::volta(), 4);
    let cfg = RunConfig {
        app: find_application("Kripke").unwrap(),
        input_deck: 0,
        node_count: 4,
        duration_s: 180,
        injection: Some(Injection::new(AnomalyKind::MemBw, 50)),
        run_id: 0,
        seed: 1,
    };
    c.bench_function("telemetry/generate_4node_180s_run", |b| {
        b.iter(|| {
            black_box(generate_run(
                &cfg,
                &catalog,
                &SignatureConfig::default(),
                &NoiseConfig::testbed(),
            ))
        })
    });
}

fn sample_series(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| (i as f64 / 9.0).sin() * 3.0 + (i as f64 / 41.0).cos() + i as f64 * 0.001)
        .collect()
}

fn bench_extractors(c: &mut Criterion) {
    let series = sample_series(200);
    c.bench_function("features/mvts_48_per_metric", |b| {
        b.iter_batched(
            || Vec::with_capacity(48),
            |mut out| {
                Mvts.extract(black_box(&series), &mut out);
                out
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("features/tsfresh_176_per_metric", |b| {
        b.iter_batched(
            || Vec::with_capacity(176),
            |mut out| {
                TsFresh.extract(black_box(&series), &mut out);
                out
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pipeline_stage(c: &mut Criterion) {
    // One small campaign's worth of extraction end-to-end (parallel).
    let mut cfg = CampaignConfig::volta(Scale::Smoke, 5);
    cfg.apps.truncate(3);
    cfg.shapes.truncate(1);
    let samples = cfg.generate();
    c.bench_function("features/extract_campaign_mvts", |b| {
        b.iter(|| {
            black_box(extract_features(
                black_box(&samples),
                &Mvts,
                &PreprocessConfig::default(),
                &class_names(),
            ))
        })
    });
}

fn toy_matrix(n: usize, d: usize) -> (Matrix, Vec<usize>) {
    let mut rng_state = 88172645463325252u64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let class = r % 3;
        for cidx in 0..d {
            let base = if cidx % 3 == class { 1.0 } else { 0.0 };
            x.set(r, cidx, base + next() * 0.8);
        }
        y.push(class);
    }
    (x, y)
}

fn bench_selection_and_scaling(c: &mut Criterion) {
    let (x, y) = toy_matrix(600, 1500);
    c.bench_function("features/chi_square_1500_features", |b| {
        b.iter(|| black_box(chi_square_scores(black_box(&x), black_box(&y), 3)))
    });
    c.bench_function("features/minmax_fit_transform", |b| {
        b.iter_batched(
            || x.clone(),
            |mut m| {
                let s = MinMaxScaler::fit(&m);
                s.transform_inplace(&mut m);
                m
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_models(c: &mut Criterion) {
    let (x, y) = toy_matrix(300, 500);
    c.bench_function("ml/random_forest_fit_300x500", |b| {
        b.iter(|| {
            let mut f = RandomForest::new(ForestParams {
                n_estimators: 20,
                max_depth: Some(8),
                ..ForestParams::default()
            });
            f.fit(black_box(&x), black_box(&y), 3);
            black_box(f)
        })
    });
    let mut fitted = RandomForest::new(ForestParams {
        n_estimators: 20,
        max_depth: Some(8),
        ..ForestParams::default()
    });
    fitted.fit(&x, &y, 3);
    let (xt, _) = toy_matrix(1000, 500);
    c.bench_function("ml/random_forest_predict_1000x500", |b| {
        b.iter(|| black_box(fitted.predict_proba(black_box(&xt))))
    });
    c.bench_function("ml/gbm_fit_300x500_10rounds", |b| {
        b.iter(|| {
            let mut g = GradientBoosting::new(GbmParams {
                n_estimators: 10,
                num_leaves: 8,
                ..GbmParams::default()
            });
            g.fit(black_box(&x), black_box(&y), 3);
            black_box(g)
        })
    });
}

fn bench_strategies(c: &mut Criterion) {
    let n = 2000;
    let mut proba = Matrix::zeros(n, 6);
    for r in 0..n {
        let mut s = 0.0;
        for k in 0..6 {
            let v = ((r * 7 + k * 13) % 29) as f64 + 1.0;
            proba.set(r, k, v);
            s += v;
        }
        for k in 0..6 {
            let v = proba.get(r, k) / s;
            proba.set(r, k, v);
        }
    }
    let remaining: Vec<usize> = (0..n).collect();
    let apps: Vec<String> = (0..n).map(|i| format!("app{}", i % 11)).collect();
    let cycle: Vec<String> = (0..11).map(|i| format!("app{i}")).collect();
    let mut rng = StdRng::seed_from_u64(3);
    for strategy in [Strategy::Uncertainty, Strategy::Margin, Strategy::Entropy] {
        c.bench_function(&format!("active/select_{}_pool2000", strategy.name()), |b| {
            b.iter(|| {
                let ctx = SelectionContext {
                    proba: &proba,
                    remaining: &remaining,
                    apps: &apps,
                    app_cycle: &cycle,
                    query_number: 0,
                };
                black_box(select(strategy, &ctx, &mut rng))
            })
        });
    }
}

criterion_group!(
    benches,
    bench_generation,
    bench_extractors,
    bench_pipeline_stage,
    bench_selection_and_scaling,
    bench_models,
    bench_strategies
);
criterion_main!(benches);
