//! Grid throughput: cold compute rate, warm memo replay, resume cost.
//!
//! Three measured configurations of the same sweep spec, all at one
//! worker so the rates are per-core:
//!
//! * **cold** — a fresh store, every cell computed and persisted; the
//!   headline cells/minute number.
//! * **warm** — the same store again, every cell a memo hit; measures
//!   the pure replay path (lookup → CRC → parse → merge).
//! * **resume** — a store primed with the first seed's cells only, as a
//!   sweep killed mid-flight would leave it; the overhead is the wall
//!   time beyond the cold-rate cost of just the missing cells, i.e.
//!   what the pre-scan and replay add to a restart.
//!
//! A discarded storeless warmup run populates the in-process dataset
//! and split caches first, so cold timings measure session compute, not
//! one-off data generation. Each configuration reports its best of
//! `reps` runs.
//!
//! Writes `results/BENCH_grid.json` — a trajectory point for
//! `scripts/bench_gate.sh` — and prints the same numbers.
//!
//! Environment knobs:
//!
//! * `ALBA_BENCH_QUICK=1` — fewer seeds/strategies, fewer reps.
//!
//! Run with: `cargo bench -p alba-bench --bench grid_throughput`

use std::path::PathBuf;
use std::time::Instant;

use alba_grid::{run_grid, GridOutcome, GridSpec, RunOptions};
use alba_obs::Obs;
use alba_store::TelemetryStore;
use alba_trace::Tracer;

fn spec_json(seeds: &[u64], strategies: &[&str], budget: u64) -> String {
    let seeds: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let strategies: Vec<String> = strategies.iter().map(|s| format!("\"{s}\"")).collect();
    format!(
        "{{\"name\": \"bench\", \"mode\": \"sweep\", \"system\": \"volta\", \
         \"campaign\": \"smoke\", \"extractors\": [\"mvts\"], \
         \"strategies\": [{}], \"budgets\": [{}], \"seeds\": [{}], \
         \"top_k_features\": 120}}",
        strategies.join(", "),
        budget,
        seeds.join(", "),
    )
}

fn parse(src: &str) -> GridSpec {
    GridSpec::parse(src, None).expect("bench spec parses")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alba_grid_bench_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(store: Option<TelemetryStore>) -> RunOptions {
    RunOptions { workers: 1, store, obs: Obs::disabled(), tracer: Tracer::disabled() }
}

/// One timed run against `dir` (fresh store handle each time, like a
/// restarted process would open).
fn timed_run(spec: &GridSpec, dir: &PathBuf) -> (f64, GridOutcome) {
    let store = TelemetryStore::open(dir).expect("open bench store");
    let t = Instant::now();
    let out = run_grid(spec, &opts(Some(store))).expect("grid run");
    (t.elapsed().as_secs_f64().max(1e-9), out)
}

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (seeds, strategies, budget, reps): (Vec<u64>, Vec<&str>, u64, usize) = if quick {
        (vec![31, 32], vec!["uncertainty", "margin", "random"], 5, 3)
    } else {
        (
            vec![31, 32, 33, 34],
            vec!["uncertainty", "margin", "entropy", "random", "equal_app"],
            8,
            5,
        )
    };
    let full = parse(&spec_json(&seeds, &strategies, budget));
    let partial = parse(&spec_json(&seeds[..1], &strategies, budget));

    // Discarded warmup: storeless, fills the dataset/split caches.
    let warmup = run_grid(&full, &opts(None)).expect("warmup run");
    let n = warmup.stats.cells;

    // Cold: fresh store per rep, every cell computed. The first rep's
    // store is kept as the fully-primed store for the warm passes.
    let mut cold_best = f64::MAX;
    let warm_dir = fresh_dir("cold0");
    for rep in 0..reps {
        let dir = if rep == 0 { warm_dir.clone() } else { fresh_dir(&format!("cold{rep}")) };
        let (wall, out) = timed_run(&full, &dir);
        assert_eq!(out.stats.computed, n, "cold rep must compute every cell");
        cold_best = cold_best.min(wall);
        if rep > 0 {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Warm: the primed store, every cell replayed from the memo.
    let mut warm_best = f64::MAX;
    let mut warm_hits = 0usize;
    for _ in 0..reps {
        let (wall, out) = timed_run(&full, &warm_dir);
        assert_eq!(out.stats.memo_hits, n, "warm rep must hit every cell");
        warm_hits = out.stats.memo_hits;
        warm_best = warm_best.min(wall);
    }
    let _ = std::fs::remove_dir_all(&warm_dir);

    // Resume: prime with the first seed only (untimed), then time the
    // full sweep picking up from that partial store.
    let mut resume_best = f64::MAX;
    let mut resume_hits = 0usize;
    let mut resume_computed = 0usize;
    for rep in 0..reps {
        let dir = fresh_dir(&format!("resume{rep}"));
        let (_, primed) = timed_run(&partial, &dir);
        assert_eq!(primed.stats.computed, primed.stats.cells);
        let (wall, out) = timed_run(&full, &dir);
        assert!(out.stats.memo_hits > 0 && out.stats.computed > 0, "resume must mix hits+misses");
        resume_hits = out.stats.memo_hits;
        resume_computed = out.stats.computed;
        resume_best = resume_best.min(wall);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let cells_per_sec = n as f64 / cold_best;
    let cells_per_min = cells_per_sec * 60.0;
    let warm_ns_per_cell = warm_best * 1e9 / n as f64;
    let hit_rate_pct = 100.0 * warm_hits as f64 / n as f64;
    // Cost of resuming beyond recomputing just the missing cells at the
    // cold rate: pre-scan, lookups, and replay of the surviving cells.
    let expected = cold_best * resume_computed as f64 / n as f64;
    let resume_overhead_pct = (resume_best / expected.max(1e-9) - 1.0) * 100.0;

    println!("grid/cold     {n} cells, 1 worker     {cells_per_min:>14.1} cells/min/core");
    println!("grid/warm     memo replay ({warm_hits}/{n} hit) {:>12.0} ns/cell", warm_ns_per_cell);
    println!(
        "grid/resume   {resume_hits} hit + {resume_computed} computed  {:>13.2} % over cold rate",
        resume_overhead_pct
    );

    let json = format!(
        "{{\n  \"bench\": \"grid_throughput\",\n  \"quick\": {},\n  \
         \"cells\": {},\n  \
         \"cell_throughput_per_min_per_core\": {:.1},\n  \
         \"grid_cells_per_sec_per_core\": {:.2},\n  \
         \"memo_hit_rate_pct\": {:.1},\n  \
         \"warm_replay_ns_per_cell\": {:.0},\n  \
         \"resume_overhead_pct\": {:.2}\n}}\n",
        quick, n, cells_per_min, cells_per_sec, hit_rate_pct, warm_ns_per_cell, resume_overhead_pct,
    );
    // `cargo bench` runs the binary with cwd = the package dir, so
    // anchor the artifact at the workspace root explicitly.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_grid.json"), json).expect("write results/BENCH_grid.json");
    println!("grid/json     wrote results/BENCH_grid.json");
}
