//! Network frontier throughput: wire-codec decode rate and a full
//! lockstep gateway session, ingest to diagnosis.
//!
//! Two measured regions:
//!
//! * `codec` — [`alba_net::frame::decode_frame`] over a representative
//!   telemetry frame (24 readings): the per-frame floor of the wire
//!   path, no I/O, one core.
//! * `gateway` — a complete live session at smoke scale: deterministic
//!   wire client → gateway (MemPipe transport) → admission → credits →
//!   ingest journal → `FleetService` diagnosis. Frames/sec is accepted
//!   telemetry frames over wall time; p99 ingest→diagnosis latency is
//!   read back from the gateway's `net_ingest_latency_ticks` histogram
//!   (service ticks between a sample's source tick and its delivery
//!   into the diagnosis pipeline).
//!
//! Writes `results/BENCH_net.json` — the machine-readable trajectory
//! point `scripts/ci.sh` smoke-checks — and prints the same numbers.
//!
//! Environment knobs:
//!
//! * `ALBA_BENCH_QUICK=1` — fewer codec repetitions, shorter session.
//!
//! Run with: `cargo bench -p alba-bench --bench net_throughput`

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use alba_net::frame::decode_frame;
use alba_net::{Frame, Gateway, GatewayConfig, Lockstep, MemListener, TenantConfig, WireClient};
use alba_obs::{Obs, TickClock};
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

fn bench_codec(reps: usize) -> f64 {
    let frame =
        Frame::Telemetry { node: 7, at: 99, values: (0..24).map(|i| i as f64 * 0.37).collect() };
    let encoded = frame.encode();
    let t = Instant::now();
    for _ in 0..reps {
        let decoded = decode_frame(black_box(&encoded)).expect("bench frame is valid");
        black_box(decoded);
    }
    reps as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

struct GatewayRun {
    frames_per_sec: f64,
    frames_accepted: u64,
    samples_delivered: u64,
    latency_p50_ticks: u64,
    latency_p99_ticks: u64,
}

fn bench_gateway(quick: bool) -> GatewayRun {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, if quick { 16 } else { 32 }, 42);
    cfg.fleet.duration_override_s = Some(if quick { 120 } else { 240 });
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    // Keep the measured region pure ingest + diagnosis: no retraining.
    cfg.max_retrains = 0;
    let mut svc = FleetService::new(cfg);

    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let (listener, dialer) = MemListener::new(1 << 20);
    let gateway = Gateway::with_obs(
        GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
        Box::new(listener),
        obs.clone(),
    );
    let client = WireClient::new(
        Box::new(move || Box::new(dialer.dial())),
        "volta",
        "tok",
        svc.fleet_batches(),
    );
    let mut harness = Lockstep { client, gateway };

    let max_ticks = svc.fleet_batches().len() + 60;
    let t = Instant::now();
    let stats = svc.run_frontier(&mut harness, max_ticks);
    let elapsed = t.elapsed().as_secs_f64().max(1e-9);

    let tenant = stats.tenants.first().expect("gateway run reports tenant stats");
    assert!(tenant.samples_delivered > 0, "bench session must deliver samples");
    let latency = obs
        .histogram("net_ingest_latency_ticks", &[])
        .snapshot()
        .expect("gateway records ingest latency");
    GatewayRun {
        frames_per_sec: tenant.frames_accepted as f64 / elapsed,
        frames_accepted: tenant.frames_accepted,
        samples_delivered: tenant.samples_delivered,
        latency_p50_ticks: latency.quantile(0.50).unwrap_or(0),
        latency_p99_ticks: latency.quantile(0.99).unwrap_or(0),
    }
}

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let codec_reps = if quick { 50_000 } else { 500_000 };

    let codec_fps = bench_codec(codec_reps);
    let run = bench_gateway(quick);

    println!("net/codec    decode                {:>14.0} frames/s/core", codec_fps);
    println!(
        "net/gateway  ingest->diagnosis     {:>14.0} frames/s/core  ({} frames)",
        run.frames_per_sec, run.frames_accepted
    );
    println!(
        "net/latency  ingest->diagnosis     p50 {} ticks, p99 {} ticks",
        run.latency_p50_ticks, run.latency_p99_ticks
    );

    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"quick\": {},\n  \
         \"codec_decode_frames_per_sec_per_core\": {:.0},\n  \
         \"gateway_frames_per_sec_per_core\": {:.0},\n  \
         \"gateway_frames_accepted\": {},\n  \
         \"gateway_samples_delivered\": {},\n  \
         \"ingest_to_diagnosis_latency_p50_ticks\": {},\n  \
         \"ingest_to_diagnosis_latency_p99_ticks\": {}\n}}\n",
        quick,
        codec_fps,
        run.frames_per_sec,
        run.frames_accepted,
        run.samples_delivered,
        run.latency_p50_ticks,
        run.latency_p99_ticks,
    );
    // `cargo bench` runs the binary with cwd = the package dir, so
    // anchor the artifact at the workspace root explicitly.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_net.json"), json).expect("write results/BENCH_net.json");
    println!("net/json     wrote results/BENCH_net.json");
}
