//! Causal-tracing overhead: the full serve pipeline with the tracer
//! disabled versus enabled.
//!
//! One measured region, two configurations: a complete
//! [`FleetService`] run at smoke scale (replay → ingest → shards →
//! alarms → AL gate), first with [`Tracer::disabled`] (the default
//! every non-traced deployment gets) and then with an enabled tracer
//! recording every hop into a memory sink and the per-lane flight
//! rings. Runs alternate base/traced in adjacent pairs; the overhead
//! is the median per-pair wall ratio, and when a bound is enforced
//! the measurement retries on noisy passes — so one scheduler hiccup
//! (or a loud co-tenant) cannot fake a regression.
//!
//! The acceptance bar (ISSUE 7, re-based by ISSUE 9's ~3x pipeline
//! speedup): enabled tracing must stay under the percentage bound
//! `ALBA_TRACE_ASSERT=<pct>` (ci.sh sets 10); unset, the bench only
//! reports. The absolute cost (`ns_per_window_traced`) is gated
//! separately by `scripts/bench_gate.sh`.
//!
//! Writes `results/BENCH_trace.json` — a trajectory point for
//! `scripts/bench_gate.sh` — and prints the same numbers.
//!
//! Environment knobs:
//!
//! * `ALBA_BENCH_QUICK=1` — smaller fleet, shorter session.
//! * `ALBA_TRACE_ASSERT=<pct>` — fail unless overhead ≤ pct.
//!
//! Run with: `cargo bench -p alba-bench --bench trace_overhead`

use std::sync::Arc;
use std::time::Instant;

use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig, Tracer};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

fn config(quick: bool) -> ServeConfig {
    // The sim session is long on purpose: the measured region must
    // dwarf scheduler noise, or the overhead ratio measures the
    // machine's mood instead of the tracer.
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, if quick { 16 } else { 32 }, 42);
    cfg.fleet.duration_override_s = Some(if quick { 1200 } else { 2400 });
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    // Keep the measured region pure ingest + diagnosis: no retraining.
    cfg.max_retrains = 0;
    cfg
}

struct RunResult {
    wall_s: f64,
    windows: u64,
    hops: u64,
}

/// One full service run; `traced` decides whether a live tracer (memory
/// sink + flight rings) rides along.
fn run_once(quick: bool, traced: bool) -> RunResult {
    let tracer = if traced {
        let t = Tracer::new(42, Arc::new(TickClock::new()), Tracer::DEFAULT_RING);
        t.set_sink(Arc::new(MemorySink::new()));
        t
    } else {
        Tracer::disabled()
    };
    let mut svc = FleetService::with_tracer(config(quick), Obs::disabled(), tracer.clone());
    let t = Instant::now();
    let stats = svc.run_to_completion();
    let wall_s = t.elapsed().as_secs_f64().max(1e-9);
    assert!(stats.windows > 0, "bench session must diagnose windows");
    if traced {
        assert!(tracer.hops_recorded() > 0, "traced run must record hops");
    }
    RunResult { wall_s, windows: stats.windows, hops: tracer.hops_recorded() }
}

/// One measurement pass: a discarded warmup pair, then `reps`
/// alternating base/traced pairs. Adjacent pair members share whatever
/// drift (thermal, cache, a neighbour stealing cores) the machine has
/// at that moment, so the per-pair wall ratio cancels it; the median
/// ratio then shrugs off the odd pair that caught a scheduler hiccup.
/// Throughput is reported from each side's best run.
fn measure(quick: bool, reps: usize) -> (RunResult, RunResult, f64) {
    run_once(quick, false);
    run_once(quick, true);

    let mut pairs = Vec::with_capacity(reps);
    let mut base: Option<RunResult> = None;
    let mut traced: Option<RunResult> = None;
    for _ in 0..reps {
        let b = run_once(quick, false);
        let t = run_once(quick, true);
        pairs.push(t.wall_s / b.wall_s);
        if base.as_ref().is_none_or(|cur| b.wall_s < cur.wall_s) {
            base = Some(b);
        }
        if traced.as_ref().is_none_or(|cur| t.wall_s < cur.wall_s) {
            traced = Some(t);
        }
    }
    pairs.sort_by(f64::total_cmp);
    let median_ratio = pairs[pairs.len() / 2];
    (base.expect("at least one base rep"), traced.expect("at least one traced rep"), median_ratio)
}

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = 7;
    let bound: Option<f64> = std::env::var("ALBA_TRACE_ASSERT")
        .ok()
        .map(|v| v.parse().expect("ALBA_TRACE_ASSERT must be a number (max %)"));

    // Shared CI boxes have noisy phases lasting longer than one whole
    // measurement pass, and those phases can land asymmetrically on
    // the pairs. When a bound is being enforced, allow up to three
    // passes and judge the quietest one: a genuinely slow tracer fails
    // every pass, a noisy neighbour only fails the loud ones.
    let attempts = if bound.is_some() { 3 } else { 1 };
    let mut best: Option<(RunResult, RunResult, f64)> = None;
    for attempt in 0..attempts {
        let m = measure(quick, reps);
        let done = bound.is_none_or(|b| (m.2 - 1.0) * 100.0 <= b);
        if best.as_ref().is_none_or(|cur| m.2 < cur.2) {
            best = Some(m);
        }
        if done {
            break;
        }
        println!("trace/retry   pass {} was noisy; remeasuring", attempt + 1);
    }
    let (base, traced, median_ratio) = best.expect("at least one measurement pass");

    let wps_base = base.windows as f64 / base.wall_s;
    let wps_traced = traced.windows as f64 / traced.wall_s;
    let ns_base = base.wall_s * 1e9 / base.windows as f64;
    let ns_traced = traced.wall_s * 1e9 / traced.windows as f64;
    let overhead_pct = (median_ratio - 1.0) * 100.0;
    let hops_per_sec = traced.hops as f64 / traced.wall_s;

    println!("trace/base    pipeline, tracer off  {wps_base:>14.0} windows/s/core");
    println!(
        "trace/traced  pipeline, tracer on   {:>14.0} windows/s/core  ({} hops)",
        wps_traced, traced.hops
    );
    println!("trace/cost    enabled-vs-disabled   {overhead_pct:>14.2} % wall overhead");

    if let Some(bound) = bound {
        assert!(
            overhead_pct <= bound,
            "tracing overhead {overhead_pct:.2}% exceeds the {bound}% bound"
        );
        println!("trace/assert  overhead within the {bound}% bound");
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"quick\": {},\n  \
         \"windows_per_sec_base\": {:.0},\n  \
         \"windows_per_sec_traced\": {:.0},\n  \
         \"ns_per_window_base\": {:.0},\n  \
         \"ns_per_window_traced\": {:.0},\n  \
         \"trace_overhead_pct\": {:.2},\n  \
         \"trace_hops_recorded\": {},\n  \
         \"trace_hops_per_sec_per_core\": {:.0}\n}}\n",
        quick, wps_base, wps_traced, ns_base, ns_traced, overhead_pct, traced.hops, hops_per_sec,
    );
    // `cargo bench` runs the binary with cwd = the package dir, so
    // anchor the artifact at the workspace root explicitly.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_trace.json"), json).expect("write results/BENCH_trace.json");
    println!("trace/json    wrote results/BENCH_trace.json");
}
