//! Linter throughput: the full interprocedural pipeline over the
//! workspace's own sources.
//!
//! The corpus is the real tree (every file `alba-lint` itself scans),
//! loaded once up front so timings measure analysis, not I/O. Two
//! configurations, each best of `reps`:
//!
//! * **token** — lex + classify + token rules per file, the v1
//!   pipeline; sets the baseline the interprocedural passes are
//!   priced against.
//! * **full** — `analyze_sources`: lex, parse, call-graph build, and
//!   the three dataflow passes (panic reachability, nondeterminism
//!   taint, lock order).
//!
//! Writes `results/BENCH_lint.json` — a trajectory point for
//! `scripts/bench_gate.sh` — and prints the same numbers.
//!
//! Environment knobs:
//!
//! * `ALBA_BENCH_QUICK=1` — fewer reps.
//!
//! Run with: `cargo bench -p alba-bench --bench lint_throughput`

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use alba_lint::{analyze_sources, lint_source, walk};

fn main() {
    let quick = std::env::var("ALBA_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 3 } else { 7 };

    // `cargo bench` runs with cwd = the package dir; anchor at the
    // workspace root explicitly.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files: BTreeMap<String, String> = BTreeMap::new();
    for abs in walk::workspace_sources(&root).expect("walk workspace") {
        let rel = walk::relative_path(&root, &abs);
        files.insert(rel, std::fs::read_to_string(&abs).expect("read source"));
    }
    let n_files = files.len();
    let n_lines: usize = files.values().map(|s| s.lines().count()).sum();

    // Token-only pipeline (v1): per-file lexing and token rules.
    let mut token_best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let mut findings = 0usize;
        for (path, src) in &files {
            findings += lint_source(path, src).len();
        }
        token_best = token_best.min(t.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(findings, 0, "the tree must be token-clean");
    }

    // Full interprocedural pipeline.
    let mut full_best = f64::MAX;
    let mut fns = 0u64;
    let mut edges = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        let report = analyze_sources(&files);
        full_best = full_best.min(t.elapsed().as_secs_f64().max(1e-9));
        assert!(report.findings.is_empty(), "the tree must be clean: {:?}", report.findings);
        fns = report.fns_analyzed;
        edges = report.call_edges;
    }

    let token_files_per_sec = n_files as f64 / token_best;
    let full_files_per_sec = n_files as f64 / full_best;
    let full_lines_per_sec = n_lines as f64 / full_best;
    let ns_per_fn = full_best * 1e9 / fns.max(1) as f64;
    // What the call graph + dataflow add on top of the token pass.
    let interproc_cost_pct = (full_best / token_best - 1.0) * 100.0;

    println!("lint/token    {n_files} files             {token_files_per_sec:>14.0} files/s");
    println!(
        "lint/full     {fns} fns / {edges} edges {full_files_per_sec:>14.0} files/s \
         ({interproc_cost_pct:+.0}% vs token)"
    );
    println!("lint/full     {n_lines} lines           {full_lines_per_sec:>14.0} lines/s");
    println!("lint/full     per function         {ns_per_fn:>14.0} ns/fn");

    let json = format!(
        "{{\n  \"bench\": \"lint_throughput\",\n  \"quick\": {},\n  \
         \"files\": {},\n  \
         \"lines\": {},\n  \
         \"fns_analyzed\": {},\n  \
         \"call_edges\": {},\n  \
         \"token_files_per_sec\": {:.0},\n  \
         \"lint_files_per_sec\": {:.0},\n  \
         \"lint_lines_per_sec\": {:.0},\n  \
         \"interproc_ns_per_fn\": {:.0}\n}}\n",
        quick,
        n_files,
        n_lines,
        fns,
        edges,
        token_files_per_sec,
        full_files_per_sec,
        full_lines_per_sec,
        ns_per_fn,
    );
    let results = root.join("results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_lint.json"), json).expect("write results/BENCH_lint.json");
    println!("lint/json     wrote results/BENCH_lint.json");
}
