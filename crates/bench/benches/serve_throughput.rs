//! Fleet-service throughput: sharded *batched* diagnosis versus the
//! 1-shard node-at-a-time baseline.
//!
//! Each benchmark builds the service once (offline training + replay
//! generation are setup, not the measured region) and measures a full
//! replay-to-completion run on a clone: ingest, windowing, batched
//! feature extraction, batched inference, hysteresis and the feedback
//! loop. Shard counts {1, 2, 4, 8} show the rayon scaling; the
//! `baseline` case pays one model call per window on a single shard.
//!
//! Run with: `cargo bench -p alba-bench --bench serve_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

/// A 32-node Volta fleet with enough stream length to produce a steady
/// diet of windows per shard per stride.
fn service(n_shards: usize, batched: bool) -> FleetService {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 32, 42);
    cfg.fleet.duration_override_s = Some(120);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.n_shards = n_shards;
    cfg.batched = batched;
    // Keep the measured region pure diagnosis: no retraining mid-run.
    cfg.max_retrains = 0;
    FleetService::new(cfg)
}

fn bench_serve(c: &mut Criterion) {
    for &shards in &[1usize, 2, 4, 8] {
        let prototype = service(shards, true);
        c.bench_function(&format!("serve/batched/{shards}-shards"), |b| {
            b.iter(|| {
                let mut svc = prototype.clone();
                let stats = svc.run_to_completion();
                assert!(stats.windows > 0);
                black_box(stats.windows)
            })
        });
    }

    let prototype = service(1, false);
    c.bench_function("serve/baseline/1-shard-node-at-a-time", |b| {
        b.iter(|| {
            let mut svc = prototype.clone();
            let stats = svc.run_to_completion();
            assert!(stats.windows > 0);
            black_box(stats.windows)
        })
    });
}

criterion_group! {
    name = serve;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(serve);
