//! Byte transports the gateway runs over.
//!
//! The gateway's poll loop is written against two small traits —
//! [`ByteStream`] (a non-blocking duplex byte pipe) and [`Listener`]
//! (a non-blocking acceptor) — with two implementations each:
//!
//! * **TCP** ([`TcpDoor`]/`TcpStream`): `std::net` sockets in
//!   non-blocking mode. No async runtime; the poll loop *is* the
//!   scheduler, driven by the caller's (injectable, deterministic)
//!   clock.
//! * **In-memory** ([`MemListener`]/[`MemPipe`]): a bounded duplex pipe
//!   with the same `WouldBlock` semantics, so the full protocol stack —
//!   framing, flow control, admission, journaling — runs byte-for-byte
//!   identically inside deterministic single-threaded tests.
//!
//! The in-memory pipe is *bounded* on purpose: a full direction returns
//! `WouldBlock` exactly like a full socket send buffer, so backpressure
//! bugs reproduce in tests instead of only in production.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// A non-blocking duplex byte stream.
///
/// Semantics mirror non-blocking sockets: `read` returns `Ok(0)` on
/// peer close, `Err(WouldBlock)` when no bytes are available; `write`
/// returns `Err(WouldBlock)` when the peer's receive window is full.
pub trait ByteStream: Send {
    /// Reads available bytes into `buf` (non-blocking).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Writes bytes from `buf` (non-blocking); may be partial.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Closes the write side; the peer sees `Ok(0)` after draining.
    fn close(&mut self);
    /// Peer description for logs/metrics (address or pipe label).
    fn peer(&self) -> String;
}

/// A non-blocking connection acceptor.
pub trait Listener: Send {
    /// Accepts one pending connection, `None` when nobody is waiting.
    fn accept(&mut self) -> io::Result<Option<Box<dyn ByteStream>>>;
    /// Where the listener is reachable (address or pipe label).
    fn local_addr(&self) -> String;
}

// ---------------------------------------------------------------- TCP

/// A non-blocking TCP stream wrapper.
pub struct TcpByteStream {
    stream: TcpStream,
    peer: String,
}

impl TcpByteStream {
    /// Wraps a connected stream, switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        Ok(Self { stream, peer })
    }

    /// Dials `addr` and wraps the resulting stream.
    pub fn connect(addr: &SocketAddr) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl ByteStream for TcpByteStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn close(&mut self) {
        self.stream.shutdown(std::net::Shutdown::Write).ok();
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A non-blocking TCP listener.
pub struct TcpDoor {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpDoor {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in
    /// non-blocking mode.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Self { listener, addr })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Listener for TcpDoor {
    fn accept(&mut self) -> io::Result<Option<Box<dyn ByteStream>>> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(Box::new(TcpByteStream::new(stream)?))),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.addr.to_string()
    }
}

// ---------------------------------------------------- in-memory pipe

/// One direction of a memory pipe: a bounded byte queue plus a closed
/// flag set when the writing end hangs up.
struct Direction {
    // alba-lint: allow(no-unbounded-channel) reason="bounded by `cap`: push_bytes refuses past capacity with WouldBlock, mirroring a full socket buffer"
    buf: VecDeque<u8>,
    cap: usize,
    closed: bool,
}

impl Direction {
    fn new(cap: usize) -> Self {
        Self { buf: VecDeque::with_capacity(cap.min(4096)), cap, closed: false }
    }

    fn push_bytes(&mut self, bytes: &[u8]) -> io::Result<usize> {
        if self.closed {
            return Err(io::Error::new(ErrorKind::BrokenPipe, "peer closed"));
        }
        let room = self.cap.saturating_sub(self.buf.len());
        if room == 0 {
            return Err(ErrorKind::WouldBlock.into());
        }
        let n = room.min(bytes.len());
        self.buf.extend(bytes.iter().take(n).copied());
        Ok(n)
    }

    fn pop_bytes(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.buf.is_empty() {
            return if self.closed { Ok(0) } else { Err(ErrorKind::WouldBlock.into()) };
        }
        let n = out.len().min(self.buf.len());
        for slot in out.iter_mut().take(n) {
            // The emptiness check above guarantees a byte per iteration.
            *slot = self.buf.pop_front().unwrap_or_default();
        }
        Ok(n)
    }
}

struct PipeShared {
    /// a→b direction (written by end A, read by end B).
    ab: Direction,
    /// b→a direction.
    ba: Direction,
}

/// One end of a bounded in-memory duplex pipe. Create pairs with
/// [`MemPipe::pair`].
pub struct MemPipe {
    shared: Arc<Mutex<PipeShared>>,
    /// True for the A end (writes into `ab`, reads from `ba`).
    a_end: bool,
    label: String,
}

impl MemPipe {
    /// A connected pair of pipe ends, each direction holding at most
    /// `cap` in-flight bytes.
    pub fn pair(cap: usize) -> (MemPipe, MemPipe) {
        let shared =
            Arc::new(Mutex::new(PipeShared { ab: Direction::new(cap), ba: Direction::new(cap) }));
        (
            MemPipe { shared: Arc::clone(&shared), a_end: true, label: "mem:a".into() },
            MemPipe { shared, a_end: false, label: "mem:b".into() },
        )
    }

    fn with<R>(&self, f: impl FnOnce(&mut PipeShared) -> R) -> R {
        // A poisoned pipe mutex means a peer test thread panicked;
        // continuing with its final state is the useful behaviour.
        let mut guard = match self.shared.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }
}

impl ByteStream for MemPipe {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let a_end = self.a_end;
        self.with(|s| if a_end { s.ba.pop_bytes(buf) } else { s.ab.pop_bytes(buf) })
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let a_end = self.a_end;
        self.with(|s| if a_end { s.ab.push_bytes(buf) } else { s.ba.push_bytes(buf) })
    }

    fn close(&mut self) {
        let a_end = self.a_end;
        self.with(|s| {
            if a_end {
                s.ab.closed = true;
            } else {
                s.ba.closed = true;
            }
        });
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

/// The dial side of a [`MemListener`]: each [`MemDialer::dial`] creates
/// a fresh pipe pair and queues the server end for accept.
#[derive(Clone)]
pub struct MemDialer {
    pending: Arc<Mutex<VecDeque<MemPipe>>>,
    cap: usize,
}

impl MemDialer {
    /// Opens a new connection; returns the client end.
    pub fn dial(&self) -> MemPipe {
        let (client, server) = MemPipe::pair(self.cap);
        match self.pending.lock() {
            Ok(mut q) => q.push_back(server),
            Err(poisoned) => poisoned.into_inner().push_back(server),
        }
        client
    }
}

/// An in-memory [`Listener`] for deterministic tests.
pub struct MemListener {
    pending: Arc<Mutex<VecDeque<MemPipe>>>,
}

impl MemListener {
    /// A listener plus the dialer clients use to reach it. Each
    /// connection's per-direction byte cap is `cap`.
    pub fn new(cap: usize) -> (MemListener, MemDialer) {
        // alba-lint: allow(no-unbounded-channel) reason="holds at most the test's handful of un-accepted dials; each accept drains one"
        let pending = Arc::new(Mutex::new(VecDeque::with_capacity(4)));
        (MemListener { pending: Arc::clone(&pending) }, MemDialer { pending, cap })
    }
}

impl Listener for MemListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn ByteStream>>> {
        let next = match self.pending.lock() {
            Ok(mut q) => q.pop_front(),
            Err(poisoned) => poisoned.into_inner().pop_front(),
        };
        Ok(next.map(|p| Box::new(p) as Box<dyn ByteStream>))
    }

    fn local_addr(&self) -> String {
        "mem".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pipe_moves_bytes_both_ways() {
        let (mut a, mut b) = MemPipe::pair(64);
        assert_eq!(a.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(b.write(b"ok").unwrap(), 2);
        assert_eq!(a.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ok");
    }

    #[test]
    fn empty_pipe_would_block_and_closed_pipe_reads_zero() {
        let (mut a, mut b) = MemPipe::pair(8);
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap_err().kind(), ErrorKind::WouldBlock);
        a.write(b"x").unwrap();
        a.close();
        assert_eq!(b.read(&mut buf).unwrap(), 1, "buffered bytes drain first");
        assert_eq!(b.read(&mut buf).unwrap(), 0, "then EOF");
        assert_eq!(a.write(b"y").unwrap_err().kind(), ErrorKind::BrokenPipe);
    }

    #[test]
    fn full_pipe_applies_backpressure_like_a_socket() {
        let (mut a, mut b) = MemPipe::pair(4);
        assert_eq!(a.write(b"123456").unwrap(), 4, "partial write at the cap");
        assert_eq!(a.write(b"56").unwrap_err().kind(), ErrorKind::WouldBlock);
        let mut buf = [0u8; 2];
        b.read(&mut buf).unwrap();
        assert_eq!(a.write(b"56").unwrap(), 2, "draining reopens the window");
    }

    #[test]
    fn mem_listener_accepts_dials_in_order() {
        let (mut listener, dialer) = MemListener::new(32);
        assert!(listener.accept().unwrap().is_none());
        let mut c1 = dialer.dial();
        let mut c2 = dialer.dial();
        c1.write(b"1").unwrap();
        c2.write(b"2").unwrap();
        let mut s1 = listener.accept().unwrap().expect("first dial");
        let mut s2 = listener.accept().unwrap().expect("second dial");
        assert!(listener.accept().unwrap().is_none());
        let mut buf = [0u8; 1];
        s1.read(&mut buf).unwrap();
        assert_eq!(&buf, b"1", "accept order follows dial order");
        s2.read(&mut buf).unwrap();
        assert_eq!(&buf, b"2");
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let mut door = TcpDoor::bind("127.0.0.1:0").expect("bind loopback");
        let addr = door.addr();
        let mut client = TcpByteStream::connect(&addr).expect("connect");
        let mut server = loop {
            if let Some(s) = door.accept().expect("accept") {
                break s;
            }
            std::thread::yield_now();
        };
        client.write(b"ping").unwrap();
        let mut buf = [0u8; 8];
        let n = loop {
            match server.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) => panic!("read: {e}"),
            }
        };
        assert_eq!(&buf[..n], b"ping");
    }
}
