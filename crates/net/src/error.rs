//! Typed errors for the wire codec and the gateway.
//!
//! The codec distinguishes *fatal* stream desyncs from *recoverable*
//! corrupt frames: after a bad magic byte or an impossible length there
//! is no way to find the next frame boundary, so the connection must
//! close; a CRC mismatch inside a well-framed payload is skippable —
//! the header's length still tells the decoder where the next frame
//! starts. [`FrameError::is_fatal`] encodes that split, and every
//! decode path returns one of these instead of panicking (asserted by
//! the workspace proptests on truncated and byte-flipped frames).

use std::fmt;

/// Why a frame (or a stream position) could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream position does not start with the protocol magic —
    /// the peer is not speaking alba-net, or framing has desynced.
    BadMagic {
        /// The two bytes found where the magic was expected.
        got: [u8; 2],
    },
    /// The header advertises a protocol version this build cannot parse.
    BadVersion {
        /// The version byte found.
        got: u8,
    },
    /// The header advertises a payload longer than the protocol allows —
    /// either corruption or a hostile sender; unrecoverable because the
    /// "next frame" pointer cannot be trusted.
    Oversize {
        /// The advertised payload length.
        len: u32,
    },
    /// The payload (plus header fields) failed its CRC. The frame's
    /// extent is known, so the stream can resync past it.
    BadCrc {
        /// CRC the header carried.
        expected: u32,
        /// CRC computed over the received bytes.
        got: u32,
    },
    /// The frame type byte names no known frame.
    UnknownType {
        /// The type byte found.
        got: u8,
    },
    /// The payload's internal structure is invalid (truncated varint,
    /// over-long string, non-UTF-8 name, wrong field count, ...).
    Malformed {
        /// Which structural check failed.
        what: &'static str,
    },
}

impl FrameError {
    /// True when the error desyncs the stream: no later byte can be
    /// trusted as a frame boundary, so the connection must close.
    /// Non-fatal errors occupy a known extent and are skippable.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FrameError::BadMagic { .. }
                | FrameError::BadVersion { .. }
                | FrameError::Oversize { .. }
        )
    }

    /// Stable short name, used as a metric label.
    pub fn name(&self) -> &'static str {
        match self {
            FrameError::BadMagic { .. } => "bad_magic",
            FrameError::BadVersion { .. } => "bad_version",
            FrameError::Oversize { .. } => "oversize",
            FrameError::BadCrc { .. } => "bad_crc",
            FrameError::UnknownType { .. } => "unknown_type",
            FrameError::Malformed { .. } => "malformed",
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad magic bytes {:02x} {:02x}", got[0], got[1])
            }
            FrameError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            FrameError::Oversize { len } => write!(f, "payload length {len} exceeds protocol cap"),
            FrameError::BadCrc { expected, got } => {
                write!(f, "crc mismatch: header {expected:#010x}, computed {got:#010x}")
            }
            FrameError::UnknownType { got } => write!(f, "unknown frame type {got:#04x}"),
            FrameError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors above the codec: journal parsing and gateway-level failures.
#[derive(Debug)]
pub enum NetError {
    /// A wire-codec error.
    Frame(FrameError),
    /// The ingest log's structure is invalid at the given byte offset.
    CorruptLog {
        /// Byte offset of the unparseable record.
        offset: usize,
        /// What failed.
        what: &'static str,
    },
    /// An I/O failure (socket or log file).
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::CorruptLog { offset, what } => {
                write!(f, "corrupt ingest log at byte {offset}: {what}")
            }
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Convenience alias for net-crate results.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatality_split_matches_resync_semantics() {
        assert!(FrameError::BadMagic { got: [0, 0] }.is_fatal());
        assert!(FrameError::BadVersion { got: 9 }.is_fatal());
        assert!(FrameError::Oversize { len: u32::MAX }.is_fatal());
        assert!(!FrameError::BadCrc { expected: 1, got: 2 }.is_fatal());
        assert!(!FrameError::UnknownType { got: 0xEE }.is_fatal());
        assert!(!FrameError::Malformed { what: "truncated varint" }.is_fatal());
    }

    #[test]
    fn errors_render_and_convert() {
        let e = FrameError::BadCrc { expected: 0xDEAD_BEEF, got: 0 };
        assert!(e.to_string().contains("0xdeadbeef"));
        let n: NetError = e.into();
        assert!(matches!(n, NetError::Frame(_)));
        assert!(n.to_string().contains("crc mismatch"));
        assert_eq!(FrameError::Malformed { what: "x" }.name(), "malformed");
    }
}
