//! The HTTP/1.1 control + query plane, multiplexed onto the gateway's
//! listener by protocol sniffing (a first byte of `0xA1` is the wire
//! protocol's magic; every HTTP method starts with an ASCII letter).
//!
//! Hand-rolled on purpose: the workspace vendors no HTTP stack, the
//! routes are few, and request parsing is bounded (method must be GET,
//! head capped at [`MAX_HEAD`]) so a hostile peer cannot make the
//! gateway buffer unbounded header bytes. Responses always close the
//! connection — the control plane is a scrape/debug surface, not a
//! high-throughput API; keep-alive complexity buys nothing here.
//!
//! | route | body |
//! |-------|------|
//! | `GET /healthz` | `ok` |
//! | `GET /stats` | full [`ServiceStats`](alba_serve::ServiceStats) JSON |
//! | `GET /alarms` | confirmed alarms, confirmation order |
//! | `GET /labels` | pending label requests (the analyst work queue) |
//! | `GET /nodes/<id>` | one node's diagnosis view |
//! | `GET /tenants` | per-tenant admission/flow-control stats |
//! | `GET /metrics` | Prometheus text exposition via `alba-obs` |
//! | `GET /trace/<id>` | one node's recent trace events (`alba-trace`) |
//! | `GET /flightrec` | full flight-recorder contents as JSONL |

use alba_ml::Diagnosis;
use alba_serve::{FleetService, NodeAlarm};
use serde::{Deserialize, Serialize};

/// Maximum bytes of request head (request line + headers) buffered
/// before the request is rejected outright.
pub const MAX_HEAD: usize = 8 * 1024;

/// What the HTTP plane can ask the running service. Implemented by
/// [`FleetService`]; the gateway takes `Option<&dyn ControlPlane>` so
/// pure-ingest deployments can run without a query surface.
pub trait ControlPlane {
    /// Full service statistics as JSON.
    fn stats_json(&self) -> String;
    /// Confirmed alarms (confirmation order) as a JSON array.
    fn alarms_json(&self) -> String;
    /// One node's diagnosis view; `None` for out-of-fleet nodes.
    fn node_json(&self, node: usize) -> Option<String>;
    /// Pending label requests as a JSON array.
    fn labels_json(&self) -> String;
    /// Prometheus text exposition.
    fn prometheus(&self) -> String;
    /// One node's recent trace events as a JSON array; `None` for
    /// out-of-fleet nodes. `[]` when tracing is disabled.
    fn trace_json(&self, node: usize) -> Option<String>;
    /// Full flight-recorder contents as JSONL (empty when tracing is
    /// disabled).
    fn flightrec(&self) -> String;
}

/// One node's control-plane view.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeView {
    /// Fleet node index.
    pub node: usize,
    /// Ground-truth label of the node's stream (the replay oracle — a
    /// real deployment would omit this).
    pub truth: String,
    /// Confirmed alarms for this node, confirmation order.
    pub alarms: Vec<NodeAlarm>,
}

/// One pending label request as served to the analyst.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabelView {
    /// Fleet node the window came from.
    pub node: usize,
    /// Tick of the window's last sample.
    pub at: usize,
    /// The uncertainty that triggered the request.
    pub uncertainty: f64,
    /// What the deployed model thought.
    pub predicted: Diagnosis,
}

impl ControlPlane for FleetService {
    fn stats_json(&self) -> String {
        self.stats().to_json().unwrap_or_else(|_| "{}".to_string())
    }

    fn alarms_json(&self) -> String {
        serde_json::to_string(&self.alarms().to_vec()).unwrap_or_else(|_| "[]".to_string())
    }

    fn node_json(&self, node: usize) -> Option<String> {
        if node >= self.n_nodes() {
            return None;
        }
        let view = NodeView {
            node,
            truth: self.truth(node).to_string(),
            alarms: self.alarms().iter().filter(|a| a.node == node).cloned().collect(),
        };
        Some(serde_json::to_string(&view).unwrap_or_else(|_| "{}".to_string()))
    }

    fn labels_json(&self) -> String {
        let views: Vec<LabelView> = self
            .label_requests()
            .into_iter()
            .map(|r| LabelView {
                node: r.node,
                at: r.at,
                uncertainty: r.uncertainty,
                predicted: r.predicted,
            })
            .collect();
        serde_json::to_string(&views).unwrap_or_else(|_| "[]".to_string())
    }

    fn prometheus(&self) -> String {
        // Explicit call: the inherent method, not this trait method.
        FleetService::prometheus(self)
    }

    fn trace_json(&self, node: usize) -> Option<String> {
        self.trace_recent_json(node)
    }

    fn flightrec(&self) -> String {
        // Explicit call: the inherent method, not this trait method.
        FleetService::flightrec(self)
    }
}

/// A parsed request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
}

/// Outcome of trying to parse a request head from buffered bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum HttpParse {
    /// A full head was present, spanning `.1` bytes.
    Request(HttpRequest, usize),
    /// No blank line yet — buffer more (bounded by [`MAX_HEAD`]).
    Incomplete,
    /// The head is malformed or oversized; answer 400 and close.
    Bad(&'static str),
}

/// Attempts to parse one request head from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> HttpParse {
    let Some(head_end) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD {
            HttpParse::Bad("request head exceeds size cap")
        } else {
            HttpParse::Incomplete
        };
    };
    if head_end > MAX_HEAD {
        return HttpParse::Bad("request head exceeds size cap");
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return HttpParse::Bad("request head is not utf-8");
    };
    let Some(request_line) = head.lines().next() else {
        return HttpParse::Bad("empty request head");
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HttpParse::Bad("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return HttpParse::Bad("unsupported http version");
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    HttpParse::Request(HttpRequest { method: method.to_string(), path }, head_end)
}

/// Finds the end of the head (the bytes through the blank line).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// A response ready for the wire.
pub fn response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Routes one request against the control plane. `tenants_json` is the
/// gateway's own per-tenant stats (the one route the service cannot
/// answer); `ctl` is `None` for ingest-only deployments.
pub fn route(req: &HttpRequest, ctl: Option<&dyn ControlPlane>, tenants_json: &str) -> Vec<u8> {
    if req.method != "GET" {
        return response(405, "text/plain", "only GET is supported\n");
    }
    if req.path == "/healthz" {
        return response(200, "text/plain", "ok\n");
    }
    if req.path == "/tenants" {
        return response(200, "application/json", tenants_json);
    }
    let Some(ctl) = ctl else {
        return response(503, "text/plain", "no control plane attached\n");
    };
    match req.path.as_str() {
        "/stats" => response(200, "application/json", &ctl.stats_json()),
        "/alarms" => response(200, "application/json", &ctl.alarms_json()),
        "/labels" => response(200, "application/json", &ctl.labels_json()),
        "/metrics" => response(200, "text/plain; version=0.0.4", &ctl.prometheus()),
        "/flightrec" => response(200, "application/jsonl", &ctl.flightrec()),
        path => {
            if let Some(node) = path.strip_prefix("/trace/").and_then(|id| id.parse().ok()) {
                return match ctl.trace_json(node) {
                    Some(body) => response(200, "application/json", &body),
                    None => response(404, "text/plain", "no such node\n"),
                };
            }
            match path.strip_prefix("/nodes/").and_then(|id| id.parse::<usize>().ok()) {
                Some(node) => match ctl.node_json(node) {
                    Some(body) => response(200, "application/json", &body),
                    None => response(404, "text/plain", "no such node\n"),
                },
                None => response(404, "text/plain", "no such route\n"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakePlane;
    impl ControlPlane for FakePlane {
        fn stats_json(&self) -> String {
            r#"{"ticks":3}"#.into()
        }
        fn alarms_json(&self) -> String {
            "[]".into()
        }
        fn node_json(&self, node: usize) -> Option<String> {
            (node < 2).then(|| format!(r#"{{"node":{node}}}"#))
        }
        fn labels_json(&self) -> String {
            "[]".into()
        }
        fn prometheus(&self) -> String {
            "up 1\n".into()
        }
        fn trace_json(&self, node: usize) -> Option<String> {
            (node < 2).then(|| format!(r#"[{{"node":{node},"stage":"decode"}}]"#))
        }
        fn flightrec(&self) -> String {
            "{\"kind\":\"flightrec\"}\n".into()
        }
    }

    fn parse_ok(raw: &str) -> HttpRequest {
        match parse_request(raw.as_bytes()) {
            HttpParse::Request(r, consumed) => {
                assert_eq!(consumed, raw.len());
                r
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn request_parsing_handles_the_usual_shapes() {
        let r = parse_ok("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/stats"));
        let r = parse_ok("GET /nodes/7?verbose=1 HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/nodes/7", "query strings are stripped");
        assert_eq!(parse_request(b"GET /st"), HttpParse::Incomplete);
        assert!(matches!(parse_request(b"NONSENSE\r\n\r\n"), HttpParse::Bad(_)));
        assert!(matches!(parse_request(b"GET / SPDY/3\r\n\r\n"), HttpParse::Bad(_)));
    }

    #[test]
    fn oversized_heads_are_rejected_not_buffered_forever() {
        let huge = vec![b'A'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&huge), HttpParse::Bad(_)));
    }

    #[test]
    fn routes_answer_with_the_right_bodies() {
        let plane = FakePlane;
        let get = |path: &str| {
            let req = HttpRequest { method: "GET".into(), path: path.into() };
            String::from_utf8(route(&req, Some(&plane), "[]")).unwrap()
        };
        assert!(get("/healthz").contains("200 OK"));
        assert!(get("/stats").contains(r#"{"ticks":3}"#));
        assert!(get("/metrics").contains("up 1"));
        assert!(get("/nodes/1").contains(r#"{"node":1}"#));
        assert!(get("/nodes/99").contains("404"));
        assert!(get("/nodes/zzz").contains("404"));
        assert!(get("/nowhere").contains("404"));
        assert!(get("/tenants").contains("200 OK"));
        assert!(get("/trace/1").contains(r#""stage":"decode""#));
        assert!(get("/trace/99").contains("404"));
        assert!(get("/trace/x").contains("404"));
        assert!(get("/flightrec").contains(r#""kind":"flightrec""#));
    }

    #[test]
    fn method_and_missing_plane_are_typed_refusals() {
        let req = HttpRequest { method: "POST".into(), path: "/stats".into() };
        assert!(String::from_utf8(route(&req, Some(&FakePlane), "[]")).unwrap().contains("405"));
        let req = HttpRequest { method: "GET".into(), path: "/stats".into() };
        assert!(String::from_utf8(route(&req, None, "[]")).unwrap().contains("503"));
    }

    #[test]
    fn responses_carry_exact_content_length() {
        let raw = String::from_utf8(response(200, "text/plain", "abc")).unwrap();
        assert!(raw.contains("Content-Length: 3\r\n"));
        assert!(raw.ends_with("abc"));
    }
}
