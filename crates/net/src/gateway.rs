//! The gateway: a single-threaded, non-blocking poll loop that accepts
//! connections, sniffs wire-vs-HTTP, enforces admission and flow
//! control, journals every accepted telemetry frame, and feeds the
//! service as a [`NetFrontier`].
//!
//! ## Determinism contract
//!
//! The gateway records **counters, gauges and histograms only — never
//! obs events**. Events are the replay-identity artifact: a live
//! network run and its ingest-log replay must produce byte-identical
//! event logs, and the replay path has no gateway. Everything the
//! gateway wants to say about connections lands in metrics and in the
//! per-tenant stats rows instead.
//!
//! Connections are processed in session (accept) order every pump, and
//! [`Gateway::poll`] drains their queues in the same order, so sample
//! delivery order is a pure function of what arrived before each pump.
//! Under the lockstep drive used by the tests and the deterministic
//! client (client step → gateway pump → service tick) the whole stack
//! is reproducible end to end; under free-running TCP the *capture*
//! is authoritative — whatever order the samples landed in is exactly
//! the order the journal replays.

use crate::conn::{Conn, ConnPhase};
use crate::frame::{self, Decoded, Frame};
use crate::http::{self, ControlPlane, HttpParse};
use crate::journal::IngestLog;
use crate::tenant::{Admission, Reject, TenantConfig};
use crate::transport::Listener;
use alba_obs::{Obs, Value};
use alba_serve::{NetFrontier, TelemetrySample, TenantStats};
use alba_trace::{Lane, Tracer};
use std::collections::BTreeMap;

/// Wire error code for protocol-sequence violations.
const E_PROTOCOL: u16 = 400;

/// Gateway tuning knobs.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Tenants allowed to connect.
    pub tenants: Vec<TenantConfig>,
    /// Ticks of total silence after which a connection is reaped.
    pub idle_timeout_ticks: usize,
    /// Ticks a partial frame (or partial HTTP head) may sit in the read
    /// buffer before the connection is reaped — the slowloris defence:
    /// trickling one byte per tick keeps a connection *active* but
    /// never completes a frame, so idleness alone would not catch it.
    pub partial_timeout_ticks: usize,
}

impl GatewayConfig {
    /// A gateway for the given tenants with default timeouts.
    pub fn new(tenants: Vec<TenantConfig>) -> Self {
        Self { tenants, idle_timeout_ticks: 30, partial_timeout_ticks: 5 }
    }
}

/// The network frontier implementation: listener + connections +
/// admission + ingest journal.
pub struct Gateway {
    cfg: GatewayConfig,
    listener: Box<dyn Listener>,
    conns: Vec<Conn>,
    admission: Admission,
    stats: BTreeMap<String, TenantStats>,
    log: IngestLog,
    next_session: u64,
    /// A wire session has existed at some point — gates `is_done` so a
    /// gateway is not "done" before anyone ever connected.
    saw_session: bool,
    obs: Obs,
    /// Causal tracing: the gateway mints each telemetry chain's trace
    /// id at frame decode. Hops are recorded from the pump, which runs
    /// on the lockstep thread — the same determinism discipline as the
    /// counters above.
    tracer: Tracer,
}

impl Gateway {
    /// A gateway over `listener`, unobserved.
    pub fn new(cfg: GatewayConfig, listener: Box<dyn Listener>) -> Self {
        Self::with_obs(cfg, listener, Obs::disabled())
    }

    /// A gateway recording connection/frame/reject counters and ingest
    /// latency histograms into `obs`. No obs *events* are ever emitted
    /// (see the module docs' determinism contract).
    pub fn with_obs(cfg: GatewayConfig, listener: Box<dyn Listener>, obs: Obs) -> Self {
        Self::with_tracer(cfg, listener, obs, Tracer::disabled())
    }

    /// [`Gateway::with_obs`] with causal tracing: every decoded
    /// telemetry frame records a `decode` hop on the net lane, keyed by
    /// the deterministic `(seed, node, at)` trace id that the service's
    /// downstream stages re-derive. The tracer's seed must equal the
    /// service's `cfg.fleet.seed` for the chains to join up.
    pub fn with_tracer(
        cfg: GatewayConfig,
        listener: Box<dyn Listener>,
        obs: Obs,
        tracer: Tracer,
    ) -> Self {
        let admission = Admission::new(cfg.tenants.clone());
        let stats = admission
            .tenant_names()
            .into_iter()
            .map(|n| (n.clone(), TenantStats::new(&n)))
            .collect();
        Self {
            cfg,
            listener,
            conns: Vec::new(),
            admission,
            stats,
            log: IngestLog::new(),
            next_session: 0,
            saw_session: false,
            obs,
            tracer,
        }
    }

    /// The ingest journal captured so far.
    pub fn ingest_log(&self) -> &IngestLog {
        &self.log
    }

    /// Live connection count (all phases except `Closed`).
    pub fn open_connections(&self) -> usize {
        self.conns.len()
    }

    /// Per-tenant stats as JSON (the `/tenants` route body).
    pub fn tenants_json(&self) -> String {
        let rows: Vec<&TenantStats> = self.stats.values().collect();
        serde_json::to_string(&rows).unwrap_or_else(|_| "[]".to_string())
    }

    /// One pump of the poll loop: accept pending connections, advance
    /// every connection's state machine (flush, read, frame/HTTP
    /// processing), answer control-plane requests against `ctl`, and
    /// reap timed-out or finished connections.
    pub fn pump(&mut self, now: usize, ctl: Option<&dyn ControlPlane>) {
        self.accept_pending(now);
        // Take the connection list so per-connection handlers can call
        // `&mut self` helpers (stats, admission, counters) without
        // aliasing the list being iterated.
        let mut conns = std::mem::take(&mut self.conns);
        for conn in conns.iter_mut() {
            self.advance(conn, now, ctl);
        }
        for conn in conns.iter_mut() {
            if conn.phase == ConnPhase::Closed {
                if let Some(name) = conn.tenant_name().map(str::to_string) {
                    self.admission.release(&name);
                }
            }
        }
        conns.retain(|c| c.phase != ConnPhase::Closed);
        self.conns = conns;
    }

    fn accept_pending(&mut self, now: usize) {
        loop {
            match self.listener.accept() {
                Ok(Some(stream)) => {
                    self.next_session += 1;
                    self.obs.counter("net_accepts_total", &[]).inc();
                    self.conns.push(Conn::new(stream, self.next_session, now));
                }
                Ok(None) => break,
                Err(_) => {
                    self.obs.counter("net_accept_errors_total", &[]).inc();
                    break;
                }
            }
        }
        self.obs.gauge("net_open_connections", &[]).set(self.conns.len() as i64);
    }

    /// Advances one connection: flush → read → protocol step → timeouts.
    fn advance(&mut self, conn: &mut Conn, now: usize, ctl: Option<&dyn ControlPlane>) {
        conn.flush();
        if conn.phase == ConnPhase::Closed {
            return;
        }
        conn.fill(now);
        if conn.phase == ConnPhase::Sniffing && !conn.rbuf.is_empty() {
            // Sniff: the wire magic's first byte (0xA1) is not ASCII;
            // every HTTP method begins with an ASCII letter.
            conn.phase = if conn.rbuf[0] == frame::MAGIC[0] {
                ConnPhase::AwaitHello
            } else {
                ConnPhase::Http
            };
        }
        match conn.phase {
            ConnPhase::AwaitHello | ConnPhase::Open | ConnPhase::ByeWait => {
                self.step_wire(conn, now);
            }
            ConnPhase::Http => self.step_http(conn, ctl),
            _ => {}
        }
        self.reap_timeouts(conn, now);
        conn.flush();
        conn.settle();
    }

    /// Decodes and handles every complete frame buffered on `conn`.
    fn step_wire(&mut self, conn: &mut Conn, now: usize) {
        loop {
            match frame::decode_frame(&conn.rbuf) {
                Ok(Decoded::Frame(f, consumed)) => {
                    conn.rbuf.drain(..consumed);
                    conn.partial_since = None;
                    self.obs.counter("net_frames_total", &[("type", f.name())]).inc();
                    self.handle_frame(conn, f, now);
                    if !matches!(
                        conn.phase,
                        ConnPhase::AwaitHello | ConnPhase::Open | ConnPhase::ByeWait
                    ) {
                        return;
                    }
                }
                Ok(Decoded::Corrupt(e, skip)) => {
                    conn.rbuf.drain(..skip);
                    conn.partial_since = None;
                    self.obs.counter("net_frames_corrupt_total", &[("error", e.name())]).inc();
                    if let Some(name) = conn.tenant_name().map(str::to_string) {
                        self.tenant_row(&name).frames_corrupt += 1;
                    }
                }
                Ok(Decoded::Incomplete) => {
                    if conn.rbuf.is_empty() {
                        conn.partial_since = None;
                    } else if conn.partial_since.is_none() {
                        conn.partial_since = Some(now);
                    }
                    return;
                }
                Err(e) => {
                    // Fatal desync: tell the peer why, then hang up.
                    self.obs.counter("net_frames_fatal_total", &[("error", e.name())]).inc();
                    conn.send(&Frame::Error { code: E_PROTOCOL, message: e.to_string() });
                    conn.drain_then_close();
                    return;
                }
            }
        }
    }

    /// Applies one valid frame to the connection's session state.
    fn handle_frame(&mut self, conn: &mut Conn, f: Frame, _now: usize) {
        match (conn.phase, f) {
            (ConnPhase::AwaitHello, Frame::Hello { tenant, token }) => {
                match self.admission.admit(&tenant, &token) {
                    Ok(tcfg) => {
                        self.saw_session = true;
                        conn.credits = tcfg.initial_credits;
                        let row = self.tenant_row(&tcfg.name);
                        row.connects += 1;
                        conn.send(&Frame::Welcome {
                            session: conn.session,
                            credits: tcfg.initial_credits,
                        });
                        conn.tenant = Some(tcfg);
                        conn.phase = ConnPhase::Open;
                        self.obs.counter("net_admits_total", &[]).inc();
                    }
                    Err(rej) => {
                        self.obs.counter("net_rejects_total", &[("reason", rej.name())]).inc();
                        if rej != Reject::UnknownTenant {
                            self.tenant_row(&tenant).admission_rejects += 1;
                        }
                        conn.send(&Frame::Error { code: rej.code(), message: rej.name().into() });
                        conn.drain_then_close();
                    }
                }
            }
            (ConnPhase::Open, Frame::Telemetry { node, at, values }) => {
                let (cap, name) = match &conn.tenant {
                    Some(t) => (t.queue_capacity, t.name.clone()),
                    None => (0, String::new()),
                };
                if conn.credits == 0 {
                    conn.dropped += 1;
                    self.tenant_row(&name).frames_no_credit += 1;
                    self.obs.counter("net_sheds_total", &[("reason", "no_credit")]).inc();
                    self.obs
                        .counter(
                            "net_tenant_sheds_total",
                            &[("tenant", name.as_str()), ("reason", "no_credit")],
                        )
                        .inc();
                    self.trace_decode(&name, node, at, "shed_no_credit");
                    conn.send(&Frame::Busy { dropped: conn.dropped });
                } else if conn.queue.len() >= cap {
                    conn.dropped += 1;
                    self.tenant_row(&name).frames_queue_full += 1;
                    self.obs.counter("net_sheds_total", &[("reason", "queue_full")]).inc();
                    self.obs
                        .counter(
                            "net_tenant_sheds_total",
                            &[("tenant", name.as_str()), ("reason", "queue_full")],
                        )
                        .inc();
                    self.trace_decode(&name, node, at, "shed_queue_full");
                    conn.send(&Frame::Busy { dropped: conn.dropped });
                } else {
                    conn.credits -= 1;
                    conn.queue.push_back(TelemetrySample {
                        node: node as usize,
                        at: at as usize,
                        values,
                    });
                    self.tenant_row(&name).frames_accepted += 1;
                    self.obs
                        .counter("net_tenant_frames_accepted_total", &[("tenant", name.as_str())])
                        .inc();
                    self.trace_decode(&name, node, at, "accepted");
                }
            }
            (ConnPhase::Open | ConnPhase::AwaitHello, Frame::Bye) => {
                conn.phase = ConnPhase::ByeWait;
            }
            (ConnPhase::ByeWait, _) => {
                // Frames after BYE are a protocol violation; drop them.
                self.obs.counter("net_protocol_errors_total", &[("kind", "after_bye")]).inc();
            }
            (_, frame) => {
                // Anything else out of sequence (telemetry before
                // HELLO, a second HELLO, client sending server frames).
                self.obs.counter("net_protocol_errors_total", &[("kind", "out_of_sequence")]).inc();
                conn.send(&Frame::Error {
                    code: E_PROTOCOL,
                    message: format!("unexpected {} frame", frame.name()),
                });
                conn.drain_then_close();
            }
        }
    }

    /// Parses and answers one HTTP request, then drains the connection.
    fn step_http(&mut self, conn: &mut Conn, ctl: Option<&dyn ControlPlane>) {
        match http::parse_request(&conn.rbuf) {
            HttpParse::Request(req, consumed) => {
                conn.rbuf.drain(..consumed);
                conn.partial_since = None;
                self.obs
                    .counter("net_http_requests_total", &[("path", route_label(&req.path))])
                    .inc();
                let body = http::route(&req, ctl, &self.tenants_json());
                conn.send_raw(&body);
                conn.drain_then_close();
            }
            HttpParse::Incomplete => {
                if conn.rbuf.is_empty() {
                    conn.partial_since = None;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(conn.last_activity);
                }
            }
            HttpParse::Bad(why) => {
                self.obs.counter("net_http_requests_total", &[("path", "bad")]).inc();
                conn.send_raw(&http::response(400, "text/plain", why));
                conn.drain_then_close();
            }
        }
    }

    /// Reaps idle and slowloris connections.
    fn reap_timeouts(&mut self, conn: &mut Conn, now: usize) {
        if !matches!(
            conn.phase,
            ConnPhase::Sniffing | ConnPhase::AwaitHello | ConnPhase::Open | ConnPhase::Http
        ) {
            return;
        }
        let idle = now.saturating_sub(conn.last_activity);
        if idle > self.cfg.idle_timeout_ticks {
            self.obs.counter("net_timeouts_total", &[("kind", "idle")]).inc();
            conn.drain_then_close();
            return;
        }
        if let Some(since) = conn.partial_since {
            if now.saturating_sub(since) > self.cfg.partial_timeout_ticks {
                self.obs.counter("net_timeouts_total", &[("kind", "slowloris")]).inc();
                conn.send(&Frame::Error { code: E_PROTOCOL, message: "frame stalled".into() });
                conn.drain_then_close();
            }
        }
    }

    fn tenant_row(&mut self, tenant: &str) -> &mut TenantStats {
        self.stats.entry(tenant.to_string()).or_insert_with(|| TenantStats::new(tenant))
    }

    /// Mints the causal chain for one telemetry frame: the net lane's
    /// `decode` hop carries the same `(seed, node, at)` trace id every
    /// downstream service stage re-derives, so chains join up across
    /// the wire without the frame carrying an id.
    fn trace_decode(&self, tenant: &str, node: u64, at: u64, outcome: &str) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.hop(
            Lane::Net,
            &self.tracer.ctx(node as usize, at as usize),
            "decode",
            &[
                ("tenant", Value::Str(tenant.to_string())),
                ("outcome", Value::Str(outcome.to_string())),
            ],
        );
    }
}

/// Collapses node-specific paths so the per-path counter stays bounded.
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/stats" => "/stats",
        "/alarms" => "/alarms",
        "/labels" => "/labels",
        "/metrics" => "/metrics",
        "/tenants" => "/tenants",
        "/flightrec" => "/flightrec",
        p if p.starts_with("/nodes/") => "/nodes",
        p if p.starts_with("/trace/") => "/trace",
        _ => "other",
    }
}

impl NetFrontier for Gateway {
    /// Drains every session's queue (session order), journals each
    /// sample at `now`, and grants back one flow-control credit per
    /// drained sample.
    fn poll(&mut self, now: usize) -> Vec<TelemetrySample> {
        let mut out = Vec::new();
        let mut conns = std::mem::take(&mut self.conns);
        for conn in conns.iter_mut() {
            if !matches!(conn.phase, ConnPhase::Open | ConnPhase::ByeWait) {
                continue;
            }
            let drained = conn.queue.len() as u32;
            let name = conn.tenant_name().unwrap_or("").to_string();
            let latency = self.obs.histogram("net_ingest_latency_ticks", &[]);
            while let Some(s) = conn.queue.pop_front() {
                self.log.append(now, &s);
                latency.record(now.saturating_sub(s.at) as u64);
                out.push(s);
            }
            if drained > 0 {
                let row = self.tenant_row(&name);
                row.samples_delivered += u64::from(drained);
                row.credits_granted += u64::from(drained);
                if conn.phase == ConnPhase::Open {
                    conn.credits += drained;
                    conn.send(&Frame::Credit { credits: drained });
                    conn.flush();
                }
            }
            if conn.phase == ConnPhase::ByeWait && conn.queue.is_empty() {
                conn.drain_then_close();
                conn.flush();
                conn.settle();
            }
        }
        for conn in conns.iter_mut() {
            if conn.phase == ConnPhase::Closed {
                if let Some(name) = conn.tenant_name().map(str::to_string) {
                    self.admission.release(&name);
                }
            }
        }
        conns.retain(|c| c.phase != ConnPhase::Closed);
        self.conns = conns;
        self.obs.counter("net_samples_delivered_total", &[]).add(out.len() as u64);
        out
    }

    /// Done once at least one wire session existed and none remain.
    fn is_done(&self, _now: usize) -> bool {
        self.saw_session && !self.conns.iter().any(Conn::is_wire_session)
    }

    fn tenant_stats(&self) -> Vec<TenantStats> {
        self.stats.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ByteStream as _, MemListener, MemPipe};

    fn gateway() -> (Gateway, crate::transport::MemDialer) {
        let (listener, dialer) = MemListener::new(1 << 20);
        let mut volta = TenantConfig::new("volta", "v-token");
        volta.max_connections = 1;
        volta.initial_credits = 4;
        volta.queue_capacity = 4;
        let cfg = GatewayConfig::new(vec![volta]);
        (Gateway::new(cfg, Box::new(listener)), dialer)
    }

    fn read_frames(pipe: &mut MemPipe) -> Vec<Frame> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match pipe.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        let mut frames = Vec::new();
        while let Ok(Decoded::Frame(f, consumed)) = frame::decode_frame(&buf) {
            buf.drain(..consumed);
            frames.push(f);
        }
        frames
    }

    fn hello(pipe: &mut MemPipe, tenant: &str, token: &str) {
        pipe.write(&Frame::Hello { tenant: tenant.into(), token: token.into() }.encode()).unwrap();
    }

    fn telemetry(pipe: &mut MemPipe, node: u64, at: u64) {
        pipe.write(&Frame::Telemetry { node, at, values: vec![at as f64] }.encode()).unwrap();
    }

    #[test]
    fn handshake_accept_journal_and_credits() {
        let (mut gw, dialer) = gateway();
        let mut client = dialer.dial();
        hello(&mut client, "volta", "v-token");
        gw.pump(0, None);
        let frames = read_frames(&mut client);
        assert!(matches!(frames.as_slice(), [Frame::Welcome { session: 1, credits: 4 }]));
        telemetry(&mut client, 0, 0);
        telemetry(&mut client, 1, 0);
        gw.pump(1, None);
        let delivered = gw.poll(1);
        assert_eq!(delivered.len(), 2);
        assert_eq!(gw.ingest_log().records(), 2);
        let frames = read_frames(&mut client);
        assert!(matches!(frames.as_slice(), [Frame::Credit { credits: 2 }]));
        let stats = gw.tenant_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].frames_accepted, 2);
        assert_eq!(stats[0].samples_delivered, 2);
        assert_eq!(stats[0].credits_granted, 2);
    }

    #[test]
    fn bad_token_and_over_quota_are_rejected_with_codes() {
        let (mut gw, dialer) = gateway();
        let mut bad = dialer.dial();
        hello(&mut bad, "volta", "wrong");
        gw.pump(0, None);
        let frames = read_frames(&mut bad);
        assert!(matches!(frames.as_slice(), [Frame::Error { code: 401, .. }]));

        let mut first = dialer.dial();
        hello(&mut first, "volta", "v-token");
        gw.pump(1, None);
        assert!(matches!(read_frames(&mut first).as_slice(), [Frame::Welcome { .. }]));

        let mut second = dialer.dial();
        hello(&mut second, "volta", "v-token");
        gw.pump(2, None);
        let frames = read_frames(&mut second);
        assert!(matches!(frames.as_slice(), [Frame::Error { code: 429, .. }]));
        let row = &gw.tenant_stats()[0];
        assert_eq!(row.connects, 1);
        assert_eq!(row.admission_rejects, 2, "bad token + over quota both count");
    }

    #[test]
    fn unknown_tenant_is_refused_without_a_stats_row() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        hello(&mut c, "ghost", "x");
        gw.pump(0, None);
        assert!(matches!(read_frames(&mut c).as_slice(), [Frame::Error { code: 404, .. }]));
        assert_eq!(gw.tenant_stats().len(), 1, "no row invented for unknown tenants");
    }

    #[test]
    fn credit_exhaustion_and_queue_overflow_shed_with_busy() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        hello(&mut c, "volta", "v-token");
        gw.pump(0, None);
        read_frames(&mut c);
        // 4 credits granted; send 6 frames without waiting.
        for at in 0..6 {
            telemetry(&mut c, 0, at);
        }
        gw.pump(1, None);
        let busys: Vec<Frame> = read_frames(&mut c);
        assert_eq!(busys.len(), 2, "two BUSY frames for the two sheds");
        assert!(matches!(busys[0], Frame::Busy { dropped: 1 }));
        assert!(matches!(busys[1], Frame::Busy { dropped: 2 }));
        let row = &gw.tenant_stats()[0];
        assert_eq!(row.frames_accepted, 4);
        assert_eq!(row.frames_no_credit, 2);
        assert_eq!(gw.poll(1).len(), 4, "accepted frames still deliver");
    }

    #[test]
    fn corrupt_crc_is_counted_and_skipped_not_fatal() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        hello(&mut c, "volta", "v-token");
        gw.pump(0, None);
        read_frames(&mut c);
        let mut bad = Frame::Telemetry { node: 0, at: 0, values: vec![1.0] }.encode();
        let tail = bad.len() - 1;
        bad[tail] ^= 0xFF;
        c.write(&bad).unwrap();
        telemetry(&mut c, 0, 1); // a good frame right behind it
        gw.pump(1, None);
        assert_eq!(gw.poll(1).len(), 1, "the stream resynced past the corrupt frame");
        let row = &gw.tenant_stats()[0];
        assert_eq!(row.frames_corrupt, 1);
        assert_eq!(row.frames_accepted, 1);
    }

    #[test]
    fn bad_magic_is_fatal_and_closes_the_connection() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        hello(&mut c, "volta", "v-token");
        gw.pump(0, None);
        read_frames(&mut c);
        c.write(&[0x00, 0x00, 0x00, 0x00]).unwrap();
        gw.pump(1, None);
        let frames = read_frames(&mut c);
        assert!(matches!(frames.as_slice(), [Frame::Error { code: 400, .. }]));
        assert_eq!(gw.open_connections(), 0);
    }

    #[test]
    fn bye_closes_after_the_queue_drains_and_is_done_flips() {
        let (mut gw, dialer) = gateway();
        assert!(!gw.is_done(0), "never-connected gateway is not done");
        let mut c = dialer.dial();
        hello(&mut c, "volta", "v-token");
        gw.pump(0, None);
        read_frames(&mut c);
        telemetry(&mut c, 0, 0);
        c.write(&Frame::Bye.encode()).unwrap();
        gw.pump(1, None);
        assert!(!gw.is_done(1), "queued sample still undelivered");
        assert_eq!(gw.poll(1).len(), 1);
        assert!(gw.is_done(2));
        assert_eq!(gw.open_connections(), 0);
    }

    #[test]
    fn slowloris_trickle_is_reaped_by_the_partial_frame_timeout() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        hello(&mut c, "volta", "v-token");
        gw.pump(0, None);
        read_frames(&mut c);
        let frame = Frame::Telemetry { node: 0, at: 0, values: vec![1.0] }.encode();
        // Trickle one byte per tick — never idle, never complete.
        let mut closed_at = None;
        for (i, b) in frame.iter().enumerate() {
            c.write(&[*b]).unwrap();
            gw.pump(1 + i, None);
            if gw.open_connections() == 0 {
                closed_at = Some(1 + i);
                break;
            }
        }
        let closed_at = closed_at.expect("slowloris must be reaped");
        assert!(
            closed_at <= 2 + GatewayConfig::new(vec![]).partial_timeout_ticks + 1,
            "reaped promptly at tick {closed_at}"
        );
    }

    #[test]
    fn idle_connection_is_reaped() {
        let (mut gw, dialer) = gateway();
        let _c = dialer.dial();
        gw.pump(0, None);
        assert_eq!(gw.open_connections(), 1);
        gw.pump(100, None);
        assert_eq!(gw.open_connections(), 0, "idle sniffing conn reaped");
    }

    #[test]
    fn http_scrape_works_on_the_same_listener() {
        let (mut gw, dialer) = gateway();
        let mut c = dialer.dial();
        c.write(b"GET /tenants HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        gw.pump(0, None);
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while let Ok(n) = c.read(&mut chunk) {
            if n == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        let raw = String::from_utf8(buf).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK"), "got: {raw}");
        assert!(raw.contains(r#""tenant":"volta""#));
        assert_eq!(gw.open_connections(), 0, "http conns close after the response");
    }
}
