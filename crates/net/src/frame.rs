//! The alba-net wire protocol: length-prefixed, CRC-checked binary
//! frames carrying 1 Hz telemetry and flow-control signalling.
//!
//! ## Frame layout
//!
//! | offset | size | field | notes |
//! |-------:|-----:|-------|-------|
//! | 0      | 2    | magic `A1 BA` | resync sentinel |
//! | 2      | 1    | version (`0x01`) | |
//! | 3      | 1    | frame type | see [`Frame`] |
//! | 4      | 4    | payload length, `u32` LE | capped at [`MAX_PAYLOAD`] |
//! | 8      | 4    | CRC-32, `u32` LE | over version ‖ type ‖ length ‖ payload |
//! | 12     | n    | payload | type-specific |
//!
//! The CRC covers the header fields after the magic as well as the
//! payload, so a flipped *type* or *length-low* byte is caught, not just
//! payload damage. Telemetry reading vectors reuse the `alba-store`
//! column codec (gap bitmap + XOR-varint over IEEE-754 bit patterns), so
//! every finite value, infinity and signed zero crosses the wire
//! **bit-exactly** — the precondition for byte-identical replay of a
//! captured session.
//!
//! [`decode_frame`] is panic-free by construction over arbitrary input
//! (asserted by the workspace proptests): truncation yields
//! [`Decoded::Incomplete`], in-frame corruption yields a skippable
//! [`Decoded::Corrupt`], and desyncs yield a fatal [`FrameError`].

use crate::error::FrameError;
use alba_data::MetricKind;
use alba_serve::TelemetrySample;
use alba_store::codec::{get_uvarint, put_uvarint, read_u32_le};
use alba_store::{crc32, decode_column, encode_column};

/// Frame magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = [0xA1, 0xBA];
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Header size in bytes (magic + version + type + length + CRC).
pub const HEADER_LEN: usize = 12;
/// Maximum payload size. A 1 Hz telemetry frame is tens of bytes; one
/// MiB leaves three orders of magnitude of headroom while bounding what
/// a corrupt or hostile length field can make the server buffer.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Maximum tenant/token/message string length inside a payload.
pub const MAX_STRING: u64 = 256;
/// Maximum readings per telemetry frame (far above any real fleet's
/// metric catalog; bounds allocation from corrupt counts).
pub const MAX_READINGS: u64 = 65_536;

/// One protocol frame. Client→server: `Hello`, `Telemetry`, `Bye`.
/// Server→client: `Welcome`, `Credit`, `Busy`, `Error`.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Opens a session: tenant name + auth token.
    Hello {
        /// Tenant the connection claims to belong to.
        tenant: String,
        /// Shared-secret token proving it.
        token: String,
    },
    /// Accepts a session and grants initial flow-control credits.
    Welcome {
        /// Server-assigned session id (accept order).
        session: u64,
        /// Telemetry frames the client may send before waiting.
        credits: u32,
    },
    /// One node-second of telemetry readings.
    Telemetry {
        /// Fleet node the readings belong to.
        node: u64,
        /// Source tick (sample time at the sender).
        at: u64,
        /// One reading per catalog metric, bit-exact.
        values: Vec<f64>,
    },
    /// Grants additional flow-control credits.
    Credit {
        /// Credits to add to the client's balance.
        credits: u32,
    },
    /// Tells the client a telemetry frame was shed (no credit, or the
    /// connection queue was full); the running total lets the client
    /// audit its losses.
    Busy {
        /// Frames this connection has shed so far.
        dropped: u64,
    },
    /// Graceful close: the sender is done.
    Bye,
    /// Terminal error; the server closes after sending one.
    Error {
        /// Machine-readable reason (see `reject` codes in the gateway).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

const T_HELLO: u8 = 1;
const T_WELCOME: u8 = 2;
const T_TELEMETRY: u8 = 3;
const T_CREDIT: u8 = 4;
const T_BUSY: u8 = 5;
const T_BYE: u8 = 6;
const T_ERROR: u8 = 7;

impl Frame {
    /// The frame's type byte, as it appears at header offset 3.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => T_HELLO,
            Frame::Welcome { .. } => T_WELCOME,
            Frame::Telemetry { .. } => T_TELEMETRY,
            Frame::Credit { .. } => T_CREDIT,
            Frame::Busy { .. } => T_BUSY,
            Frame::Bye => T_BYE,
            Frame::Error { .. } => T_ERROR,
        }
    }

    /// Stable frame-type name, used as a metric label.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::Telemetry { .. } => "telemetry",
            Frame::Credit { .. } => "credit",
            Frame::Busy { .. } => "busy",
            Frame::Bye => "bye",
            Frame::Error { .. } => "error",
        }
    }

    /// Encodes the frame's payload (everything after the header).
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello { tenant, token } => {
                put_string(&mut p, tenant);
                put_string(&mut p, token);
            }
            Frame::Welcome { session, credits } => {
                put_uvarint(&mut p, *session);
                put_uvarint(&mut p, u64::from(*credits));
            }
            Frame::Telemetry { node, at, values } => {
                put_uvarint(&mut p, *node);
                put_uvarint(&mut p, *at);
                put_uvarint(&mut p, values.len() as u64);
                p.extend_from_slice(&encode_column(values, MetricKind::Gauge));
            }
            Frame::Credit { credits } => put_uvarint(&mut p, u64::from(*credits)),
            Frame::Busy { dropped } => put_uvarint(&mut p, *dropped),
            Frame::Bye => {}
            Frame::Error { code, message } => {
                put_uvarint(&mut p, u64::from(*code));
                put_string(&mut p, message);
            }
        }
        p
    }

    /// Encodes the full frame, header included, ready for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let len = payload.len() as u32;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&len.to_le_bytes());
        let crc = frame_crc(VERSION, self.type_byte(), len, &payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// CRC-32 over version ‖ type ‖ length(LE) ‖ payload.
fn frame_crc(version: u8, ty: u8, len: u32, payload: &[u8]) -> u32 {
    let mut covered = Vec::with_capacity(6 + payload.len());
    covered.push(version);
    covered.push(ty);
    covered.extend_from_slice(&len.to_le_bytes());
    covered.extend_from_slice(payload);
    crc32(&covered)
}

/// Appends a length-prefixed UTF-8 string.
fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string, bounded by [`MAX_STRING`].
fn get_string(bytes: &[u8], pos: &mut usize) -> Result<String, FrameError> {
    let len = get_uvarint(bytes, pos)
        .map_err(|_| FrameError::Malformed { what: "truncated string length" })?;
    if len > MAX_STRING {
        return Err(FrameError::Malformed { what: "string exceeds length cap" });
    }
    let end = pos
        .checked_add(len as usize)
        .ok_or(FrameError::Malformed { what: "string length overflows" })?;
    let raw = bytes.get(*pos..end).ok_or(FrameError::Malformed { what: "string past end" })?;
    *pos = end;
    String::from_utf8(raw.to_vec()).map_err(|_| FrameError::Malformed { what: "non-utf8 string" })
}

/// Outcome of attempting to decode one frame from a stream buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum Decoded {
    /// A complete valid frame spanning the first `.1` buffered bytes —
    /// the caller drains that many and processes the frame.
    Frame(Frame, usize),
    /// The buffer holds a frame prefix; read more bytes and retry.
    Incomplete,
    /// A complete but corrupt frame spanning the first `.1` buffered
    /// bytes — the caller counts it, drains past it, and *keeps the
    /// connection*: the length field fixed the frame's extent, so the
    /// stream is still in sync.
    Corrupt(FrameError, usize),
}

/// Decodes one frame from the front of `buf`.
///
/// `Err` means the stream has desynced (bad magic/version, impossible
/// length) and the connection must close — see
/// [`FrameError::is_fatal`]. Every other condition is reported through
/// [`Decoded`]. Never panics, for any input.
pub fn decode_frame(buf: &[u8]) -> Result<Decoded, FrameError> {
    if buf.len() < 2 {
        return Ok(Decoded::Incomplete);
    }
    if buf[0] != MAGIC[0] || buf[1] != MAGIC[1] {
        return Err(FrameError::BadMagic { got: [buf[0], buf[1]] });
    }
    if buf.len() < HEADER_LEN {
        return Ok(Decoded::Incomplete);
    }
    let version = buf[2];
    if version != VERSION {
        return Err(FrameError::BadVersion { got: version });
    }
    let ty = buf[3];
    let Some(len) = read_u32_le(buf, 4) else { return Ok(Decoded::Incomplete) };
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize { len });
    }
    let Some(expected_crc) = read_u32_le(buf, 8) else { return Ok(Decoded::Incomplete) };
    let total = HEADER_LEN + len as usize;
    let Some(payload) = buf.get(HEADER_LEN..total) else { return Ok(Decoded::Incomplete) };
    let got_crc = frame_crc(version, ty, len, payload);
    if got_crc != expected_crc {
        return Ok(Decoded::Corrupt(
            FrameError::BadCrc { expected: expected_crc, got: got_crc },
            total,
        ));
    }
    match decode_payload(ty, payload) {
        Ok(frame) => Ok(Decoded::Frame(frame, total)),
        Err(e) => Ok(Decoded::Corrupt(e, total)),
    }
}

/// Decodes a CRC-verified payload of the given frame type.
fn decode_payload(ty: u8, p: &[u8]) -> Result<Frame, FrameError> {
    let mut pos = 0usize;
    let frame = match ty {
        T_HELLO => {
            let tenant = get_string(p, &mut pos)?;
            let token = get_string(p, &mut pos)?;
            Frame::Hello { tenant, token }
        }
        T_WELCOME => {
            let session = get_varint(p, &mut pos)?;
            let credits = get_u32(p, &mut pos)?;
            Frame::Welcome { session, credits }
        }
        T_TELEMETRY => {
            let node = get_varint(p, &mut pos)?;
            let at = get_varint(p, &mut pos)?;
            let n = get_varint(p, &mut pos)?;
            if n > MAX_READINGS {
                return Err(FrameError::Malformed { what: "reading count exceeds cap" });
            }
            let column = p.get(pos..).unwrap_or(&[]);
            let values = decode_column(column, n as usize, MetricKind::Gauge)
                .map_err(|_| FrameError::Malformed { what: "corrupt reading column" })?;
            // decode_column consumes the whole slice (it rejects
            // trailing bytes), so `pos` bookkeeping ends here.
            pos = p.len();
            Frame::Telemetry { node, at, values }
        }
        T_CREDIT => Frame::Credit { credits: get_u32(p, &mut pos)? },
        T_BUSY => Frame::Busy { dropped: get_varint(p, &mut pos)? },
        T_BYE => Frame::Bye,
        T_ERROR => {
            let code64 = get_varint(p, &mut pos)?;
            let code = u16::try_from(code64)
                .map_err(|_| FrameError::Malformed { what: "error code range" })?;
            let message = get_string(p, &mut pos)?;
            Frame::Error { code, message }
        }
        other => return Err(FrameError::UnknownType { got: other }),
    };
    if pos != p.len() {
        return Err(FrameError::Malformed { what: "trailing payload bytes" });
    }
    Ok(frame)
}

fn get_varint(p: &[u8], pos: &mut usize) -> Result<u64, FrameError> {
    get_uvarint(p, pos).map_err(|_| FrameError::Malformed { what: "truncated varint" })
}

fn get_u32(p: &[u8], pos: &mut usize) -> Result<u32, FrameError> {
    let v = get_varint(p, pos)?;
    u32::try_from(v).map_err(|_| FrameError::Malformed { what: "u32 field out of range" })
}

/// Builds a telemetry frame from a serve-layer sample.
pub fn telemetry_frame(s: &TelemetrySample) -> Frame {
    Frame::Telemetry { node: s.node as u64, at: s.at as u64, values: s.values.clone() }
}

/// Converts a decoded telemetry frame back into a serve-layer sample.
/// `None` for non-telemetry frames.
pub fn to_sample(frame: &Frame) -> Option<TelemetrySample> {
    match frame {
        Frame::Telemetry { node, at, values } => {
            Some(TelemetrySample { node: *node as usize, at: *at as usize, values: values.clone() })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { tenant: "volta".into(), token: "s3cret".into() },
            Frame::Welcome { session: 7, credits: 64 },
            Frame::Telemetry {
                node: 3,
                at: 41,
                values: vec![0.0, -0.0, 1.5, f64::INFINITY, f64::NAN, -1e-300],
            },
            Frame::Credit { credits: 12 },
            Frame::Busy { dropped: 999 },
            Frame::Bye,
            Frame::Error { code: 401, message: "bad token".into() },
        ]
    }

    fn decode_one(bytes: &[u8]) -> Frame {
        match decode_frame(bytes) {
            Ok(Decoded::Frame(f, consumed)) => {
                assert_eq!(consumed, bytes.len());
                f
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn every_frame_type_round_trips_bit_exactly() {
        for f in all_frames() {
            let bytes = f.encode();
            let back = decode_one(&bytes);
            match (&f, &back) {
                (Frame::Telemetry { values: a, .. }, Frame::Telemetry { values: b, .. }) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        if x.is_nan() {
                            assert!(y.is_nan());
                        } else {
                            assert_eq!(x.to_bits(), y.to_bits(), "bit-exact across the wire");
                        }
                    }
                }
                _ => assert_eq!(f, back),
            }
        }
    }

    #[test]
    fn frames_in_a_stream_decode_in_sequence() {
        let mut stream = Vec::new();
        for f in all_frames() {
            stream.extend_from_slice(&f.encode());
        }
        let mut decoded = 0;
        while !stream.is_empty() {
            match decode_frame(&stream).unwrap() {
                Decoded::Frame(_, consumed) => {
                    stream.drain(..consumed);
                    decoded += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(decoded, all_frames().len());
    }

    #[test]
    fn every_truncation_is_incomplete_never_a_panic() {
        let bytes = Frame::Hello { tenant: "t".into(), token: "k".into() }.encode();
        for cut in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), Decoded::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn crc_catches_any_single_byte_flip_after_the_magic() {
        let bytes = Frame::Welcome { session: 1, credits: 8 }.encode();
        for i in 2..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad) {
                Ok(Decoded::Corrupt(e, skip)) => {
                    assert!(!e.is_fatal());
                    assert!(skip >= HEADER_LEN);
                }
                Ok(Decoded::Incomplete) => {
                    // A corrupted length byte can make the frame look
                    // longer than the buffer — the reader waits, and the
                    // connection-level partial-frame timeout reaps it.
                }
                Err(e) => assert!(e.is_fatal(), "only desyncs may be fatal"),
                Ok(Decoded::Frame(..)) => panic!("flip at {i} slipped through the crc"),
            }
        }
    }

    #[test]
    fn magic_and_version_damage_is_fatal() {
        let bytes = Frame::Bye.encode();
        let mut bad = bytes.clone();
        bad[0] = 0x00;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadMagic { got: [0x00, 0xBA] }));
        let mut bad = bytes.clone();
        bad[2] = 9;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadVersion { got: 9 }));
    }

    #[test]
    fn hostile_length_is_rejected_before_any_allocation() {
        let mut bytes = Frame::Bye.encode();
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(FrameError::Oversize { len: u32::MAX }));
    }

    #[test]
    fn corrupt_frames_are_skippable_and_the_stream_resyncs() {
        let mut stream = Frame::Credit { credits: 3 }.encode();
        let tail_at = stream.len();
        stream[tail_at - 1] ^= 0xFF; // payload damage
        stream.extend_from_slice(&Frame::Bye.encode());
        let Ok(Decoded::Corrupt(FrameError::BadCrc { .. }, skip)) = decode_frame(&stream) else {
            panic!("first frame should be corrupt");
        };
        stream.drain(..skip);
        assert!(matches!(decode_frame(&stream), Ok(Decoded::Frame(Frame::Bye, _))));
    }

    #[test]
    fn sample_conversion_round_trips() {
        let s = TelemetrySample { node: 9, at: 100, values: vec![1.0, 2.0] };
        let f = telemetry_frame(&s);
        assert_eq!(to_sample(&f), Some(s));
        assert_eq!(to_sample(&Frame::Bye), None);
    }

    #[test]
    fn reading_count_cap_bounds_allocation() {
        // Hand-build a telemetry payload claiming 2^40 readings.
        let mut p = Vec::new();
        put_uvarint(&mut p, 1); // node
        put_uvarint(&mut p, 0); // at
        put_uvarint(&mut p, 1 << 40); // absurd count
        let len = p.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(T_TELEMETRY);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&frame_crc(VERSION, T_TELEMETRY, len, &p).to_le_bytes());
        bytes.extend_from_slice(&p);
        match decode_frame(&bytes) {
            Ok(Decoded::Corrupt(FrameError::Malformed { what }, _)) => {
                assert!(what.contains("cap"));
            }
            other => panic!("expected a malformed verdict, got {other:?}"),
        }
    }
}
