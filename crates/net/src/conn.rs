//! Per-connection state: protocol sniffing, buffered framing, bounded
//! queues and the timestamps the gateway's timeout reaper consults.
//!
//! A connection is a plain state machine over non-blocking byte I/O —
//! no threads, no async. The gateway pump advances every connection a
//! little each tick; all buffers are explicitly bounded so a slow,
//! silent or hostile peer costs a bounded amount of memory:
//!
//! * read buffer — capped at one maximal frame (or one HTTP head),
//! * write buffer — capped at [`WBUF_CAP`]; a peer that stops reading
//!   long enough to exceed it is disconnected (slow-reader defence),
//! * telemetry queue — capped at the tenant's configured
//!   `queue_capacity`; overflow is shed with a BUSY frame, never
//!   buffered unboundedly (flow control exists so well-behaved clients
//!   never hit this).

use crate::frame::{Frame, HEADER_LEN, MAX_PAYLOAD};
use crate::http::MAX_HEAD;
use crate::tenant::TenantConfig;
use crate::transport::ByteStream;
use alba_serve::TelemetrySample;
use std::collections::VecDeque;
use std::io::ErrorKind;

/// Write-buffer cap: a peer that lets this much queued output pile up
/// is not reading and gets disconnected.
pub const WBUF_CAP: usize = 256 * 1024;
/// Bytes per read call.
const READ_CHUNK: usize = 4096;

/// Where a connection is in its life cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnPhase {
    /// No bytes yet — protocol undecided.
    Sniffing,
    /// Wire protocol; HELLO not yet received.
    AwaitHello,
    /// Admitted wire session, streaming telemetry.
    Open,
    /// BYE received: deliver the remaining queue, then close.
    ByeWait,
    /// HTTP control-plane request in flight.
    Http,
    /// Response or error queued; close once the write buffer drains.
    Draining,
    /// Finished — the gateway reaps it.
    Closed,
}

/// One gateway connection.
pub struct Conn {
    pub(crate) stream: Box<dyn ByteStream>,
    /// Server-assigned session id (accept order), 1-based.
    pub(crate) session: u64,
    pub(crate) phase: ConnPhase,
    pub(crate) rbuf: Vec<u8>,
    pub(crate) wbuf: Vec<u8>,
    /// Accepted telemetry awaiting the next gateway poll. Bounded by
    /// `tenant.queue_capacity` via an explicit check in the gateway.
    // alba-lint: allow(no-unbounded-channel) reason="bounded by tenant queue_capacity; the gateway sheds with a BUSY frame before pushing past it"
    pub(crate) queue: VecDeque<TelemetrySample>,
    /// Admitted tenant config (`Open`/`ByeWait` phases only).
    pub(crate) tenant: Option<TenantConfig>,
    /// Flow-control credits the peer currently holds.
    pub(crate) credits: u32,
    /// Telemetry frames shed on this connection (reported in BUSY).
    pub(crate) dropped: u64,
    /// Tick of the last byte received.
    pub(crate) last_activity: usize,
    /// Tick at which the currently-buffered partial frame (or request
    /// head) started — the slowloris clock.
    pub(crate) partial_since: Option<usize>,
    /// Peer saw EOF on the read side.
    pub(crate) eof: bool,
}

impl Conn {
    /// Wraps a freshly-accepted stream.
    pub fn new(stream: Box<dyn ByteStream>, session: u64, now: usize) -> Self {
        Self {
            stream,
            session,
            phase: ConnPhase::Sniffing,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            queue: VecDeque::with_capacity(8),
            tenant: None,
            credits: 0,
            dropped: 0,
            last_activity: now,
            partial_since: None,
            eof: false,
        }
    }

    /// The read-buffer cap for the current phase: one maximal wire
    /// frame, or one HTTP head. Beyond it the peer gets no more reads
    /// until the buffer shrinks (framing backpressure).
    fn rbuf_cap(&self) -> usize {
        match self.phase {
            ConnPhase::Http => MAX_HEAD + 1,
            _ => HEADER_LEN + MAX_PAYLOAD as usize,
        }
    }

    /// Reads available bytes (up to the phase's cap). Returns the byte
    /// count; sets `eof` on peer close and `Closed` on hard errors.
    pub fn fill(&mut self, now: usize) -> usize {
        let mut total = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        while self.rbuf.len() < self.rbuf_cap() {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.phase = ConnPhase::Closed;
                    break;
                }
            }
        }
        if total > 0 {
            self.last_activity = now;
        }
        total
    }

    /// Flushes as much of the write buffer as the peer will take.
    pub fn flush(&mut self) {
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => break,
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.phase = ConnPhase::Closed;
                    break;
                }
            }
        }
    }

    /// Queues a frame for the peer. Returns `false` (and closes) when
    /// the write buffer cap says the peer has stopped reading.
    pub fn send(&mut self, frame: &Frame) -> bool {
        self.wbuf.extend_from_slice(&frame.encode());
        if self.wbuf.len() > WBUF_CAP {
            self.stream.close();
            self.phase = ConnPhase::Closed;
            return false;
        }
        true
    }

    /// Queues raw bytes (HTTP responses).
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Transitions into `Draining`: flush what is queued, then close.
    pub fn drain_then_close(&mut self) {
        self.phase = ConnPhase::Draining;
    }

    /// Finishes a `Draining` connection whose buffer has emptied, and
    /// reaps connections whose peer vanished.
    pub fn settle(&mut self) {
        match self.phase {
            ConnPhase::Draining if self.wbuf.is_empty() => {
                self.stream.close();
                self.phase = ConnPhase::Closed;
            }
            ConnPhase::Draining | ConnPhase::Closed => {}
            _ if self.eof && self.rbuf.is_empty() && self.queue.is_empty() => {
                // Peer hung up and everything buffered has been
                // consumed; nothing more can arrive.
                self.stream.close();
                self.phase = ConnPhase::Closed;
            }
            _ => {}
        }
    }

    /// True while the connection holds (or may still produce) samples.
    pub fn is_wire_session(&self) -> bool {
        matches!(
            self.phase,
            ConnPhase::Sniffing | ConnPhase::AwaitHello | ConnPhase::Open | ConnPhase::ByeWait
        )
    }

    /// The admitted tenant's name, if any.
    pub fn tenant_name(&self) -> Option<&str> {
        self.tenant.as_ref().map(|t| t.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemPipe;

    fn pair() -> (Conn, MemPipe) {
        let (a, b) = MemPipe::pair(1 << 20);
        (Conn::new(Box::new(a), 1, 0), b)
    }

    #[test]
    fn fill_and_flush_move_bytes() {
        let (mut conn, mut peer) = pair();
        peer.write(b"abc").unwrap();
        assert_eq!(conn.fill(5), 3);
        assert_eq!(conn.rbuf, b"abc");
        assert_eq!(conn.last_activity, 5);
        conn.send_raw(b"xyz");
        conn.flush();
        let mut buf = [0u8; 8];
        assert_eq!(peer.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"xyz");
    }

    #[test]
    fn eof_then_settle_reaps_the_connection() {
        let (mut conn, mut peer) = pair();
        peer.write(b"x").unwrap();
        peer.close();
        conn.fill(1);
        assert!(conn.eof);
        conn.rbuf.clear(); // pretend the byte was consumed
        conn.settle();
        assert_eq!(conn.phase, ConnPhase::Closed);
    }

    #[test]
    fn draining_closes_only_after_the_buffer_empties() {
        let (mut conn, mut peer) = pair();
        conn.send(&Frame::Bye);
        conn.drain_then_close();
        conn.settle();
        assert_eq!(conn.phase, ConnPhase::Draining, "bytes still queued");
        conn.flush();
        conn.settle();
        assert_eq!(conn.phase, ConnPhase::Closed);
        let mut buf = [0u8; 64];
        assert!(peer.read(&mut buf).unwrap() >= HEADER_LEN, "the BYE reached the peer");
    }

    #[test]
    fn wbuf_cap_disconnects_a_peer_that_stopped_reading() {
        let (mut conn, _peer) = pair();
        let big = Frame::Error { code: 1, message: "x".repeat(200) };
        let mut ok = true;
        for _ in 0..(WBUF_CAP / 100) + 10 {
            ok = conn.send(&big);
            if !ok {
                break;
            }
        }
        assert!(!ok, "cap must trip");
        assert_eq!(conn.phase, ConnPhase::Closed);
    }
}
