//! Multi-tenant admission control: who may connect, with how many
//! concurrent sessions, and how much in-flight telemetry each session
//! may hold.
//!
//! A *tenant* is a telemetry-producing campaign (one instrumented
//! application, one sub-fleet) with a shared-secret token. Admission is
//! deliberately boring: exact token match, a concurrent-connection
//! quota, and per-connection flow-control parameters. Rejections are
//! typed ([`Reject`]) so the gateway can answer with a machine-readable
//! error frame and count the rejection in the tenant's stats row —
//! an over-quota connect is the tenant's capacity problem, a bad token
//! is a misconfiguration (or an intruder), and the operator response
//! differs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One tenant's static configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Stable tenant name (metric label, stats key).
    pub name: String,
    /// Shared-secret token a connection must present in its HELLO.
    pub token: String,
    /// Concurrent connections the tenant may hold open.
    pub max_connections: usize,
    /// Flow-control credits granted in the WELCOME frame.
    pub initial_credits: u32,
    /// Per-connection ingest queue capacity (telemetry frames buffered
    /// between gateway polls).
    pub queue_capacity: usize,
}

impl TenantConfig {
    /// A tenant with sensible defaults: 4 connections, credits sized to
    /// the queue so a well-behaved client never sees BUSY.
    pub fn new(name: &str, token: &str) -> Self {
        Self {
            name: name.to_string(),
            token: token.to_string(),
            max_connections: 4,
            initial_credits: 64,
            queue_capacity: 64,
        }
    }
}

/// Why a connection was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// No tenant of that name is configured.
    UnknownTenant,
    /// The token does not match the tenant's secret.
    BadToken,
    /// The tenant is at its concurrent-connection quota.
    OverQuota,
}

impl Reject {
    /// Wire error code carried in the ERROR frame.
    pub fn code(&self) -> u16 {
        match self {
            Reject::UnknownTenant => 404,
            Reject::BadToken => 401,
            Reject::OverQuota => 429,
        }
    }

    /// Stable short name (metric label).
    pub fn name(&self) -> &'static str {
        match self {
            Reject::UnknownTenant => "unknown_tenant",
            Reject::BadToken => "bad_token",
            Reject::OverQuota => "over_quota",
        }
    }
}

/// Tracks configured tenants and their live connection counts.
#[derive(Clone, Debug, Default)]
pub struct Admission {
    tenants: BTreeMap<String, TenantConfig>,
    active: BTreeMap<String, usize>,
}

impl Admission {
    /// Admission control over the given tenant set.
    pub fn new(tenants: Vec<TenantConfig>) -> Self {
        let tenants = tenants.into_iter().map(|t| (t.name.clone(), t)).collect();
        Self { tenants, active: BTreeMap::new() }
    }

    /// Configured tenant names, sorted (deterministic stats order).
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// Attempts to admit a connection presenting `(tenant, token)`.
    /// Success reserves a connection slot — pair with [`Admission::release`].
    pub fn admit(&mut self, tenant: &str, token: &str) -> Result<TenantConfig, Reject> {
        let Some(cfg) = self.tenants.get(tenant) else { return Err(Reject::UnknownTenant) };
        // Comparison of configured secrets; constant-time comparison is
        // out of scope for a reproduction (no real secrets here).
        if cfg.token != token {
            return Err(Reject::BadToken);
        }
        let active = self.active.entry(tenant.to_string()).or_insert(0);
        if *active >= cfg.max_connections {
            return Err(Reject::OverQuota);
        }
        *active += 1;
        Ok(cfg.clone())
    }

    /// Returns a tenant's connection slot (on close or handshake fail).
    pub fn release(&mut self, tenant: &str) {
        if let Some(n) = self.active.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }

    /// Live connection count for one tenant.
    pub fn active(&self, tenant: &str) -> usize {
        self.active.get(tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Admission {
        let mut volta = TenantConfig::new("volta", "v-token");
        volta.max_connections = 2;
        let eclipse = TenantConfig::new("eclipse", "e-token");
        Admission::new(vec![volta, eclipse])
    }

    #[test]
    fn happy_path_admits_and_releases() {
        let mut adm = two_tenants();
        assert_eq!(adm.admit("volta", "v-token").unwrap().name, "volta");
        assert_eq!(adm.active("volta"), 1);
        adm.release("volta");
        assert_eq!(adm.active("volta"), 0);
    }

    #[test]
    fn rejections_are_typed_and_coded() {
        let mut adm = two_tenants();
        assert_eq!(adm.admit("nobody", "x"), Err(Reject::UnknownTenant));
        assert_eq!(adm.admit("volta", "wrong"), Err(Reject::BadToken));
        adm.admit("volta", "v-token").unwrap();
        adm.admit("volta", "v-token").unwrap();
        let rej = adm.admit("volta", "v-token").unwrap_err();
        assert_eq!(rej, Reject::OverQuota);
        assert_eq!(rej.code(), 429);
        assert_eq!(rej.name(), "over_quota");
        // A failed admit holds no slot.
        assert_eq!(adm.active("volta"), 2);
        // Another tenant is unaffected by volta's quota exhaustion.
        assert!(adm.admit("eclipse", "e-token").is_ok());
    }

    #[test]
    fn release_below_zero_saturates() {
        let mut adm = two_tenants();
        adm.release("volta");
        adm.release("ghost");
        assert_eq!(adm.active("volta"), 0);
        assert!(adm.admit("volta", "v-token").is_ok());
    }

    #[test]
    fn tenant_names_are_sorted_for_deterministic_stats() {
        assert_eq!(two_tenants().tenant_names(), vec!["eclipse", "volta"]);
    }
}
