//! A deterministic wire client: replays a fixed per-tick schedule of
//! telemetry batches over the wire protocol, honouring flow control,
//! optionally mangling its own bytes per a [`NetFaultPlan`].
//!
//! The client is the other half of the lockstep harness the replay
//! tests and the gateway example use:
//!
//! ```text
//! loop { client.step(now); gateway.pump(now, ctl); svc.tick_from(&mut gateway); now += 1 }
//! ```
//!
//! Every decision the client makes is a pure function of its schedule,
//! its fault plan and the bytes the server has sent it — no clocks, no
//! RNG at send time (the fault plan is pre-seeded). Two clients built
//! from equal inputs emit byte-identical streams, which is what makes
//! "run the same session twice, compare event logs" a meaningful CI
//! assertion.

use crate::frame::{self, Decoded, Frame};
use crate::transport::ByteStream;
use alba_chaos::{NetFaultKind, NetFaultPlan};
use alba_serve::TelemetrySample;
use std::collections::VecDeque;

/// What happened to the client over one `step`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Telemetry frames written to the wire.
    pub frames_sent: u64,
    /// BUSY frames received (server shed one of our frames).
    pub busy_seen: u64,
    /// Credits received via WELCOME + CREDIT frames.
    pub credits_received: u64,
    /// ERROR frames received.
    pub errors_seen: u64,
    /// Times the client redialled (reconnect faults).
    pub reconnects: u64,
    /// Frames deliberately corrupted by the fault plan.
    pub corrupted: u64,
}

/// Connection state of the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClientPhase {
    /// HELLO sent, awaiting WELCOME.
    Greeting,
    /// Admitted and streaming.
    Streaming,
    /// All batches sent and acknowledged; BYE written.
    Done,
    /// Server refused us or hung up.
    Failed,
}

/// The deterministic wire client.
pub struct WireClient {
    dial: Box<dyn FnMut() -> Box<dyn ByteStream>>,
    stream: Box<dyn ByteStream>,
    phase: ClientPhase,
    tenant: String,
    token: String,
    /// Batches to send, index = source tick.
    schedule: Vec<Vec<TelemetrySample>>,
    /// Next schedule index to enqueue.
    cursor: usize,
    /// Samples waiting for credits (schedule order).
    // alba-lint: allow(no-unbounded-channel) reason="bounded by the finite schedule: holds at most the un-sent remainder of a fixed batch list"
    backlog: VecDeque<TelemetrySample>,
    credits: u32,
    rbuf: Vec<u8>,
    /// Bytes deferred by partial-frame / slowloris faults.
    pending: Vec<u8>,
    /// Remaining ticks of one-byte-per-tick pacing.
    slowloris_left: usize,
    faults: NetFaultPlan,
    /// Client-local tick counter (fault-plan clock).
    tick: usize,
    stats: ClientStats,
}

impl WireClient {
    /// A client that will redial through `dial`, authenticate as
    /// `(tenant, token)`, and send `schedule[t]` at tick `t`.
    pub fn new(
        mut dial: Box<dyn FnMut() -> Box<dyn ByteStream>>,
        tenant: &str,
        token: &str,
        schedule: Vec<Vec<TelemetrySample>>,
    ) -> Self {
        let stream = dial();
        let mut c = Self {
            dial,
            stream,
            phase: ClientPhase::Greeting,
            tenant: tenant.to_string(),
            token: token.to_string(),
            schedule,
            cursor: 0,
            backlog: VecDeque::with_capacity(64),
            credits: 0,
            rbuf: Vec::new(),
            pending: Vec::new(),
            slowloris_left: 0,
            faults: NetFaultPlan::empty(),
            tick: 0,
            stats: ClientStats::default(),
        };
        c.send_hello();
        c
    }

    /// Attaches a fault plan (call before the first `step`).
    pub fn with_faults(mut self, faults: NetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Progress + outcome counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// True once every scheduled sample was sent and BYE written, or
    /// the session failed terminally.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, ClientPhase::Done | ClientPhase::Failed)
    }

    /// True when the session ended without being admitted or was cut.
    pub fn is_failed(&self) -> bool {
        self.phase == ClientPhase::Failed
    }

    fn send_hello(&mut self) {
        let hello = Frame::Hello { tenant: self.tenant.clone(), token: self.token.clone() };
        self.write_all(&hello.encode());
        self.phase = ClientPhase::Greeting;
        self.credits = 0;
    }

    fn write_all(&mut self, bytes: &[u8]) {
        // Order preservation: while any bytes are parked in `pending`,
        // everything new parks behind them — otherwise a later frame
        // would overtake a deferred half-frame on the wire.
        if !self.pending.is_empty() {
            self.pending.extend_from_slice(bytes);
            return;
        }
        // MemPipe/TCP may take fewer bytes than offered; park the rest
        // in `pending` and retry next step.
        let mut off = 0usize;
        while off < bytes.len() {
            match self.stream.write(&bytes[off..]) {
                Ok(0) => break,
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        if off < bytes.len() {
            self.pending.extend_from_slice(&bytes[off..]);
        }
    }

    /// One lockstep tick: apply due faults, read server frames, enqueue
    /// this tick's batch, send what credits allow, BYE when drained.
    pub fn step(&mut self, _now: usize) {
        let due: Vec<(NetFaultKind, usize)> =
            self.faults.at(self.tick).map(|e| (e.kind, e.duration)).collect();
        self.tick += 1;
        for (kind, duration) in &due {
            match kind {
                NetFaultKind::Reconnect => {
                    self.stream.close();
                    self.stream = (self.dial)();
                    self.stats.reconnects += 1;
                    self.rbuf.clear();
                    self.pending.clear();
                    self.slowloris_left = 0;
                    self.send_hello();
                }
                NetFaultKind::Slowloris => self.slowloris_left = *duration,
                // CorruptCrc / PartialFrame apply at frame-send time.
                _ => {}
            }
        }
        self.read_server_frames();
        if self.phase == ClientPhase::Failed {
            return;
        }
        // Enqueue this tick's scheduled batch.
        if self.cursor < self.schedule.len() {
            let batch = std::mem::take(&mut self.schedule[self.cursor]);
            self.backlog.extend(batch);
            self.cursor += 1;
        }
        // Slowloris pacing: stage the next frame if nothing is pending,
        // then trickle exactly one byte per tick.
        if self.slowloris_left > 0 && self.phase == ClientPhase::Streaming {
            if self.pending.is_empty() && self.credits > 0 {
                if let Some(sample) = self.backlog.pop_front() {
                    self.credits -= 1;
                    self.stats.frames_sent += 1;
                    self.pending = frame::telemetry_frame(&sample).encode();
                }
            }
            if !self.pending.is_empty() {
                // Straight to the stream: write_all would park the byte
                // behind the rest of `pending`.
                if matches!(self.stream.write(&[self.pending[0]]), Ok(n) if n > 0) {
                    self.pending.remove(0);
                }
            }
            self.slowloris_left -= 1;
            return; // pacing: nothing else this tick
        }
        // Flush previously deferred bytes (partial frames, slowloris).
        if !self.pending.is_empty() {
            let bytes = std::mem::take(&mut self.pending);
            self.write_all(&bytes);
        }
        if self.phase != ClientPhase::Streaming {
            return;
        }
        // Send what flow control allows.
        let corrupt = due.iter().any(|(k, _)| *k == NetFaultKind::CorruptCrc);
        let partial = due.iter().any(|(k, _)| *k == NetFaultKind::PartialFrame);
        let mut first = true;
        while self.credits > 0 {
            let Some(sample) = self.backlog.pop_front() else { break };
            let mut bytes = frame::telemetry_frame(&sample).encode();
            if corrupt && first {
                // Flip a payload byte: the CRC check must catch it.
                let last = bytes.len() - 1;
                bytes[last] ^= 0x55;
                self.stats.corrupted += 1;
            }
            self.credits -= 1;
            self.stats.frames_sent += 1;
            if partial && first {
                // First half now, second half next step via `pending`.
                let mid = bytes.len() / 2;
                self.write_all(&bytes[..mid]);
                self.pending.extend_from_slice(&bytes[mid..]);
            } else {
                self.write_all(&bytes);
            }
            first = false;
        }
        // Session complete: everything scheduled has been sent.
        if self.cursor >= self.schedule.len() && self.backlog.is_empty() && self.pending.is_empty()
        {
            self.write_all(&Frame::Bye.encode());
            self.phase = ClientPhase::Done;
        }
    }

    fn read_server_frames(&mut self) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.phase != ClientPhase::Done {
                        self.phase = ClientPhase::Failed;
                    }
                    break;
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock or peer reset
            }
        }
        loop {
            match frame::decode_frame(&self.rbuf) {
                Ok(Decoded::Frame(f, consumed)) => {
                    self.rbuf.drain(..consumed);
                    self.apply_server_frame(f);
                }
                Ok(Decoded::Corrupt(_, skip)) => {
                    self.rbuf.drain(..skip);
                }
                Ok(Decoded::Incomplete) => break,
                Err(_) => {
                    self.phase = ClientPhase::Failed;
                    break;
                }
            }
        }
    }

    fn apply_server_frame(&mut self, f: Frame) {
        match f {
            Frame::Welcome { credits, .. } => {
                self.credits = credits;
                self.stats.credits_received += u64::from(credits);
                if self.phase == ClientPhase::Greeting {
                    self.phase = ClientPhase::Streaming;
                }
            }
            Frame::Credit { credits } => {
                self.credits = self.credits.saturating_add(credits);
                self.stats.credits_received += u64::from(credits);
            }
            Frame::Busy { .. } => {
                self.stats.busy_seen += 1;
            }
            Frame::Error { .. } => {
                self.stats.errors_seen += 1;
                self.phase = ClientPhase::Failed;
            }
            // Server never sends client->server frames; ignore.
            _ => {}
        }
    }
}

/// Drives a [`WireClient`] and a [`Gateway`](crate::gateway::Gateway)
/// in lockstep as one [`NetFrontier`]: each service tick steps the
/// client, pumps the gateway, and drains what arrived. This is how
/// `FleetService::run_frontier` runs a full live network session
/// single-threaded and deterministically — the shape the replay tests
/// and the `fleet_gateway` example both use.
pub struct Lockstep {
    /// The driving client.
    pub client: WireClient,
    /// The gateway under test.
    pub gateway: crate::gateway::Gateway,
}

impl alba_serve::NetFrontier for Lockstep {
    fn poll(&mut self, now: usize) -> Vec<TelemetrySample> {
        self.client.step(now);
        self.gateway.pump(now, None);
        alba_serve::NetFrontier::poll(&mut self.gateway, now)
    }

    fn is_done(&self, now: usize) -> bool {
        self.client.is_done() && alba_serve::NetFrontier::is_done(&self.gateway, now)
    }

    fn tenant_stats(&self) -> Vec<alba_serve::TenantStats> {
        alba_serve::NetFrontier::tenant_stats(&self.gateway)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{Gateway, GatewayConfig};
    use crate::tenant::TenantConfig;
    use crate::transport::MemListener;
    use alba_serve::NetFrontier;

    fn schedule(ticks: usize, per_tick: usize) -> Vec<Vec<TelemetrySample>> {
        (0..ticks)
            .map(|t| {
                (0..per_tick)
                    .map(|n| TelemetrySample { node: n, at: t, values: vec![t as f64, n as f64] })
                    .collect()
            })
            .collect()
    }

    fn harness(tenant_cfg: TenantConfig) -> (Gateway, WireClient) {
        let (listener, dialer) = MemListener::new(1 << 20);
        let name = tenant_cfg.name.clone();
        let token = tenant_cfg.token.clone();
        let gw = Gateway::new(GatewayConfig::new(vec![tenant_cfg]), Box::new(listener));
        let client = WireClient::new(
            Box::new(move || Box::new(dialer.dial())),
            &name,
            &token,
            schedule(10, 2),
        );
        (gw, client)
    }

    fn run(gw: &mut Gateway, client: &mut WireClient, max_ticks: usize) -> Vec<TelemetrySample> {
        let mut delivered = Vec::new();
        for now in 0..max_ticks {
            client.step(now);
            gw.pump(now, None);
            delivered.extend(gw.poll(now));
            if client.is_done() && gw.is_done(now) {
                break;
            }
        }
        delivered
    }

    #[test]
    fn clean_session_delivers_every_scheduled_sample() {
        let (mut gw, mut client) = harness(TenantConfig::new("volta", "tok"));
        let delivered = run(&mut gw, &mut client, 100);
        assert_eq!(delivered.len(), 20);
        assert!(!client.is_failed());
        assert_eq!(client.stats().frames_sent, 20);
        assert_eq!(client.stats().busy_seen, 0, "flow control means no sheds");
        assert_eq!(gw.ingest_log().records(), 20);
    }

    #[test]
    fn tight_credits_throttle_but_lose_nothing() {
        let mut cfg = TenantConfig::new("volta", "tok");
        cfg.initial_credits = 1;
        cfg.queue_capacity = 1;
        let (mut gw, mut client) = harness(cfg);
        let delivered = run(&mut gw, &mut client, 200);
        assert_eq!(delivered.len(), 20, "credits pace, they do not drop");
        assert_eq!(client.stats().busy_seen, 0);
    }

    #[test]
    fn equal_inputs_produce_identical_sessions() {
        let capture = |seed_faults: NetFaultPlan| {
            let (listener, dialer) = MemListener::new(1 << 20);
            let gw_cfg = GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]);
            let mut gw = Gateway::new(gw_cfg, Box::new(listener));
            let mut client = WireClient::new(
                Box::new(move || Box::new(dialer.dial())),
                "volta",
                "tok",
                schedule(8, 3),
            )
            .with_faults(seed_faults);
            run(&mut gw, &mut client, 200);
            gw.ingest_log().as_bytes().to_vec()
        };
        let plan = NetFaultPlan::generate(&alba_chaos::NetChaosConfig::light(), 9, 40);
        let a = capture(plan.clone());
        let b = capture(plan);
        assert_eq!(a, b, "equal schedule + faults -> byte-identical journal");
    }

    #[test]
    fn corrupt_and_partial_faults_do_not_kill_the_session() {
        let mut plan = NetFaultPlan::empty();
        plan.events.push(alba_chaos::NetFaultEvent {
            kind: NetFaultKind::CorruptCrc,
            tick: 2,
            duration: 1,
        });
        plan.events.push(alba_chaos::NetFaultEvent {
            kind: NetFaultKind::PartialFrame,
            tick: 4,
            duration: 1,
        });
        let (listener, dialer) = MemListener::new(1 << 20);
        let gw_cfg = GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]);
        let mut gw = Gateway::new(gw_cfg, Box::new(listener));
        let mut client = WireClient::new(
            Box::new(move || Box::new(dialer.dial())),
            "volta",
            "tok",
            schedule(8, 2),
        )
        .with_faults(plan);
        let delivered = run(&mut gw, &mut client, 200);
        assert!(!client.is_failed(), "mangling our own frames must not desync us");
        assert_eq!(client.stats().corrupted, 1);
        // One frame lost to the CRC flip; the partial frame arrives late
        // but intact.
        assert_eq!(delivered.len(), 15);
        assert_eq!(gw.tenant_stats()[0].frames_corrupt, 1);
    }

    #[test]
    fn reconnect_storm_churns_sessions_but_finishes() {
        // Horizon 12 keeps every reconnect inside the ~12-tick session
        // (events land in the first three quarters of the horizon).
        let plan = NetFaultPlan::generate(&alba_chaos::NetChaosConfig::reconnect_storm(4), 3, 12);
        let (listener, dialer) = MemListener::new(1 << 20);
        let gw_cfg = GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]);
        let mut gw = Gateway::new(gw_cfg, Box::new(listener));
        let mut client = WireClient::new(
            Box::new(move || Box::new(dialer.dial())),
            "volta",
            "tok",
            schedule(10, 1),
        )
        .with_faults(plan);
        run(&mut gw, &mut client, 300);
        assert!(client.is_done());
        assert_eq!(client.stats().reconnects, 4);
        let row = &gw.tenant_stats()[0];
        assert_eq!(row.connects, 5, "initial connect + 4 reconnects all admitted");
        assert_eq!(gw.open_connections(), 0);
    }

    #[test]
    fn bad_token_fails_fast() {
        let (listener, dialer) = MemListener::new(1 << 20);
        let gw_cfg = GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]);
        let mut gw = Gateway::new(gw_cfg, Box::new(listener));
        let mut client = WireClient::new(
            Box::new(move || Box::new(dialer.dial())),
            "volta",
            "WRONG",
            schedule(2, 1),
        );
        run(&mut gw, &mut client, 50);
        assert!(client.is_failed());
        assert_eq!(client.stats().errors_seen, 1);
        assert_eq!(client.stats().frames_sent, 0);
    }
}
