//! The replayable ingest log: every telemetry frame the gateway accepts
//! is journaled with its *delivery tick*, so a captured network session
//! can be replayed byte-identically through the offline path.
//!
//! This is the net-layer half of the workspace's replay invariant. The
//! serve pipeline is already deterministic given (samples, ticks); the
//! gateway extends that across the wire by recording exactly which
//! samples it handed the service at which tick. Replaying the log
//! through [`IngestLogReplay`] (a
//! [`NetFrontier`](alba_serve::NetFrontier)) feeds a fresh service the
//! same sequence, so the event log, alarms, label requests and final
//! model all come out identical — asserted by `crates/net/tests/`.
//!
//! ## Record layout
//!
//! | field | size | notes |
//! |-------|-----:|-------|
//! | length | 4 (`u32` LE) | payload bytes that follow the CRC |
//! | CRC-32 | 4 (`u32` LE) | over the payload |
//! | delivery tick | varint | service tick the sample was delivered at |
//! | node | varint | |
//! | at | varint | source tick carried by the frame |
//! | n | varint | reading count |
//! | column | rest | `alba-store` gauge codec, bit-exact |
//!
//! A torn tail (crash mid-append) is tolerated on read — parsing stops
//! at the truncation, mirroring `LabelJournal` semantics. Corruption
//! *before* the tail is a typed error: silently resuming after a bad
//! CRC would replay a different session than was captured.

use crate::error::NetError;
use alba_data::MetricKind;
use alba_serve::{NetFrontier, TelemetrySample};
use alba_store::codec::{get_uvarint, put_uvarint, read_u32_le};
use alba_store::{crc32, decode_column, encode_column};
use std::path::Path;

/// Cap on readings per record, mirroring the wire codec's cap.
const MAX_READINGS: u64 = 65_536;

/// An append-only in-memory ingest log (persist with
/// [`IngestLog::write_to`]).
#[derive(Clone, Debug, Default)]
pub struct IngestLog {
    bytes: Vec<u8>,
    records: u64,
}

impl IngestLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Journals one accepted sample delivered at `tick`.
    pub fn append(&mut self, tick: usize, sample: &TelemetrySample) {
        let mut payload = Vec::with_capacity(16 + sample.values.len() * 2);
        put_uvarint(&mut payload, tick as u64);
        put_uvarint(&mut payload, sample.node as u64);
        put_uvarint(&mut payload, sample.at as u64);
        put_uvarint(&mut payload, sample.values.len() as u64);
        payload.extend_from_slice(&encode_column(&sample.values, MetricKind::Gauge));
        self.bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.bytes.extend_from_slice(&payload);
        self.records += 1;
    }

    /// Records journaled so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The serialized log.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Writes the log to a file (atomic enough for a capture artifact:
    /// temp file + rename).
    pub fn write_to(&self, path: &Path) -> Result<(), NetError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &self.bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// One parsed log record.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Service tick the sample was delivered at.
    pub tick: usize,
    /// The sample, bit-exact.
    pub sample: TelemetrySample,
}

/// Parses a serialized ingest log. A torn tail is tolerated (the
/// trailing partial record is dropped); corruption before the tail is a
/// [`NetError::CorruptLog`].
pub fn parse_log(bytes: &[u8]) -> Result<Vec<LogRecord>, NetError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(len) = read_u32_le(bytes, pos) else { break };
        let Some(expected_crc) = read_u32_le(bytes, pos + 4) else { break };
        let start = pos + 8;
        let Some(end) = start.checked_add(len as usize) else {
            return Err(NetError::CorruptLog { offset: pos, what: "record length overflows" });
        };
        let Some(payload) = bytes.get(start..end) else { break };
        if crc32(payload) != expected_crc {
            return Err(NetError::CorruptLog { offset: pos, what: "record crc mismatch" });
        }
        let mut p = 0usize;
        let tick = get_uvarint(payload, &mut p)
            .map_err(|_| NetError::CorruptLog { offset: pos, what: "truncated tick" })?;
        let node = get_uvarint(payload, &mut p)
            .map_err(|_| NetError::CorruptLog { offset: pos, what: "truncated node" })?;
        let at = get_uvarint(payload, &mut p)
            .map_err(|_| NetError::CorruptLog { offset: pos, what: "truncated at" })?;
        let n = get_uvarint(payload, &mut p)
            .map_err(|_| NetError::CorruptLog { offset: pos, what: "truncated count" })?;
        if n > MAX_READINGS {
            return Err(NetError::CorruptLog { offset: pos, what: "reading count exceeds cap" });
        }
        let column = payload.get(p..).unwrap_or(&[]);
        let values = decode_column(column, n as usize, MetricKind::Gauge)
            .map_err(|_| NetError::CorruptLog { offset: pos, what: "corrupt reading column" })?;
        records.push(LogRecord {
            tick: tick as usize,
            sample: TelemetrySample { node: node as usize, at: at as usize, values },
        });
        pos = end;
    }
    Ok(records)
}

/// Replays a captured ingest log as a [`NetFrontier`]: the same samples
/// at the same ticks the live gateway delivered them.
#[derive(Clone, Debug)]
pub struct IngestLogReplay {
    /// Records in capture order; `cursor` advances monotonically because
    /// delivery ticks were journaled monotonically.
    records: Vec<LogRecord>,
    cursor: usize,
    last_tick: Option<usize>,
}

impl IngestLogReplay {
    /// Builds a replay from serialized log bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NetError> {
        Ok(Self::from_records(parse_log(bytes)?))
    }

    /// Builds a replay from a log file.
    pub fn open(path: &Path) -> Result<Self, NetError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Builds a replay from parsed records (capture order).
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        let last_tick = records.iter().map(|r| r.tick).max();
        Self { records, cursor: 0, last_tick }
    }

    /// Total records in the capture.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the capture holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl NetFrontier for IngestLogReplay {
    fn poll(&mut self, now: usize) -> Vec<TelemetrySample> {
        let mut out = Vec::new();
        while let Some(rec) = self.records.get(self.cursor) {
            if rec.tick > now {
                break;
            }
            // rec.tick < now can only happen if the caller skipped a
            // tick; delivering late preserves sample order and loses
            // nothing (the service's ingest queues buffer per node).
            out.push(rec.sample.clone());
            self.cursor += 1;
        }
        out
    }

    fn is_done(&self, now: usize) -> bool {
        self.cursor >= self.records.len() && self.last_tick.is_none_or(|t| now > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: usize, at: usize, v: f64) -> TelemetrySample {
        TelemetrySample { node, at, values: vec![v, -v, f64::NAN] }
    }

    fn capture() -> IngestLog {
        let mut log = IngestLog::new();
        log.append(2, &sample(0, 0, 1.5));
        log.append(2, &sample(1, 0, -0.0));
        log.append(3, &sample(0, 1, 1e300));
        log.append(5, &sample(1, 3, f64::MIN_POSITIVE));
        log
    }

    #[test]
    fn log_round_trips_bit_exactly() {
        let log = capture();
        assert_eq!(log.records(), 4);
        let records = parse_log(log.as_bytes()).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].tick, 2);
        assert_eq!(records[3].sample.at, 3);
        assert_eq!(records[1].sample.values[1].to_bits(), 0.0f64.to_bits());
        assert!(records[0].sample.values[2].is_nan());
        assert_eq!(records[2].sample.values[0], 1e300);
    }

    #[test]
    fn replay_delivers_same_samples_at_same_ticks() {
        let log = capture();
        let mut replay = IngestLogReplay::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(replay.len(), 4);
        assert!(replay.poll(0).is_empty());
        assert!(replay.poll(1).is_empty());
        let t2 = replay.poll(2);
        assert_eq!(t2.len(), 2, "both tick-2 deliveries, in capture order");
        assert_eq!((t2[0].node, t2[1].node), (0, 1));
        assert_eq!(replay.poll(3).len(), 1);
        assert!(!replay.is_done(4), "tick-5 record still pending");
        assert!(replay.poll(4).is_empty());
        assert_eq!(replay.poll(5).len(), 1);
        assert!(!replay.is_done(5), "the service still drains tick 5 itself");
        assert!(replay.is_done(6));
    }

    #[test]
    fn torn_tail_is_tolerated_like_the_label_journal() {
        let log = capture();
        let full = log.as_bytes();
        for cut in [full.len() - 1, full.len() - 7, full.len() - 11] {
            let records = parse_log(&full[..cut]).unwrap();
            assert_eq!(records.len(), 3, "the torn final record is dropped");
        }
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error_not_a_silent_skip() {
        let log = capture();
        let mut bytes = log.as_bytes().to_vec();
        bytes[10] ^= 0xFF; // damage the first record's payload
        match parse_log(&bytes) {
            Err(NetError::CorruptLog { offset: 0, .. }) => {}
            other => panic!("expected CorruptLog at offset 0, got {other:?}"),
        }
    }

    #[test]
    fn empty_log_replays_as_immediately_done() {
        let replay = IngestLogReplay::from_bytes(&[]).unwrap();
        assert!(replay.is_empty());
        assert!(replay.is_done(0));
    }

    #[test]
    fn log_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("alba_net_log_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capture.ilog");
        let log = capture();
        log.write_to(&path).unwrap();
        let replay = IngestLogReplay::open(&path).unwrap();
        assert_eq!(replay.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
