//! # alba-net
//!
//! The deterministic network frontier for the ALBADross fleet service:
//! wire ingest, an HTTP control plane and multi-tenant admission on a
//! single listener — with every accepted frame journaled so a captured
//! network session replays byte-identically offline.
//!
//! ALBADross's serving story (RUAD §6) assumes telemetry *arrives*; a
//! production deployment needs the arriving part: framing, corruption
//! handling, backpressure against bursty compute-node collectors, and a
//! scrape/debug surface for operators. This crate supplies that edge
//! without surrendering the workspace's replay invariant:
//!
//! * [`frame`] — the length-prefixed, CRC-checked binary wire protocol
//!   for 1 Hz telemetry (varint + XOR-column codec shared with
//!   `alba-store`); corruption with known extent is skipped, desync is
//!   fatal,
//! * [`transport`] — non-blocking byte-stream abstraction: real TCP
//!   (`std::net`, no async runtime) and an in-memory pipe with the same
//!   `WouldBlock` semantics for deterministic single-threaded tests,
//! * [`tenant`] — admission control: shared-secret tokens, concurrent
//!   connection quotas, per-connection flow-control parameters,
//! * [`conn`] — per-connection state machines with explicitly bounded
//!   read/write/ingest buffers,
//! * [`gateway`] — the poll loop tying it together; implements
//!   [`NetFrontier`](alba_serve::NetFrontier) so
//!   [`FleetService::tick_from`](alba_serve::FleetService::tick_from)
//!   can drink from the network exactly as it drinks from a replay,
//! * [`http`] — the GET-only HTTP/1.1 control plane (stats, alarms,
//!   labels, per-node views, tenant stats, Prometheus scrape),
//!   multiplexed by protocol sniffing,
//! * [`journal`] — the replayable ingest log and its
//!   [`IngestLogReplay`] frontier,
//! * [`client`] — a deterministic wire client for tests, benches and
//!   the `fleet_gateway` example, with `alba-chaos` fault injection
//!   (corrupt CRCs, partial frames, slowloris, reconnect storms).
//!
//! ## Determinism contract
//!
//! The gateway emits obs counters/gauges/histograms only — never obs
//! *events*, which are the replay-identity artifact. Connections are
//! advanced and drained in accept order; under the lockstep harness
//! (client step → gateway pump → service tick) the full stack is
//! reproducible, and under free-running TCP the ingest journal is the
//! authoritative capture: replaying it yields a byte-identical event
//! log and a bit-identical model, asserted in `crates/net/tests/`.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod error;
pub mod frame;
pub mod gateway;
pub mod http;
pub mod journal;
pub mod tenant;
pub mod transport;

pub use client::{ClientStats, Lockstep, WireClient};
pub use error::{FrameError, NetError};
pub use frame::{Decoded, Frame};
pub use gateway::{Gateway, GatewayConfig};
pub use http::{ControlPlane, LabelView, NodeView};
pub use journal::{IngestLog, IngestLogReplay, LogRecord};
pub use tenant::{Admission, Reject, TenantConfig};
pub use transport::{
    ByteStream, Listener, MemDialer, MemListener, MemPipe, TcpByteStream, TcpDoor,
};
