//! The tracing acceptance bar (ISSUE 7): two equally-seeded live wire
//! sessions — gateway and service sharing one tracer, with a reconnect
//! storm battering the client — must produce byte-identical trace
//! JSONL and byte-identical flight-recorder dumps. Trace ids are pure
//! functions of `(seed, node, tick)` and hop order is fixed by the
//! lockstep pump, so any divergence means ambient entropy leaked into
//! the causal record.

use std::sync::Arc;

use alba_chaos::{NetChaosConfig, NetFaultPlan};
use alba_net::{Gateway, GatewayConfig, Lockstep, MemListener, TenantConfig, WireClient};
use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig, Tracer};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

/// Everything the identity assertions are judged on.
struct TracedRun {
    trace_log: Vec<String>,
    flightrec: String,
    hops: u64,
    reconnects: u64,
}

/// One live session: a traced gateway + traced service in lockstep,
/// the wire client riding through a deterministic reconnect storm.
fn traced_run(seed: u64) -> TracedRun {
    let tracer = Tracer::new(seed, Arc::new(TickClock::new()), Tracer::DEFAULT_RING);
    let sink = Arc::new(MemorySink::new());
    tracer.set_sink(sink.clone());

    let mut svc = FleetService::with_tracer(test_config(seed), Obs::disabled(), tracer.clone());
    let batches = svc.fleet_batches();
    let storm = NetFaultPlan::generate(&NetChaosConfig::reconnect_storm(4), seed, batches.len());

    let (listener, dialer) = MemListener::new(1 << 20);
    let gateway = Gateway::with_tracer(
        GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
        Box::new(listener),
        Obs::disabled(),
        tracer.clone(),
    );
    let client =
        WireClient::new(Box::new(move || Box::new(dialer.dial())), "volta", "tok", batches)
            .with_faults(storm);
    let mut harness = Lockstep { client, gateway };

    let max_ticks = svc.fleet_batches().len() + 60;
    svc.run_frontier(&mut harness, max_ticks);
    assert!(!harness.client.is_failed(), "storm-battered session must still complete");
    TracedRun {
        trace_log: sink.lines(),
        flightrec: svc.tracer().flightrec("test"),
        hops: svc.tracer().hops_recorded(),
        reconnects: harness.client.stats().reconnects,
    }
}

#[test]
fn equal_seeds_yield_byte_identical_traces_under_a_reconnect_storm() {
    let a = traced_run(42);
    assert!(a.hops > 0, "a traced run must record hops");
    assert!(a.reconnects > 0, "the storm must actually churn sessions");

    // The causal chain spans every layer: gateway decode on the net
    // lane, per-shard pipeline hops, and service-wide stage timings.
    for lane in ["\"lane\":\"net\"", "\"lane\":\"shard0\"", "\"lane\":\"service\""] {
        assert!(
            a.trace_log.iter().any(|l| l.contains(lane)),
            "trace log must contain a {lane} hop"
        );
    }
    assert!(a.flightrec.starts_with("{\"ts\":"), "flightrec leads with its header line");

    // The bar itself: equal seeds, equal bytes — trace log and flight
    // recorder both, even with the reconnect storm in the loop.
    let b = traced_run(42);
    assert_eq!(b.trace_log, a.trace_log, "equal seeds -> byte-identical trace JSONL");
    assert_eq!(b.flightrec, a.flightrec, "equal seeds -> byte-identical flight recorder");
    assert_eq!(b.hops, a.hops);

    // And the assertions are not vacuous: a different seed diverges.
    let c = traced_run(43);
    assert_ne!(c.trace_log, a.trace_log, "different seeds must diverge");
}
