//! The network frontier's acceptance bar: a captured wire session
//! replayed offline is indistinguishable from the live run.
//!
//! Two services with equal seeds are driven to completion — one from a
//! live deterministic client through the gateway (MemPipe transport,
//! then real TCP loopback), one from the ingest journal the live
//! gateway captured. The event logs must be byte-identical and the
//! final deployed models bit-identical; anything less means the
//! network edge leaked nondeterminism into the pipeline.

use std::sync::Arc;

use alba_net::{
    Gateway, GatewayConfig, IngestLogReplay, Lockstep, MemListener, TcpByteStream, TcpDoor,
    TenantConfig, WireClient,
};
use alba_obs::{MemorySink, Obs, TickClock};
use alba_serve::{FleetService, ServeConfig};
use alba_telemetry::Scale;
use albadross::{MonitorConfig, System};

fn test_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(System::Volta, Scale::Smoke, 16, seed);
    cfg.fleet.duration_override_s = Some(150);
    cfg.monitor = MonitorConfig { window: 60, stride: 10, confirm: 2, min_confidence: 0.5 };
    cfg.uncertainty_threshold = 0.3;
    cfg.retrain_batch = 8;
    cfg.max_retrains = 2;
    cfg
}

fn observed_service(seed: u64) -> (FleetService, Arc<MemorySink>) {
    let obs = Obs::with_clock(Arc::new(TickClock::new()));
    let sink = Arc::new(MemorySink::new());
    obs.set_sink(sink.clone());
    (FleetService::with_obs(test_config(seed), obs), sink)
}

/// One complete artifact set from a run: what identity is judged on.
struct RunArtifacts {
    event_log: Vec<String>,
    model_json: String,
    alarms: usize,
    samples_delivered: u64,
}

/// Drives a live wire session through `make_lockstep` and returns the
/// run artifacts plus the captured ingest journal.
fn live_run(
    seed: u64,
    make_lockstep: impl FnOnce(&FleetService) -> Lockstep,
) -> (RunArtifacts, Vec<u8>) {
    let (mut svc, sink) = observed_service(seed);
    let mut harness = make_lockstep(&svc);
    let max_ticks = svc.fleet_batches().len() + 60;
    let stats = svc.run_frontier(&mut harness, max_ticks);
    assert!(!harness.client.is_failed(), "live session must complete cleanly");
    assert_eq!(stats.tenants.len(), 1, "frontier stats ride along on ServiceStats");
    let delivered: u64 = stats.tenants.iter().map(|t| t.samples_delivered).sum();
    (
        RunArtifacts {
            event_log: sink.lines(),
            model_json: svc.model().to_json(),
            alarms: svc.alarms().len(),
            samples_delivered: delivered,
        },
        harness.gateway.ingest_log().as_bytes().to_vec(),
    )
}

/// Replays a captured journal into a fresh equally-seeded service.
fn replay_run(seed: u64, capture: &[u8]) -> RunArtifacts {
    let (mut svc, sink) = observed_service(seed);
    let mut replay = IngestLogReplay::from_bytes(capture).expect("capture must parse");
    let max_ticks = svc.fleet_batches().len() + 60;
    let stats = svc.run_frontier(&mut replay, max_ticks);
    assert!(stats.tenants.is_empty(), "offline replay has no tenants");
    RunArtifacts {
        event_log: sink.lines(),
        model_json: svc.model().to_json(),
        alarms: svc.alarms().len(),
        samples_delivered: 0,
    }
}

fn mem_lockstep(svc: &FleetService) -> Lockstep {
    let (listener, dialer) = MemListener::new(1 << 20);
    let gateway = Gateway::new(
        GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
        Box::new(listener),
    );
    let client = WireClient::new(
        Box::new(move || Box::new(dialer.dial())),
        "volta",
        "tok",
        svc.fleet_batches(),
    );
    Lockstep { client, gateway }
}

#[test]
fn captured_mem_session_replays_byte_identically() {
    let (live, capture) = live_run(42, mem_lockstep);
    assert!(!live.event_log.is_empty(), "a live run must emit events");
    assert!(live.samples_delivered > 0, "a live run must deliver samples");

    let replayed = replay_run(42, &capture);
    assert_eq!(replayed.event_log, live.event_log, "event logs must be byte-identical");
    assert_eq!(replayed.model_json, live.model_json, "final models must be bit-identical");
    assert_eq!(replayed.alarms, live.alarms);

    // And the capture itself is reproducible: a second equally-seeded
    // live session journals the byte-identical capture.
    let (live2, capture2) = live_run(42, mem_lockstep);
    assert_eq!(capture2, capture, "equal seeds -> byte-identical journals");
    assert_eq!(live2.event_log, live.event_log);

    // A different seed diverges (the assertions above are not vacuous).
    let (live3, _) = live_run(43, mem_lockstep);
    assert_ne!(live3.event_log, live.event_log, "different seeds should diverge");
}

#[test]
fn captured_tcp_session_replays_byte_identically() {
    let (live, capture) = live_run(7, |svc| {
        let door = TcpDoor::bind("127.0.0.1:0").expect("bind loopback");
        let addr = door.addr();
        let gateway = Gateway::new(
            GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
            Box::new(door),
        );
        let client = WireClient::new(
            Box::new(move || Box::new(TcpByteStream::connect(&addr).expect("connect loopback"))),
            "volta",
            "tok",
            svc.fleet_batches(),
        );
        Lockstep { client, gateway }
    });
    assert!(live.samples_delivered > 0);
    let replayed = replay_run(7, &capture);
    assert_eq!(replayed.event_log, live.event_log, "TCP run must replay byte-identically");
    assert_eq!(replayed.model_json, live.model_json);
}

#[test]
fn http_control_plane_answers_over_tcp_after_a_run() {
    let door = TcpDoor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = door.addr();
    let (mut svc, _sink) = observed_service(11);
    let mut harness = Lockstep {
        client: WireClient::new(
            Box::new(move || Box::new(TcpByteStream::connect(&addr).expect("connect"))),
            "volta",
            "tok",
            svc.fleet_batches(),
        ),
        gateway: Gateway::new(
            GatewayConfig::new(vec![TenantConfig::new("volta", "tok")]),
            Box::new(door),
        ),
    };
    let max_ticks = svc.fleet_batches().len() + 60;
    svc.run_frontier(&mut harness, max_ticks);

    // The gateway is still listening: scrape the control plane with the
    // finished service attached (SocketAddr is Copy — reuse the bound
    // address the wire client dialled).
    let gw = &mut harness.gateway;
    let mut probe = TcpByteStream::connect(&addr).expect("connect control plane");
    use alba_net::ByteStream;
    probe.write(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n").expect("send request");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    for now in 0..50 {
        gw.pump(10_000 + now, Some(&svc));
        loop {
            match probe.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        if raw.windows(4).any(|w| w == b"\r\n\r\n") && !raw.is_empty() {
            // Headers arrived; one more pump flushes any body remainder.
            gw.pump(10_000 + now + 1, Some(&svc));
            while let Ok(n) = probe.read(&mut chunk) {
                if n == 0 {
                    break;
                }
                raw.extend_from_slice(&chunk[..n]);
            }
            break;
        }
    }
    let raw = String::from_utf8(raw).expect("http response is text");
    assert!(raw.starts_with("HTTP/1.1 200 OK"), "got: {}", &raw[..raw.len().min(200)]);
    let body = raw.split("\r\n\r\n").nth(1).expect("response has a body");
    let stats: alba_serve::ServiceStats =
        serde_json::from_str(body).expect("stats body parses as ServiceStats");
    assert!(stats.ticks > 0, "the scraped stats reflect the finished run");
}
