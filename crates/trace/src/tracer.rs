//! The [`Tracer`] handle: renders causal hops into a JSONL trace log,
//! feeds the per-lane flight recorder, and dumps the recorder on
//! demand (shard panic, chaos fault, shutdown).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use alba_obs::{json_escape, Clock, EventSink, Value};

use crate::ctx::TraceCtx;
use crate::recorder::{push_hex16, push_u64, FlightRing, Lane, RingEntry};

struct Inner {
    seed: u64,
    clock: Arc<dyn Clock>,
    ring_capacity: usize,
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    rings: Mutex<BTreeMap<Lane, FlightRing>>,
    dump_dir: Mutex<Option<PathBuf>>,
    hops: AtomicU64,
    dumps: AtomicU64,
    dump_failures: AtomicU64,
}

/// Cloneable causal-tracing handle. A disabled tracer
/// ([`Tracer::disabled`]) turns every operation into a no-op, so
/// traced hot paths cost (almost) nothing when tracing is off — the
/// `trace_overhead` bench holds the enabled path within a few percent.
///
/// ## Determinism contract
///
/// Hops must be recorded from deterministic single-threaded contexts
/// (the service tick thread, in shard order; the lockstep gateway pump)
/// and timestamps come from the injectable [`Clock`] — so equal seeds
/// produce byte-identical trace logs and flight-recorder dumps.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// Default flight-recorder ring capacity per lane.
    pub const DEFAULT_RING: usize = 256;

    /// A tracer whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled tracer deriving trace ids from `seed`, stamping hops
    /// from `clock`, holding `ring_capacity` recent events per lane.
    pub fn new(seed: u64, clock: Arc<dyn Clock>, ring_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                seed,
                clock,
                ring_capacity: ring_capacity.max(1),
                sink: Mutex::new(None),
                rings: Mutex::new(BTreeMap::new()),
                dump_dir: Mutex::new(None),
                hops: AtomicU64::new(0),
                dumps: AtomicU64::new(0),
                dump_failures: AtomicU64::new(0),
            })),
        }
    }

    /// True when hops are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The seed trace ids derive from (0 when disabled).
    pub fn seed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seed)
    }

    /// Current clock reading in nanoseconds (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Attaches the JSONL trace-log sink; every hop line goes both here
    /// and into the flight recorder.
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        if let Some(inner) = &self.inner {
            *inner.sink.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
        }
    }

    /// Directory flight-recorder dumps are written into
    /// (`flightrec_<reason>.jsonl`). Unset by default: dumps are then
    /// only available through [`Tracer::flightrec`].
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        if let Some(inner) = &self.inner {
            *inner.dump_dir.lock().unwrap_or_else(PoisonError::into_inner) = Some(dir.into());
        }
    }

    /// Derives the [`TraceCtx`] for `node`'s sample of source tick
    /// `tick` — the same context any other stage derives from the same
    /// coordinates.
    pub fn ctx(&self, node: usize, tick: usize) -> TraceCtx {
        TraceCtx::derive(self.seed(), node, tick)
    }

    /// Derives the fleet-wide (no-node) context for `tick`.
    pub fn service_ctx(&self, tick: usize) -> TraceCtx {
        TraceCtx::service(self.seed(), tick)
    }

    /// Records one hop of chain `ctx` at `stage` on `lane`: renders a
    /// JSONL line, emits it to the trace-log sink, and pushes it into
    /// the lane's flight ring. No-op when disabled.
    pub fn hop(&self, lane: Lane, ctx: &TraceCtx, stage: &str, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else { return };
        // Render into the buffer of the ring entry this hop is about to
        // evict (allocation-free once the ring is full) and with
        // hand-rolled integer formatting — the rendered bytes are
        // pinned against `write!` by tests, and the trace_overhead
        // bench holds the whole path within its CI bound.
        let mut rings = inner.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let ring = rings.entry(lane).or_insert_with(|| FlightRing::new(inner.ring_capacity));
        let mut line = ring.recycle_buffer();
        line.push_str("{\"ts\":");
        push_u64(&mut line, inner.clock.now_ns());
        line.push_str(",\"trace\":\"");
        push_hex16(&mut line, ctx.id);
        line.push_str("\",\"lane\":\"");
        lane.write_label(&mut line);
        line.push_str("\",\"node\":");
        match ctx.node {
            Some(n) => push_u64(&mut line, n as u64),
            None => line.push_str("null"),
        }
        line.push_str(",\"tick\":");
        push_u64(&mut line, ctx.tick as u64);
        line.push_str(",\"stage\":\"");
        json_escape(stage, &mut line);
        line.push('"');
        for (k, v) in fields {
            line.push_str(",\"");
            json_escape(k, &mut line);
            line.push_str("\":");
            v.render_into(&mut line);
        }
        line.push('}');

        inner.hops.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &*inner.sink.lock().unwrap_or_else(PoisonError::into_inner) {
            sink.emit(&line);
        }
        ring.push(RingEntry { node: ctx.node, line });
    }

    /// Hops recorded since construction.
    pub fn hops_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.hops.load(Ordering::Relaxed))
    }

    /// Flight-recorder dumps taken (files written) since construction.
    pub fn dumps_taken(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dumps.load(Ordering::Relaxed))
    }

    /// The full flight-recorder contents as JSONL: a header line
    /// (`kind=flightrec`, the dump reason, lane/event/eviction totals)
    /// followed by every retained event, lanes in deterministic order
    /// (net, shards ascending, service), oldest → newest within each.
    /// Empty string when disabled.
    pub fn flightrec(&self, reason: &str) -> String {
        let Some(inner) = &self.inner else { return String::new() };
        let rings = inner.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let events: usize = rings.values().map(FlightRing::len).sum();
        let evicted: u64 = rings.values().map(FlightRing::evicted).sum();
        let mut out = String::with_capacity(64 + events * 96);
        out.push_str("{\"ts\":");
        let _ = write!(out, "{}", inner.clock.now_ns());
        out.push_str(",\"kind\":\"flightrec\",\"reason\":\"");
        json_escape(reason, &mut out);
        out.push_str("\",\"lanes\":");
        let _ = write!(out, "{}", rings.len());
        out.push_str(",\"events\":");
        let _ = write!(out, "{events}");
        out.push_str(",\"evicted\":");
        let _ = write!(out, "{evicted}");
        out.push_str("}\n");
        for ring in rings.values() {
            for e in ring.iter() {
                out.push_str(&e.line);
                out.push('\n');
            }
        }
        out
    }

    /// Recent trace events for one node, newest last, as a JSON array —
    /// what the `/trace/<node>` control-plane endpoint serves. `[]`
    /// when disabled or nothing is retained for the node.
    pub fn trace_json(&self, node: usize) -> String {
        let Some(inner) = &self.inner else { return "[]".to_string() };
        let rings = inner.rings.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::from("[");
        let mut first = true;
        for ring in rings.values() {
            for e in ring.iter().filter(|e| e.node == Some(node)) {
                if !first {
                    out.push(',');
                }
                out.push_str(&e.line);
                first = false;
            }
        }
        out.push(']');
        out
    }

    /// Dumps the flight recorder to
    /// `<dump_dir>/flightrec_<reason>.jsonl` (reason sanitised to
    /// `[a-z0-9_-]`). Returns the path written, or `None` when the
    /// tracer is disabled, no dump directory is set, or the write
    /// failed (failures are counted, never fatal — a flight recorder
    /// must not take the aircraft down with it).
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let dir = inner.dump_dir.lock().unwrap_or_else(PoisonError::into_inner).as_ref()?.clone();
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("flightrec_{safe}.jsonl"));
        match std::fs::write(&path, self.flightrec(reason)) {
            Ok(()) => {
                inner.dumps.fetch_add(1, Ordering::Relaxed);
                Some(path)
            }
            Err(_) => {
                inner.dump_failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_obs::{MemorySink, TickClock};

    fn traced() -> (Tracer, Arc<MemorySink>, Arc<TickClock>) {
        let clock = Arc::new(TickClock::new());
        let t = Tracer::new(42, clock.clone(), 4);
        let sink = Arc::new(MemorySink::new());
        t.set_sink(sink.clone());
        (t, sink, clock)
    }

    #[test]
    fn hop_renders_deterministic_jsonl() {
        let (t, sink, clock) = traced();
        clock.set(1_000);
        let ctx = t.ctx(3, 17);
        t.hop(Lane::Shard(1), &ctx, "ingest", &[("arrived", Value::from(17u64))]);
        let line = &sink.lines()[0];
        let expected = format!(
            "{{\"ts\":1000,\"trace\":\"{:016x}\",\"lane\":\"shard1\",\"node\":3,\
             \"tick\":17,\"stage\":\"ingest\",\"arrived\":17}}",
            ctx.id
        );
        assert_eq!(line, &expected);
        assert_eq!(t.hops_recorded(), 1);
    }

    #[test]
    fn service_hops_render_null_node() {
        let (t, sink, _clock) = traced();
        t.hop(Lane::Service, &t.service_ctx(9), "stage", &[]);
        assert!(sink.lines()[0].contains("\"node\":null"), "{}", sink.lines()[0]);
    }

    #[test]
    fn equal_seeds_yield_byte_identical_logs_and_dumps() {
        let run = || {
            let (t, sink, clock) = traced();
            for tick in 0..9 {
                clock.set(tick as u64 * 10);
                t.hop(Lane::Net, &t.ctx(tick % 3, tick), "decode", &[]);
                t.hop(Lane::Shard(0), &t.ctx(tick % 3, tick), "ingest", &[]);
            }
            (sink.lines().join("\n"), t.flightrec("shutdown"))
        };
        let (log_a, rec_a) = run();
        let (log_b, rec_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(rec_a, rec_b);
    }

    #[test]
    fn flightrec_orders_lanes_and_bounds_history() {
        let (t, _sink, _clock) = traced();
        // Ring capacity is 4: push 6 service hops so two evict.
        for tick in 0..6 {
            t.hop(Lane::Service, &t.service_ctx(tick), "stage", &[]);
        }
        t.hop(Lane::Shard(0), &t.ctx(1, 0), "ingest", &[]);
        t.hop(Lane::Net, &t.ctx(1, 0), "decode", &[]);
        let dump = t.flightrec("test");
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"kind\":\"flightrec\""));
        assert!(lines[0].contains("\"reason\":\"test\""));
        assert!(lines[0].contains("\"events\":6") && lines[0].contains("\"evicted\":2"));
        // Lane order: net, shard0, then service (oldest evicted).
        assert!(lines[1].contains("\"lane\":\"net\""));
        assert!(lines[2].contains("\"lane\":\"shard0\""));
        assert!(lines[3].contains("\"tick\":2"), "oldest two service hops evicted");
    }

    #[test]
    fn trace_json_filters_by_node() {
        let (t, _sink, _clock) = traced();
        t.hop(Lane::Shard(0), &t.ctx(1, 5), "ingest", &[]);
        t.hop(Lane::Shard(0), &t.ctx(2, 5), "ingest", &[]);
        t.hop(Lane::Service, &t.service_ctx(5), "stage", &[]);
        let json = t.trace_json(1);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"node\":1") && !json.contains("\"node\":2"));
        assert_eq!(t.trace_json(99), "[]");
    }

    #[test]
    fn dump_writes_file_only_when_dir_is_set() {
        let (t, _sink, _clock) = traced();
        t.hop(Lane::Net, &t.ctx(0, 0), "decode", &[]);
        assert_eq!(t.dump("no dir yet"), None);
        let dir = std::env::temp_dir().join(format!("alba_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        t.set_dump_dir(&dir);
        let path = t.dump("fault: node_blackout").expect("dump writes");
        assert!(path.ends_with("flightrec_fault__node_blackout.jsonl"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, t.flightrec("fault: node_blackout"));
        assert_eq!(t.dumps_taken(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_tracer_is_a_total_no_op() {
        let t = Tracer::disabled();
        t.hop(Lane::Net, &t.ctx(0, 0), "decode", &[]);
        assert_eq!(t.hops_recorded(), 0);
        assert_eq!(t.flightrec("x"), "");
        assert_eq!(t.trace_json(0), "[]");
        assert_eq!(t.dump("x"), None);
        assert!(!t.is_enabled());
    }
}
