//! Trace identity: a causal chain's id is a *pure function* of
//! `(seed, node, tick)`, so any pipeline stage can re-derive it without
//! the id being physically carried through queues or wire frames — and
//! equal seeds yield byte-identical trace logs.

/// Sentinel mixed in for service-wide hops that have no source node.
const NO_NODE: u64 = u64::MAX;

/// SplitMix64 finaliser: a cheap, well-distributed 64-bit mixer with no
/// ambient entropy anywhere near it.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic trace id for the causal chain rooted at `node`'s
/// sample of source tick `tick` under campaign `seed`. `node = None`
/// identifies a fleet-wide (service-level) chain for that tick.
pub fn trace_id(seed: u64, node: Option<usize>, tick: usize) -> u64 {
    let n = node.map_or(NO_NODE, |v| v as u64);
    mix(mix(mix(seed) ^ n.rotate_left(17)) ^ (tick as u64).rotate_left(31))
}

/// Causal-trace context for one hop: the chain id plus the coordinates
/// it was derived from. Minted at the net gateway when a telemetry
/// frame is decoded; every later stage re-derives the identical context
/// from the same coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Chain id (`trace_id(seed, node, tick)`).
    pub id: u64,
    /// Source node, `None` for fleet-wide hops.
    pub node: Option<usize>,
    /// Source tick the chain is rooted at.
    pub tick: usize,
}

impl TraceCtx {
    /// Derives the context for `node`'s sample of source tick `tick`.
    pub fn derive(seed: u64, node: usize, tick: usize) -> Self {
        Self { id: trace_id(seed, Some(node), tick), node: Some(node), tick }
    }

    /// Derives a fleet-wide (no-node) context for `tick`.
    pub fn service(seed: u64, tick: usize) -> Self {
        Self { id: trace_id(seed, None, tick), node: None, tick }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_pure_functions_of_their_coordinates() {
        assert_eq!(trace_id(42, Some(3), 17), trace_id(42, Some(3), 17));
        assert_eq!(TraceCtx::derive(42, 3, 17), TraceCtx::derive(42, 3, 17));
        assert_eq!(TraceCtx::service(42, 17).id, trace_id(42, None, 17));
    }

    #[test]
    fn ids_separate_seeds_nodes_and_ticks() {
        let base = trace_id(42, Some(3), 17);
        assert_ne!(base, trace_id(43, Some(3), 17), "seed must matter");
        assert_ne!(base, trace_id(42, Some(4), 17), "node must matter");
        assert_ne!(base, trace_id(42, Some(3), 18), "tick must matter");
        assert_ne!(base, trace_id(42, None, 17), "service lane must differ");
        // node/tick must not be interchangeable coordinates.
        assert_ne!(trace_id(42, Some(17), 3), base);
    }

    #[test]
    fn ids_spread_over_dense_inputs() {
        let mut seen = std::collections::BTreeSet::new();
        for node in 0..64 {
            for tick in 0..64 {
                seen.insert(trace_id(7, Some(node), tick));
            }
        }
        assert_eq!(seen.len(), 64 * 64, "no collisions on a dense grid");
    }
}
