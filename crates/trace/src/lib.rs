//! # alba-trace
//!
//! Deterministic end-to-end causal tracing for the ALBADross serving
//! path. Aggregate metrics (`alba-obs`, PR 2) answer *how much*; this
//! crate answers *why this alarm, from which window, at what per-stage
//! cost* — the per-decision provenance that makes active-learning
//! query choices auditable (Raghavan et al.).
//!
//! * [`ctx`] — trace identity: a chain's id is a pure function of
//!   `(seed, node, tick)` ([`trace_id`]), so the id never has to ride
//!   inside queues or wire frames — every stage re-derives it, and
//!   equal seeds yield byte-identical trace logs,
//! * [`tracer`] — the cloneable [`Tracer`] handle: renders per-hop
//!   JSONL records (stage, lane, timings from the injectable
//!   `alba-obs` [`Clock`](alba_obs::Clock)) into a pluggable sink,
//! * [`recorder`] — the always-on bounded **flight recorder**: one
//!   fixed-size [`FlightRing`] of recent trace events per lane with
//!   deterministic oldest-first eviction, dumped to
//!   `flightrec_*.jsonl` on shard panic, chaos fault firing, or
//!   shutdown.
//!
//! ## Determinism contract
//!
//! Hops are recorded only from deterministic single-threaded contexts
//! (the service tick thread in shard order, the lockstep gateway
//! pump), timestamps come from the injectable clock, lanes are
//! `BTreeMap`-ordered, and eviction is strictly oldest-first — so two
//! equal-seed runs produce byte-identical trace logs *and*
//! byte-identical flight-recorder dumps, chaos included. The serve
//! integration suite and `scripts/ci.sh` assert exactly that.

#![warn(missing_docs)]

pub mod ctx;
pub mod recorder;
pub mod tracer;

pub use ctx::{trace_id, TraceCtx};
pub use recorder::{FlightRing, Lane, RingEntry};
pub use tracer::Tracer;
