//! The flight recorder: one bounded ring of recent trace events per
//! lane, with deterministic (strictly oldest-first) eviction. Always
//! on, always cheap — the ring holds pre-rendered JSONL lines, so a
//! dump is pure concatenation with no serialisation at crash time.

/// Where a hop happened. Lanes order deterministically — net first,
/// then shards ascending, then the service lane — which fixes the
/// layout of every flight-recorder dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// The network gateway (frame decode).
    Net,
    /// One worker shard.
    Shard(u32),
    /// The service tick loop (stage timings, retrain, faults).
    Service,
}

impl Lane {
    /// Stable lane label used in rendered trace lines.
    pub fn label(&self) -> String {
        let mut s = String::new();
        self.write_label(&mut s);
        s
    }

    /// Appends the label to `out` without an intermediate allocation —
    /// the hop hot path renders straight into the line buffer. Labels
    /// are plain ASCII identifiers, so no JSON escaping is needed.
    pub fn write_label(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Lane::Net => out.push_str("net"),
            Lane::Shard(i) => {
                let _ = write!(out, "shard{i}");
            }
            Lane::Service => out.push_str("service"),
        }
    }
}

/// One recorded trace event: the source node (for `/trace/<node>`
/// filtering) plus the pre-rendered JSONL line.
#[derive(Clone, Debug)]
pub struct RingEntry {
    /// Source node of the hop, `None` for fleet-wide hops.
    pub node: Option<usize>,
    /// The rendered JSON object, no trailing newline.
    pub line: String,
}

/// Fixed-capacity ring of recent trace events. Eviction is
/// deterministic: once full, each push overwrites the single oldest
/// entry — no timers, no sampling, no randomness.
#[derive(Clone, Debug)]
pub struct FlightRing {
    cap: usize,
    buf: Vec<RingEntry>,
    /// Index of the oldest entry once the ring is full.
    head: usize,
    evicted: u64,
}

impl FlightRing {
    /// An empty ring holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        Self { cap: cap.max(1), buf: Vec::new(), head: 0, evicted: 0 }
    }

    /// Records one entry, evicting the oldest when full.
    pub fn push(&mut self, entry: RingEntry) {
        if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted so far (how much history the ring has forgotten).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates the retained entries oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &RingEntry> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: usize) -> RingEntry {
        RingEntry { node: Some(i), line: format!("{{\"n\":{i}}}") }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut r = FlightRing::new(3);
        for i in 0..5 {
            r.push(entry(i));
        }
        let kept: Vec<usize> = r.iter().map(|e| e.node.unwrap()).collect();
        assert_eq!(kept, vec![2, 3, 4], "strictly oldest-first eviction");
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut r = FlightRing::new(8);
        for i in 0..3 {
            r.push(entry(i));
        }
        let kept: Vec<usize> = r.iter().map(|e| e.node.unwrap()).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn lanes_order_net_shards_service() {
        let mut lanes = vec![Lane::Service, Lane::Shard(2), Lane::Net, Lane::Shard(0)];
        lanes.sort();
        assert_eq!(lanes, vec![Lane::Net, Lane::Shard(0), Lane::Shard(2), Lane::Service]);
        assert_eq!(Lane::Shard(3).label(), "shard3");
    }
}
