//! The flight recorder: one bounded ring of recent trace events per
//! lane, with deterministic (strictly oldest-first) eviction. Always
//! on, always cheap — the ring holds pre-rendered JSONL lines, so a
//! dump is pure concatenation with no serialisation at crash time.

/// Where a hop happened. Lanes order deterministically — net first,
/// then shards ascending, then the service lane — which fixes the
/// layout of every flight-recorder dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// The network gateway (frame decode).
    Net,
    /// One worker shard.
    Shard(u32),
    /// The service tick loop (stage timings, retrain, faults).
    Service,
}

impl Lane {
    /// Stable lane label used in rendered trace lines.
    pub fn label(&self) -> String {
        let mut s = String::new();
        self.write_label(&mut s);
        s
    }

    /// Appends the label to `out` without an intermediate allocation —
    /// the hop hot path renders straight into the line buffer. Labels
    /// are plain ASCII identifiers, so no JSON escaping is needed.
    pub fn write_label(&self, out: &mut String) {
        match self {
            Lane::Net => out.push_str("net"),
            Lane::Shard(i) => {
                out.push_str("shard");
                push_u64(out, u64::from(*i));
            }
            Lane::Service => out.push_str("service"),
        }
    }
}

/// Fast decimal formatter shared with the event renderer — same bytes
/// as `write!(out, "{v}")`, none of the `core::fmt` machinery. The hop
/// renderer formats three to four integers per line; at fleet hop
/// rates the formatter is the measurable part of the tracing tax.
pub(crate) use alba_obs::push_u64;

/// Appends `v` as 16 lowercase hex digits — same bytes as
/// `write!(out, "{v:016x}")`. Pushes chars (always ASCII), so the path
/// is infallible by construction.
pub(crate) fn push_hex16(out: &mut String, v: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for i in 0..16 {
        // alba-lint: allow(reachable-panic) reason="index is masked to 0..16"
        out.push(HEX[((v >> (60 - 4 * i)) & 0xf) as usize] as char);
    }
}

/// One recorded trace event: the source node (for `/trace/<node>`
/// filtering) plus the pre-rendered JSONL line.
#[derive(Clone, Debug)]
pub struct RingEntry {
    /// Source node of the hop, `None` for fleet-wide hops.
    pub node: Option<usize>,
    /// The rendered JSON object, no trailing newline.
    pub line: String,
}

/// Fixed-capacity ring of recent trace events. Eviction is
/// deterministic: once full, each push overwrites the single oldest
/// entry — no timers, no sampling, no randomness.
#[derive(Clone, Debug)]
pub struct FlightRing {
    cap: usize,
    buf: Vec<RingEntry>,
    /// Index of the oldest entry once the ring is full.
    head: usize,
    evicted: u64,
}

impl FlightRing {
    /// An empty ring holding at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        Self { cap: cap.max(1), buf: Vec::new(), head: 0, evicted: 0 }
    }

    /// Records one entry, evicting the oldest when full.
    pub fn push(&mut self, entry: RingEntry) {
        if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }

    /// Hands back a reusable line buffer: once the ring is full, the
    /// `String` of the entry the next [`FlightRing::push`] will
    /// overwrite (cleared, capacity kept); a fresh buffer while the
    /// ring is still filling. Pairing each call with one `push` makes
    /// a full ring allocation-free in steady state — which is what
    /// keeps the always-on recorder within the tracing overhead bound.
    pub fn recycle_buffer(&mut self) -> String {
        if self.buf.len() < self.cap {
            String::with_capacity(192)
        } else {
            // alba-lint: allow(reachable-panic) reason="head stays within the ring by the wrap above"
            let mut s = std::mem::take(&mut self.buf[self.head].line);
            s.clear();
            s
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Entries evicted so far (how much history the ring has forgotten).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates the retained entries oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &RingEntry> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: usize) -> RingEntry {
        RingEntry { node: Some(i), line: format!("{{\"n\":{i}}}") }
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut r = FlightRing::new(3);
        for i in 0..5 {
            r.push(entry(i));
        }
        let kept: Vec<usize> = r.iter().map(|e| e.node.unwrap()).collect();
        assert_eq!(kept, vec![2, 3, 4], "strictly oldest-first eviction");
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut r = FlightRing::new(8);
        for i in 0..3 {
            r.push(entry(i));
        }
        let kept: Vec<usize> = r.iter().map(|e| e.node.unwrap()).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn hand_rolled_formatters_match_write() {
        use std::fmt::Write as _;
        for v in [0u64, 1, 9, 10, 42, 999, 1_000, u64::MAX / 2, u64::MAX] {
            let (mut fast, mut slow) = (String::new(), String::new());
            push_u64(&mut fast, v);
            let _ = write!(slow, "{v}");
            assert_eq!(fast, slow, "decimal {v}");
            let (mut fast, mut slow) = (String::new(), String::new());
            push_hex16(&mut fast, v);
            let _ = write!(slow, "{v:016x}");
            assert_eq!(fast, slow, "hex {v}");
        }
    }

    #[test]
    fn recycled_buffers_come_back_cleared_and_do_not_change_ring_contents() {
        let mut r = FlightRing::new(2);
        assert_eq!(r.recycle_buffer(), "", "filling ring hands out fresh buffers");
        r.push(entry(0));
        r.push(entry(1));
        let buf = r.recycle_buffer();
        assert!(buf.is_empty() && buf.capacity() > 0, "full ring recycles the oldest buffer");
        r.push(RingEntry { node: Some(2), line: buf });
        let kept: Vec<usize> = r.iter().map(|e| e.node.unwrap()).collect();
        assert_eq!(kept, vec![1, 2], "eviction order is unchanged by recycling");
        assert_eq!(r.evicted(), 1);
    }

    #[test]
    fn lanes_order_net_shards_service() {
        let mut lanes = vec![Lane::Service, Lane::Shard(2), Lane::Net, Lane::Shard(0)];
        lanes.sort();
        assert_eq!(lanes, vec![Lane::Net, Lane::Shard(0), Lane::Shard(2), Lane::Service]);
        assert_eq!(Lane::Shard(3).label(), "shard3");
    }
}
