//! Train/test splitting, leakage-free feature selection and scaling, and
//! the seed/pool decomposition of Fig. 2.
//!
//! Order of operations per split repetition (Sec. IV-E):
//! 1. stratified train/test split (class proportions preserved),
//! 2. degenerate-column removal fitted on the training side,
//! 3. chi-square top-k selection fitted on the training side,
//! 4. Min-Max scaling fitted on the training side,
//! 5. seed-set extraction: one sample per (application, anomaly) pair; the
//!    remaining training samples form the unlabeled pool.

use alba_data::{one_per_app_class_pair, stratified_split, Dataset};
use alba_features::{select_top_k, MinMaxScaler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Split configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Fraction of samples in the active-learning training dataset
    /// (the paper's Volta split is ~6.3k of ~16.7k ≈ 0.38).
    pub train_fraction: f64,
    /// Number of chi-square-selected features (paper sweeps 250..6436 and
    /// settles on 2000; the reduced default matches the reduced catalog).
    pub top_k_features: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self { train_fraction: 0.4, top_k_features: 1200 }
    }
}

/// One prepared split: scaled training pool and test set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PreparedSplit {
    /// The active-learning training dataset (seed candidates + pool).
    pub train: Dataset,
    /// The held-out test dataset.
    pub test: Dataset,
    /// Columns retained (indices into the original feature space).
    pub selected_features: Vec<usize>,
    /// The Min-Max scaler fitted on the training side; deployments apply
    /// it (after `selected_features` projection) to fresh telemetry.
    pub scaler: MinMaxScaler,
}

impl PreparedSplit {
    /// Projects and scales a freshly extracted feature dataset (same
    /// catalog and extractor as training) into this split's feature view —
    /// the preprocessing a deployed model applies to new samples.
    pub fn project(&self, fresh: &Dataset) -> Dataset {
        let mut out = fresh.select_features(&self.selected_features);
        self.scaler.transform_inplace(&mut out.x);
        out
    }

    /// The split's feature view (selected columns + fitted scaler),
    /// packaged for online deployments (`NodeMonitor`, the fleet
    /// service) so they project and scale fresh windows exactly as the
    /// training pipeline did.
    pub fn feature_view(&self) -> alba_features::FeatureView {
        alba_features::FeatureView::new(self.selected_features.clone(), self.scaler.clone())
    }
}

/// Performs steps 1–4 above. Deterministic given `seed`.
pub fn prepare_split(full: &Dataset, cfg: &SplitConfig, seed: u64) -> PreparedSplit {
    let _span = alba_obs::global().span("exp_stage_ns", &[("stage", "prepare_split")]);
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_idx, test_idx) = stratified_split(&full.y, cfg.train_fraction, &mut rng);
    let train_raw = full.select(&train_idx);
    let test_raw = full.select(&test_idx);
    prepare_pre_split(&train_raw, &test_raw, cfg)
}

/// Steps 2–4 for an externally constructed train/test pair (used by the
/// robustness experiments, which split by application or input deck).
pub fn prepare_pre_split(
    train_raw: &Dataset,
    test_raw: &Dataset,
    cfg: &SplitConfig,
) -> PreparedSplit {
    // Degenerate-column removal fitted on train.
    let (train_clean, kept) = alba_features::drop_degenerate_features(train_raw);
    let test_clean = test_raw.select_features(&kept);

    // Chi-square top-k on train.
    let top = select_top_k(&train_clean, cfg.top_k_features);
    let mut train_sel = train_clean.select_features(&top);
    let mut test_sel = test_clean.select_features(&top);
    let selected: Vec<usize> = top.iter().map(|&t| kept[t]).collect();

    // Min-Max scaling fitted on train.
    let scaler = MinMaxScaler::fit(&train_sel.x);
    scaler.transform_inplace(&mut train_sel.x);
    scaler.transform_inplace(&mut test_sel.x);

    PreparedSplit { train: train_sel, test: test_sel, selected_features: selected, scaler }
}

/// The seed/pool decomposition (Fig. 2): one labeled sample per
/// `(application, anomaly)` pair — healthy samples are *not* seeded, which
/// is why every strategy initially hunts for healthy labels (Fig. 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeedPool {
    /// The initial labeled dataset.
    pub seed_set: Dataset,
    /// The unlabeled pool (labels hidden until queried).
    pub pool: Dataset,
}

/// Extracts the seed set from a prepared training dataset.
///
/// `seed_apps` optionally restricts seeding to a subset of applications
/// (robustness experiments); `None` seeds every application present.
pub fn seed_and_pool(train: &Dataset, seed_apps: Option<&[String]>, seed: u64) -> SeedPool {
    seed_and_pool_filtered(train, |m| seed_apps.is_none_or(|apps| apps.contains(&m.app)), seed)
}

/// Like [`seed_and_pool`] but with an arbitrary provenance filter on seed
/// candidates — the unseen-input experiment (Fig. 8) seeds only from the
/// non-held-out input decks, for instance. The *pool* always keeps every
/// non-seed training sample (it models the full production pool).
pub fn seed_and_pool_filtered(
    train: &Dataset,
    seed_filter: impl Fn(&alba_data::SampleMeta) -> bool,
    seed: u64,
) -> SeedPool {
    // alba-lint: allow(reachable-panic) reason="every generated dataset contains the healthy class"
    let healthy = train.encoder.encode("healthy").expect("healthy class present");
    // Candidate rows: anomalous samples passing the filter.
    let candidates: Vec<usize> = train.indices_where(|m, y| y != healthy && seed_filter(m));
    assert!(!candidates.is_empty(), "no anomalous samples available to seed the labeled set");
    let apps: Vec<&str> = candidates.iter().map(|&i| train.meta[i].app.as_str()).collect();
    let ys: Vec<usize> = candidates.iter().map(|&i| train.y[i]).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let chosen_local = one_per_app_class_pair(&apps, &ys, &mut rng);
    let chosen: Vec<usize> = chosen_local.iter().map(|&c| candidates[c]).collect();
    // alba-lint: allow(nondet-taint) reason="membership probe only; iteration stays over ordered indices"
    let chosen_set: std::collections::HashSet<usize> = chosen.iter().copied().collect();
    let rest: Vec<usize> = (0..train.len()).filter(|i| !chosen_set.contains(i)).collect();
    SeedPool { seed_set: train.select(&chosen), pool: train.select(&rest) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FeatureMethod, System, SystemData};
    use alba_telemetry::Scale;

    fn smoke_data() -> SystemData {
        SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 11)
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let sd = smoke_data();
        let cfg = SplitConfig { train_fraction: 0.5, top_k_features: 100 };
        let split = prepare_split(&sd.dataset, &cfg, 1);
        assert_eq!(split.train.x.cols(), 100);
        assert_eq!(split.test.x.cols(), 100);
        assert_eq!(split.train.len() + split.test.len(), sd.dataset.len());
        // Both sides keep roughly the global anomaly ratio.
        let full_ratio = sd.dataset.anomaly_ratio(0);
        for ds in [&split.train, &split.test] {
            assert!((ds.anomaly_ratio(0) - full_ratio).abs() < 0.05);
        }
    }

    #[test]
    fn split_scaling_bounds_training_side() {
        let sd = smoke_data();
        let split = prepare_split(&sd.dataset, &SplitConfig::default(), 2);
        let (mins, maxs) = split.train.x.column_min_max();
        for c in 0..split.train.x.cols() {
            assert!(mins[c] >= -1e-9, "col {c} min {}", mins[c]);
            assert!(maxs[c] <= 1.0 + 1e-9, "col {c} max {}", maxs[c]);
        }
    }

    #[test]
    fn splits_differ_across_seeds() {
        let sd = smoke_data();
        let a = prepare_split(&sd.dataset, &SplitConfig::default(), 1);
        let b = prepare_split(&sd.dataset, &SplitConfig::default(), 2);
        assert_ne!(a.train.meta, b.train.meta);
    }

    #[test]
    fn seed_set_covers_app_anomaly_pairs() {
        let sd = smoke_data();
        let split = prepare_split(&sd.dataset, &SplitConfig::default(), 3);
        let sp = seed_and_pool(&split.train, None, 7);
        // No healthy samples in the seed set.
        assert!(sp.seed_set.y.iter().all(|&y| y != 0));
        // Each (app, class) pair at most once.
        let mut pairs: Vec<(String, usize)> =
            sp.seed_set.meta.iter().zip(&sp.seed_set.y).map(|(m, &y)| (m.app.clone(), y)).collect();
        let n = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), n, "duplicate (app, anomaly) pair in seed set");
        // Pool + seed = train.
        assert_eq!(sp.seed_set.len() + sp.pool.len(), split.train.len());
    }

    #[test]
    fn seed_apps_restriction_is_honoured() {
        let sd = smoke_data();
        let split = prepare_split(&sd.dataset, &SplitConfig::default(), 3);
        let apps: Vec<String> = vec!["BT".into(), "CG".into()];
        let sp = seed_and_pool(&split.train, Some(&apps), 7);
        for m in &sp.seed_set.meta {
            assert!(apps.contains(&m.app), "unexpected seed app {}", m.app);
        }
        // The pool still contains other applications (production pool).
        assert!(sp.pool.meta.iter().any(|m| !apps.contains(&m.app)));
    }

    #[test]
    fn project_matches_training_transform() {
        let sd = smoke_data();
        let split = prepare_split(&sd.dataset, &SplitConfig::default(), 21);
        // Projecting the raw dataset rows that formed the test split must
        // reproduce the test split exactly.
        let raw_test_idx: Vec<usize> =
            sd.dataset.indices_where(|m, _| split.test.meta.iter().any(|t| t == m));
        let raw_test = sd.dataset.select(&raw_test_idx);
        let projected = split.project(&raw_test);
        assert_eq!(projected.x.cols(), split.test.x.cols());
        // Same multiset of rows (order may differ): compare sorted sums.
        let mut a: Vec<f64> = projected.x.rows_iter().map(|r| r.iter().sum()).collect();
        let mut b: Vec<f64> = split.test.x.rows_iter().map(|r| r.iter().sum()).collect();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn volta_default_scale_seed_set_is_55() {
        // At Default scale every app sees every anomaly kind, so the seed
        // set is exactly 11 apps x 5 anomalies = 55 (as in the paper).
        let sd = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 5);
        let split = prepare_split(
            &sd.dataset,
            &SplitConfig { train_fraction: 0.6, top_k_features: 200 },
            1,
        );
        let sp = seed_and_pool(&split.train, None, 1);
        // Smoke scale may miss a few pairs on the training side; the seed
        // count must never exceed 55 and should cover most pairs.
        assert!(sp.seed_set.len() <= 55);
        assert!(sp.seed_set.len() >= 30, "seed set has {}", sp.seed_set.len());
    }
}
