//! The Proctor baseline (Aksar et al., ISC 2021; paper Sec. IV-D/IV-E.3).
//!
//! Proctor is an autoencoder-based semi-supervised diagnosis framework: a
//! deep autoencoder learns the structure of (mostly unlabeled) telemetry
//! features, and a supervised classifier — logistic regression in the
//! paper's configuration — is trained on the code-layer representation of
//! the labeled samples. As a baseline in the active-learning comparison,
//! Proctor receives *randomly* queried labels each iteration and re-trains
//! its supervised head ("the randomly selected labeled samples do not bring
//! extra information", which is why its curve stays flat).

use alba_active::{QueryRecord, SessionResult, Strategy};
use alba_data::{Dataset, Matrix};
use alba_ml::{
    Autoencoder, AutoencoderParams, Classifier, LogRegParams, LogisticRegression, Scores,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Proctor configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProctorConfig {
    /// Autoencoder topology/training (use [`AutoencoderParams::paper`] for
    /// the 2000-neuron code layer of the original).
    pub autoencoder: AutoencoderParams,
    /// Supervised head hyperparameters.
    pub head: LogRegParams,
    /// Query budget (random queries, to match the AL comparison).
    pub budget: usize,
    /// Seed.
    pub seed: u64,
}

impl ProctorConfig {
    /// Reduced-scale defaults.
    pub fn reduced(budget: usize, seed: u64) -> Self {
        Self {
            autoencoder: AutoencoderParams::reduced(),
            head: LogRegParams::default(),
            budget,
            seed,
        }
    }
}

/// A fitted Proctor model (autoencoder + supervised head).
pub struct Proctor {
    ae: Autoencoder,
    head: LogisticRegression,
    n_classes: usize,
}

impl Proctor {
    /// Trains the autoencoder on all available feature vectors (labeled +
    /// unlabeled: the semi-supervised step) and the head on the labeled
    /// codes.
    pub fn fit(
        unlabeled_x: &Matrix,
        labeled_x: &Matrix,
        labeled_y: &[usize],
        n_classes: usize,
        cfg: &ProctorConfig,
    ) -> Self {
        let mut ae_params = cfg.autoencoder.clone();
        ae_params.seed = cfg.seed;
        let mut ae = Autoencoder::new(ae_params);
        let all = unlabeled_x.vstack(labeled_x);
        ae.fit(&all);
        let mut head = LogisticRegression::new(cfg.head);
        let codes = ae.encode(labeled_x);
        head.fit(&codes, labeled_y, n_classes);
        Self { ae, head, n_classes }
    }

    /// Re-trains only the supervised head with an updated labeled set
    /// (the autoencoder is kept — new random labels do not change the
    /// representation).
    pub fn refit_head(&mut self, labeled_x: &Matrix, labeled_y: &[usize]) {
        let codes = self.ae.encode(labeled_x);
        self.head.fit(&codes, labeled_y, self.n_classes);
    }

    /// Class probabilities for raw feature vectors.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.head.predict_proba(&self.ae.encode(x))
    }

    /// Predicted classes for raw feature vectors.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(x);
        (0..proba.rows())
            .map(|r| {
                let row = proba.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

/// Runs Proctor through the same query loop as the AL strategies (random
/// queries, head re-trained each iteration), producing a [`SessionResult`]
/// comparable with [`alba_active::run_session`] outputs.
pub fn run_proctor_session(
    seed_set: &Dataset,
    pool: &Dataset,
    test: &Dataset,
    cfg: &ProctorConfig,
) -> SessionResult {
    assert!(!seed_set.is_empty(), "empty seed set");
    let n_classes = seed_set.n_classes();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut labeled_y = seed_set.y.clone();
    let mut remaining: Vec<usize> = (0..pool.len()).collect();

    let model = Proctor::fit(&pool.x, &seed_set.x, &labeled_y, n_classes, cfg);
    // The autoencoder is frozen after the semi-supervised step, so the
    // code-layer representations of every dataset can be cached: only the
    // logistic-regression head is re-trained per query.
    let pool_codes = model.ae.encode(&pool.x);
    let test_codes = model.ae.encode(&test.x);
    let mut labeled_codes = model.ae.encode(&seed_set.x);
    let mut head = model.head;

    let evaluate = |head: &LogisticRegression| -> Scores {
        let proba = head.predict_proba(&test_codes);
        let pred: Vec<usize> = (0..proba.rows())
            .map(|r| {
                let row = proba.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect();
        Scores::compute(&test.y, &pred, n_classes)
    };
    let initial_scores = evaluate(&head);

    let mut records = Vec::with_capacity(cfg.budget);
    for _ in 0..cfg.budget {
        if remaining.is_empty() {
            break;
        }
        let pos = rng.gen_range(0..remaining.len());
        let pool_index = remaining.swap_remove(pos);
        labeled_codes.push_row(pool_codes.row(pool_index));
        labeled_y.push(pool.y[pool_index]);
        head.fit(&labeled_codes, &labeled_y, n_classes);
        records.push(QueryRecord {
            pool_index,
            true_label: pool.y[pool_index],
            app: pool.meta[pool_index].app.clone(),
            scores: evaluate(&head),
        });
    }

    SessionResult { strategy: Strategy::Random, initial_scores, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alba_data::{LabelEncoder, SampleMeta};

    fn meta(app: &str) -> SampleMeta {
        SampleMeta {
            app: app.into(),
            input_deck: 0,
            run_id: 0,
            node: 0,
            node_count: 1,
            intensity_pct: 0,
        }
    }

    fn toy(n: usize, offset: usize) -> Dataset {
        let enc = LabelEncoder::from_names(&["healthy", "anom"]);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut metas = Vec::new();
        for i in 0..n {
            let j = i + offset;
            let jit = ((j * 29) % 23) as f64 * 0.01;
            if j.is_multiple_of(2) {
                rows.push(vec![jit, 0.1 + jit, 0.2, jit]);
                y.push(0);
            } else {
                rows.push(vec![1.0 - jit, 0.9, 0.8 - jit, 1.0]);
                y.push(1);
            }
            metas.push(meta("bt"));
        }
        Dataset::new(
            Matrix::from_rows(&rows),
            y,
            enc,
            metas,
            (0..4).map(|i| format!("f{i}")).collect(),
        )
    }

    fn quick_cfg(budget: usize) -> ProctorConfig {
        ProctorConfig {
            autoencoder: AutoencoderParams {
                encoder_widths: vec![8, 4],
                epochs: 40,
                batch_size: 32,
                seed: 0,
            },
            head: LogRegParams::default(),
            budget,
            seed: 5,
        }
    }

    #[test]
    fn proctor_learns_separable_data() {
        let seed = toy(6, 0);
        let pool = toy(40, 100);
        let test = toy(30, 1000);
        let res = run_proctor_session(&seed, &pool, &test, &quick_cfg(5));
        assert_eq!(res.records.len(), 5);
        assert!(res.records.last().unwrap().scores.f1 > 0.9, "{:?}", res.records.last());
    }

    #[test]
    fn proctor_is_deterministic() {
        let seed = toy(6, 0);
        let pool = toy(30, 100);
        let test = toy(20, 1000);
        let a = run_proctor_session(&seed, &pool, &test, &quick_cfg(4));
        let b = run_proctor_session(&seed, &pool, &test, &quick_cfg(4));
        let ai: Vec<usize> = a.records.iter().map(|r| r.pool_index).collect();
        let bi: Vec<usize> = b.records.iter().map(|r| r.pool_index).collect();
        assert_eq!(ai, bi);
        assert_eq!(a.initial_scores, b.initial_scores);
    }

    #[test]
    fn predict_proba_shape() {
        let seed = toy(10, 0);
        let pool = toy(20, 50);
        let cfg = quick_cfg(0);
        let model = Proctor::fit(&pool.x, &seed.x, &seed.y, 2, &cfg);
        let p = model.predict_proba(&pool.x);
        assert_eq!(p.shape(), (20, 2));
        for r in 0..20 {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
