//! Plain-text rendering of experiment results (tables and curve digests)
//! for the `repro` harness and EXPERIMENTS.md.

/// Renders an aligned text table. `header.len()` must match every row.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), n_cols, "row {i} has {} cells, expected {n_cols}", r.len());
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
    }
    out
}

/// Formats an `Option<f64>` count ("-" when absent).
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.0}"))
}

/// Formats a score to two decimals.
pub fn fmt_score(v: f64) -> String {
    format!("{v:.2}")
}

/// Down-samples a curve for compact text display: `(query, value)` pairs at
/// roughly `points` positions, always including first and last.
pub fn digest_curve(curve: &[f64], points: usize) -> Vec<(usize, f64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    let n = curve.len();
    let points = points.max(2).min(n);
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let idx = i * (n - 1) / (points - 1).max(1);
        out.push((idx, curve[idx]));
    }
    out.dedup_by_key(|(i, _)| *i);
    out
}

/// Renders a curve digest as a single line: `q0:0.72 q10:0.81 ...`.
pub fn render_curve_line(curve: &[f64], points: usize) -> String {
    digest_curve(curve, points)
        .iter()
        .map(|(q, v)| format!("q{q}:{v:.3}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2.50".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
        assert!(t.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row 0 has")]
    fn table_validates_row_width() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn digest_includes_endpoints() {
        let curve: Vec<f64> = (0..101).map(|i| i as f64 / 100.0).collect();
        let d = digest_curve(&curve, 5);
        assert_eq!(d.first().unwrap().0, 0);
        assert_eq!(d.last().unwrap().0, 100);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn digest_handles_short_curves() {
        assert_eq!(digest_curve(&[0.5], 10), vec![(0, 0.5)]);
        assert!(digest_curve(&[], 5).is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(27.4)), "27");
        assert_eq!(fmt_score(0.94999), "0.95");
        assert!(render_curve_line(&[0.1, 0.2, 0.3], 3).starts_with("q0:0.100"));
    }
}
