//! Online monitoring — the paper's deployment scenario (Sec. VI future
//! work: "a scenario where ALBADross is deployed on a production HPC
//! system").
//!
//! A [`NodeMonitor`] ingests one node's telemetry sample-by-sample,
//! maintains a sliding window, and periodically extracts features and runs
//! the deployed [`DiagnosisModel`] over the window — turning the offline
//! per-run diagnosis of the paper into a continuous per-node health signal
//! with hysteresis (an alarm is raised only after `confirm` consecutive
//! anomalous windows, suppressing one-off glitches).

use alba_data::{Matrix, MetricDef, MultiSeries};
use alba_features::{preprocess, FeatureExtractor, PreprocessConfig};
use alba_ml::{Diagnosis, DiagnosisModel};
use serde::{Deserialize, Serialize};

/// Monitoring configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Sliding-window length in samples (1 Hz ⇒ seconds).
    pub window: usize,
    /// Diagnose every `stride` new samples.
    pub stride: usize,
    /// Consecutive anomalous windows required before an alarm is raised.
    pub confirm: usize,
    /// Minimum model confidence for a window to count as anomalous.
    pub min_confidence: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { window: 60, stride: 10, confirm: 3, min_confidence: 0.5 }
    }
}

/// A raised alarm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Sample index (time) at which the alarm fired.
    pub at: usize,
    /// Diagnosed anomaly label.
    pub label: String,
    /// Mean confidence over the confirming windows.
    pub confidence: f64,
}

/// One window diagnosis (alarmed or not).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowVerdict {
    /// Sample index at the window's end.
    pub at: usize,
    /// The model's diagnosis for the window.
    pub diagnosis: Diagnosis,
}

/// Sliding-window online diagnoser for one compute node.
pub struct NodeMonitor<'m> {
    model: &'m DiagnosisModel,
    extractor: &'m dyn FeatureExtractor,
    /// Projection of extracted features into the model's feature view
    /// (the split's selected columns), applied before scaling.
    selected_features: Vec<usize>,
    scaler: alba_features::MinMaxScaler,
    config: MonitorConfig,
    buffer: MultiSeries,
    since_last: usize,
    ingested: usize,
    /// Labels of the most recent consecutive anomalous windows.
    streak: Vec<Diagnosis>,
    /// All verdicts so far.
    verdicts: Vec<WindowVerdict>,
    /// Raised alarms.
    alarms: Vec<Alarm>,
}

impl<'m> NodeMonitor<'m> {
    /// Creates a monitor for one node.
    pub fn new(
        model: &'m DiagnosisModel,
        extractor: &'m dyn FeatureExtractor,
        metrics: Vec<MetricDef>,
        selected_features: Vec<usize>,
        scaler: alba_features::MinMaxScaler,
        config: MonitorConfig,
    ) -> Self {
        assert!(config.window >= 8, "windows shorter than 8 samples are meaningless");
        assert!(config.stride >= 1, "stride must be positive");
        assert!(config.confirm >= 1, "confirm must be positive");
        Self {
            model,
            extractor,
            selected_features,
            scaler,
            config,
            buffer: MultiSeries::new(metrics),
            since_last: 0,
            ingested: 0,
            streak: Vec::new(),
            verdicts: Vec::new(),
            alarms: Vec::new(),
        }
    }

    /// Ingests one timestamp of readings; returns a fresh alarm if this
    /// sample completed a confirmed anomalous streak.
    pub fn ingest(&mut self, readings: &[f64]) -> Option<Alarm> {
        self.buffer.push_sample(readings);
        self.ingested += 1;
        self.since_last += 1;
        // Trim the buffer to the window length.
        if self.buffer.len() > self.config.window {
            let excess = self.buffer.len() - self.config.window;
            for series in &mut self.buffer.values {
                series.drain(..excess);
            }
        }
        if self.buffer.len() < self.config.window || self.since_last < self.config.stride {
            return None;
        }
        self.since_last = 0;
        self.diagnose_window()
    }

    fn diagnose_window(&mut self) -> Option<Alarm> {
        // Preprocess a copy of the window: counters in the live stream are
        // cumulative, exactly as in offline collection. No trimming — the
        // window is already steady-state by construction.
        let mut window = self.buffer.clone();
        preprocess(
            &mut window,
            &PreprocessConfig { trim_frac: 0.0, diff_counters: true, interpolate: true },
        );
        let mut row = Vec::with_capacity(self.selected_features.len());
        let mut full = Vec::new();
        for m in 0..window.n_metrics() {
            self.extractor.extract(window.metric(m), &mut full);
        }
        for &c in &self.selected_features {
            row.push(full[c]);
        }
        let mut x = Matrix::from_rows(&[row]);
        self.scaler.transform_inplace(&mut x);
        let diagnosis = self.model.diagnose(&x).remove(0);
        let verdict = WindowVerdict { at: self.ingested, diagnosis: diagnosis.clone() };
        self.verdicts.push(verdict);

        let anomalous =
            diagnosis.label != "healthy" && diagnosis.confidence >= self.config.min_confidence;
        if !anomalous {
            self.streak.clear();
            return None;
        }
        // Streak must agree on the label to confirm.
        if self.streak.first().map(|d| d.label.as_str()) != Some(diagnosis.label.as_str()) {
            self.streak.clear();
        }
        self.streak.push(diagnosis.clone());
        if self.streak.len() >= self.config.confirm {
            let confidence =
                self.streak.iter().map(|d| d.confidence).sum::<f64>() / self.streak.len() as f64;
            let alarm = Alarm { at: self.ingested, label: diagnosis.label, confidence };
            self.alarms.push(alarm.clone());
            self.streak.clear();
            return Some(alarm);
        }
        None
    }

    /// All window verdicts so far.
    pub fn verdicts(&self) -> &[WindowVerdict] {
        &self.verdicts
    }

    /// All alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Samples ingested so far.
    pub fn ingested(&self) -> usize {
        self.ingested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FeatureMethod, System, SystemData};
    use crate::split::{prepare_split, SplitConfig};
    use alba_features::Mvts;
    use alba_ml::{Classifier, FittedModel, ForestParams, RandomForest};
    use alba_telemetry::{
        find_application, generate_run, AnomalyKind, Injection, NoiseConfig, RunConfig, Scale,
        SignatureConfig,
    };

    /// Trains a small deployable model and returns everything a monitor
    /// needs.
    fn deployable() -> (DiagnosisModel, Vec<usize>, alba_features::MinMaxScaler) {
        let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 61);
        let split = prepare_split(
            &data.dataset,
            &SplitConfig { train_fraction: 0.6, top_k_features: 300 },
            61,
        );
        let mut f =
            RandomForest::new(ForestParams { n_estimators: 15, ..ForestParams::default() });
        f.fit(&split.train.x, &split.train.y, split.train.n_classes());
        let model = DiagnosisModel::new(
            FittedModel::Forest(f),
            split.train.encoder.names().to_vec(),
        );
        (model, split.selected_features.clone(), split.scaler.clone())
    }

    fn run_stream(
        injection: Option<Injection>,
        cfg: MonitorConfig,
    ) -> (Vec<WindowVerdict>, Vec<Alarm>) {
        let (model, selected, scaler) = deployable();
        let campaign = System::Volta.campaign(Scale::Smoke, 61);
        let catalog = campaign.catalog();
        let run = generate_run(
            &RunConfig {
                app: find_application("BT").unwrap(),
                input_deck: 0,
                node_count: 1,
                duration_s: 200,
                injection,
                run_id: 1,
                seed: 99,
            },
            &catalog,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let series = &run[0].series;
        let mut monitor = NodeMonitor::new(
            &model,
            &Mvts,
            series.metrics.clone(),
            selected,
            scaler,
            cfg,
        );
        let mut row = vec![0.0; series.n_metrics()];
        for t in 0..series.len() {
            for m in 0..series.n_metrics() {
                row[m] = series.metric(m)[t];
            }
            monitor.ingest(&row);
        }
        (monitor.verdicts().to_vec(), monitor.alarms().to_vec())
    }

    #[test]
    fn healthy_stream_raises_no_alarm() {
        let (verdicts, alarms) = run_stream(None, MonitorConfig::default());
        assert!(!verdicts.is_empty(), "windows were diagnosed");
        assert!(
            alarms.is_empty(),
            "healthy run must not alarm (got {alarms:?})"
        );
    }

    #[test]
    fn memleak_stream_raises_a_confirmed_alarm() {
        let (verdicts, alarms) = run_stream(
            Some(Injection::new(AnomalyKind::MemLeak, 100)),
            MonitorConfig { confirm: 2, ..MonitorConfig::default() },
        );
        assert!(!verdicts.is_empty());
        assert!(!alarms.is_empty(), "a full-intensity memleak must alarm");
        assert_eq!(alarms[0].label, "memleak");
        assert!(alarms[0].confidence >= 0.5);
    }

    #[test]
    fn stride_controls_diagnosis_cadence() {
        let (verdicts, _) = run_stream(
            None,
            MonitorConfig { window: 60, stride: 30, ..MonitorConfig::default() },
        );
        // ~232 total samples (incl. transients): first window at 60, then
        // every 30 samples.
        let expected = 1 + (230usize.saturating_sub(60)) / 30;
        assert!(
            (verdicts.len() as i64 - expected as i64).abs() <= 2,
            "verdicts {} expected ~{expected}",
            verdicts.len()
        );
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let (model, selected, scaler) = deployable();
        let _ = NodeMonitor::new(
            &model,
            &Mvts,
            vec![],
            selected,
            scaler,
            MonitorConfig { stride: 0, ..MonitorConfig::default() },
        );
    }
}
