//! Online monitoring — the paper's deployment scenario (Sec. VI future
//! work: "a scenario where ALBADross is deployed on a production HPC
//! system").
//!
//! A [`NodeMonitor`] ingests one node's telemetry sample-by-sample,
//! maintains a sliding window, and periodically extracts features and runs
//! the deployed [`DiagnosisModel`] over the window — turning the offline
//! per-run diagnosis of the paper into a continuous per-node health signal
//! with hysteresis (an alarm is raised only after `confirm` consecutive
//! anomalous windows, suppressing one-off glitches).
//!
//! Monitors own their model and extractor through `Arc`, so they are
//! `Send` (the fleet service shards them across worker threads) and the
//! model can be hot-swapped atomically via [`NodeMonitor::set_model`]
//! without touching buffered telemetry or the alarm streak. The batched
//! serve path drives the lower-level [`NodeMonitor::push`] /
//! [`NodeMonitor::window_row`] / [`NodeMonitor::apply_diagnosis`] hooks
//! so feature extraction and inference can run once per *batch* of
//! nodes; [`NodeMonitor::ingest`] composes the same hooks for
//! single-node use.

use std::sync::Arc;

use alba_data::{Matrix, MetricDef, MultiSeries};
use alba_features::{ExtractPlan, ExtractScratch, FeatureExtractor, FeatureView, PreprocessConfig};
use alba_ml::{Diagnosis, DiagnosisModel};
use serde::{Deserialize, Serialize};

/// Monitoring configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Sliding-window length in samples (1 Hz ⇒ seconds).
    pub window: usize,
    /// Diagnose every `stride` new samples.
    pub stride: usize,
    /// Consecutive anomalous windows required before an alarm is raised.
    pub confirm: usize,
    /// Minimum model confidence for a window to count as anomalous.
    pub min_confidence: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { window: 60, stride: 10, confirm: 3, min_confidence: 0.5 }
    }
}

/// A raised alarm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Sample index (time) at which the alarm fired.
    pub at: usize,
    /// Diagnosed anomaly label.
    pub label: String,
    /// Mean confidence over the confirming windows.
    pub confidence: f64,
}

/// One window diagnosis (alarmed or not).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowVerdict {
    /// Sample index at the window's end.
    pub at: usize,
    /// The model's diagnosis for the window.
    pub diagnosis: Diagnosis,
}

/// Live-stream preprocessing: counters are cumulative exactly as in
/// offline collection; no trimming — the window is already steady-state
/// by construction.
fn stream_preprocess() -> PreprocessConfig {
    PreprocessConfig { trim_frac: 0.0, diff_counters: true, interpolate: true }
}

/// Sliding-window online diagnoser for one compute node.
#[derive(Clone)]
pub struct NodeMonitor {
    model: Arc<DiagnosisModel>,
    extractor: Arc<dyn FeatureExtractor + Send + Sync>,
    /// Projection + scaling of extracted features into the model's
    /// feature view (the split's selected columns).
    view: FeatureView,
    /// Selected columns grouped by metric — lets the hot path skip
    /// metrics the model never consumes. Shared by cloned monitors.
    plan: Arc<ExtractPlan>,
    config: MonitorConfig,
    buffer: MultiSeries,
    since_last: usize,
    ingested: usize,
    /// Labels of the most recent consecutive anomalous windows.
    streak: Vec<Diagnosis>,
    /// All verdicts so far.
    verdicts: Vec<WindowVerdict>,
    /// Raised alarms.
    alarms: Vec<Alarm>,
}

impl NodeMonitor {
    /// Creates a monitor for one node.
    pub fn new(
        model: Arc<DiagnosisModel>,
        extractor: Arc<dyn FeatureExtractor + Send + Sync>,
        metrics: Vec<MetricDef>,
        view: FeatureView,
        config: MonitorConfig,
    ) -> Self {
        assert!(config.window >= 8, "windows shorter than 8 samples are meaningless");
        assert!(config.stride >= 1, "stride must be positive");
        assert!(config.confirm >= 1, "confirm must be positive");
        let plan = Arc::new(view.plan(extractor.as_ref()));
        Self {
            model,
            extractor,
            view,
            plan,
            config,
            buffer: MultiSeries::new(metrics),
            since_last: 0,
            ingested: 0,
            streak: Vec::new(),
            verdicts: Vec::new(),
            alarms: Vec::new(),
        }
    }

    /// Ingests one timestamp of readings; returns a fresh alarm if this
    /// sample completed a confirmed anomalous streak.
    pub fn ingest(&mut self, readings: &[f64]) -> Option<Alarm> {
        if !self.push(readings) {
            return None;
        }
        let mut x = Matrix::from_rows(&[self.window_row()]);
        self.view.scale_inplace(&mut x);
        let diagnosis = self.model.diagnose(&x).remove(0);
        self.apply_diagnosis(diagnosis)
    }

    /// Buffers one timestamp of readings; returns `true` when a full
    /// window is due for diagnosis (and resets the stride counter).
    ///
    /// Lower-level hook for batched callers: follow up with
    /// [`NodeMonitor::window_row`] and, once the model has run,
    /// [`NodeMonitor::apply_diagnosis`].
    pub fn push(&mut self, readings: &[f64]) -> bool {
        self.buffer.push_sample(readings);
        self.ingested += 1;
        self.since_last += 1;
        // Trim the buffer to the window length.
        if self.buffer.len() > self.config.window {
            let excess = self.buffer.len() - self.config.window;
            for series in &mut self.buffer.values {
                series.drain(..excess);
            }
        }
        if self.buffer.len() < self.config.window || self.since_last < self.config.stride {
            return false;
        }
        self.since_last = 0;
        true
    }

    /// Extracts the *unscaled* model-input row for the current window.
    /// Batched callers stack these rows into a matrix, scale it once via
    /// [`NodeMonitor::view`], and run the model over the whole batch.
    pub fn window_row(&self) -> Vec<f64> {
        self.view.unscaled_row(self.extractor.as_ref(), &self.buffer, &stream_preprocess())
    }

    /// Zero-copy equivalent of [`NodeMonitor::window_row`]: extracts only
    /// the metrics the view selects, scattering straight into `out`
    /// through the cached [`ExtractPlan`]. Bit-identical to
    /// `window_row()` (pinned by a test below); the hot serve path calls
    /// this with a per-shard scratch so no per-window allocation remains.
    pub fn window_row_into(&self, scratch: &mut ExtractScratch, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.view.n_features(), 0.0);
        self.view.unscaled_row_into(
            self.extractor.as_ref(),
            &self.buffer,
            &stream_preprocess(),
            &self.plan,
            scratch,
            out,
        );
    }

    /// Records a window diagnosis and applies the hysteresis/confirm
    /// logic; returns a fresh alarm if this window completed a confirmed
    /// anomalous streak.
    pub fn apply_diagnosis(&mut self, diagnosis: Diagnosis) -> Option<Alarm> {
        let verdict = WindowVerdict { at: self.ingested, diagnosis: diagnosis.clone() };
        self.verdicts.push(verdict);

        let anomalous =
            diagnosis.label != "healthy" && diagnosis.confidence >= self.config.min_confidence;
        if !anomalous {
            self.streak.clear();
            return None;
        }
        // Streak must agree on the label to confirm.
        if self.streak.first().map(|d| d.label.as_str()) != Some(diagnosis.label.as_str()) {
            self.streak.clear();
        }
        self.streak.push(diagnosis.clone());
        if self.streak.len() >= self.config.confirm {
            let confidence =
                self.streak.iter().map(|d| d.confidence).sum::<f64>() / self.streak.len() as f64;
            let alarm = Alarm { at: self.ingested, label: diagnosis.label, confidence };
            self.alarms.push(alarm.clone());
            self.streak.clear();
            return Some(alarm);
        }
        None
    }

    /// The deployed model.
    pub fn model(&self) -> &Arc<DiagnosisModel> {
        &self.model
    }

    /// Atomically swaps in a refreshed model. Buffered telemetry, the
    /// verdict history and the alarm streak are untouched; the next
    /// window is diagnosed by the new model.
    pub fn set_model(&mut self, model: Arc<DiagnosisModel>) {
        self.model = model;
    }

    /// The monitor's feature view (shared with batched callers so that
    /// batch scaling matches the single-node path exactly).
    pub fn view(&self) -> &FeatureView {
        &self.view
    }

    /// The monitoring configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// All window verdicts so far.
    pub fn verdicts(&self) -> &[WindowVerdict] {
        &self.verdicts
    }

    /// All alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Samples ingested so far.
    pub fn ingested(&self) -> usize {
        self.ingested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FeatureMethod, System, SystemData};
    use crate::split::{prepare_split, SplitConfig};
    use alba_features::Mvts;
    use alba_ml::{Classifier, FittedModel, ForestParams, RandomForest};
    use alba_telemetry::{
        find_application, generate_run, AnomalyKind, Injection, NoiseConfig, RunConfig, Scale,
        SignatureConfig,
    };

    /// Monitors must be shardable across worker threads.
    #[test]
    fn monitor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NodeMonitor>();
    }

    /// Trains a small deployable model and returns everything a monitor
    /// needs.
    fn deployable() -> (Arc<DiagnosisModel>, FeatureView) {
        let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, Scale::Smoke, 61);
        let split = prepare_split(
            &data.dataset,
            &SplitConfig { train_fraction: 0.6, top_k_features: 300 },
            61,
        );
        let mut f = RandomForest::new(ForestParams { n_estimators: 15, ..ForestParams::default() });
        f.fit(&split.train.x, &split.train.y, split.train.n_classes());
        let model =
            DiagnosisModel::new(FittedModel::Forest(f), split.train.encoder.names().to_vec());
        (Arc::new(model), split.feature_view())
    }

    fn run_stream(
        injection: Option<Injection>,
        cfg: MonitorConfig,
    ) -> (Vec<WindowVerdict>, Vec<Alarm>) {
        let (model, view) = deployable();
        let campaign = System::Volta.campaign(Scale::Smoke, 61);
        let catalog = campaign.catalog();
        let run = generate_run(
            &RunConfig {
                app: find_application("BT").unwrap(),
                input_deck: 0,
                node_count: 1,
                duration_s: 200,
                injection,
                run_id: 1,
                seed: 99,
            },
            &catalog,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let series = &run[0].series;
        let mut monitor =
            NodeMonitor::new(model, Arc::new(Mvts), series.metrics.clone(), view, cfg);
        let mut row = vec![0.0; series.n_metrics()];
        for t in 0..series.len() {
            for (m, r) in row.iter_mut().enumerate() {
                *r = series.metric(m)[t];
            }
            monitor.ingest(&row);
        }
        (monitor.verdicts().to_vec(), monitor.alarms().to_vec())
    }

    #[test]
    fn healthy_stream_raises_no_alarm() {
        let (verdicts, alarms) = run_stream(None, MonitorConfig::default());
        assert!(!verdicts.is_empty(), "windows were diagnosed");
        assert!(alarms.is_empty(), "healthy run must not alarm (got {alarms:?})");
    }

    #[test]
    fn memleak_stream_raises_a_confirmed_alarm() {
        let (verdicts, alarms) = run_stream(
            Some(Injection::new(AnomalyKind::MemLeak, 100)),
            MonitorConfig { confirm: 2, ..MonitorConfig::default() },
        );
        assert!(!verdicts.is_empty());
        assert!(!alarms.is_empty(), "a full-intensity memleak must alarm");
        assert_eq!(alarms[0].label, "memleak");
        assert!(alarms[0].confidence >= 0.5);
    }

    #[test]
    fn stride_controls_diagnosis_cadence() {
        let (verdicts, _) =
            run_stream(None, MonitorConfig { window: 60, stride: 30, ..MonitorConfig::default() });
        // ~232 total samples (incl. transients): first window at 60, then
        // every 30 samples.
        let expected = 1 + (230usize.saturating_sub(60)) / 30;
        assert!(
            (verdicts.len() as i64 - expected as i64).abs() <= 2,
            "verdicts {} expected ~{expected}",
            verdicts.len()
        );
    }

    /// The batched hooks (`push` / `window_row` / `apply_diagnosis`) must
    /// produce exactly the verdicts and alarms of the one-shot `ingest`.
    #[test]
    fn batched_hooks_match_ingest() {
        let (model, view) = deployable();
        let campaign = System::Volta.campaign(Scale::Smoke, 61);
        let catalog = campaign.catalog();
        let run = generate_run(
            &RunConfig {
                app: find_application("BT").unwrap(),
                input_deck: 0,
                node_count: 1,
                duration_s: 200,
                injection: Some(Injection::new(AnomalyKind::MemLeak, 100)),
                run_id: 1,
                seed: 99,
            },
            &catalog,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let series = &run[0].series;
        let cfg = MonitorConfig { confirm: 2, ..MonitorConfig::default() };
        let mut direct = NodeMonitor::new(
            Arc::clone(&model),
            Arc::new(Mvts),
            series.metrics.clone(),
            view.clone(),
            cfg.clone(),
        );
        let mut hooked =
            NodeMonitor::new(Arc::clone(&model), Arc::new(Mvts), series.metrics.clone(), view, cfg);
        let mut row = vec![0.0; series.n_metrics()];
        for t in 0..series.len() {
            for (m, r) in row.iter_mut().enumerate() {
                *r = series.metric(m)[t];
            }
            let a = direct.ingest(&row);
            let b = if hooked.push(&row) {
                let mut x = Matrix::from_rows(&[hooked.window_row()]);
                hooked.view().scale_inplace(&mut x);
                let d = hooked.model().diagnose(&x).remove(0);
                hooked.apply_diagnosis(d)
            } else {
                None
            };
            assert_eq!(a, b, "divergence at sample {t}");
        }
        assert_eq!(direct.verdicts().len(), hooked.verdicts().len());
        assert_eq!(direct.alarms(), hooked.alarms());
    }

    /// The planned zero-copy row must be bit-identical to the
    /// materialised `window_row` at every diagnosis point of a stream.
    #[test]
    fn window_row_into_matches_window_row() {
        let (model, view) = deployable();
        let campaign = System::Volta.campaign(Scale::Smoke, 61);
        let catalog = campaign.catalog();
        let run = generate_run(
            &RunConfig {
                app: find_application("BT").unwrap(),
                input_deck: 0,
                node_count: 1,
                duration_s: 150,
                injection: Some(Injection::new(AnomalyKind::MemLeak, 80)),
                run_id: 1,
                seed: 7,
            },
            &catalog,
            &SignatureConfig::default(),
            &NoiseConfig::testbed(),
        );
        let series = &run[0].series;
        let mut monitor = NodeMonitor::new(
            model,
            Arc::new(Mvts),
            series.metrics.clone(),
            view,
            MonitorConfig::default(),
        );
        let mut scratch = ExtractScratch::default();
        let mut got = Vec::new();
        let mut row = vec![0.0; series.n_metrics()];
        let mut checked = 0;
        for t in 0..series.len() {
            for (m, r) in row.iter_mut().enumerate() {
                *r = series.metric(m)[t];
            }
            if monitor.push(&row) {
                let golden = monitor.window_row();
                monitor.window_row_into(&mut scratch, &mut got);
                assert_eq!(golden.len(), got.len());
                for (i, (a, b)) in golden.iter().zip(&got).enumerate() {
                    assert!(a.to_bits() == b.to_bits(), "t={t} col={i}: {a} vs {b}");
                }
                checked += 1;
            }
        }
        assert!(checked > 3, "stream produced enough windows to compare");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let (model, view) = deployable();
        let _ = NodeMonitor::new(
            model,
            Arc::new(Mvts),
            vec![],
            view,
            MonitorConfig { stride: 0, ..MonitorConfig::default() },
        );
    }
}
