//! Tables I–III: the experimental-setup tables (applications per system
//! and the HPAS anomaly suite), regenerated from the simulator's catalogs.

use crate::report::render_table;
use alba_telemetry::{eclipse_catalog, eclipse_intensities, volta_catalog, AnomalyKind};

/// Renders Table I (applications run on Volta).
pub fn render_table1() -> String {
    let rows: Vec<Vec<String>> = volta_catalog()
        .iter()
        .map(|a| vec![a.suite.clone(), a.name.clone(), a.description.clone()])
        .collect();
    format!(
        "== Table I: applications run on Volta ==\n{}",
        render_table(&["Benchmark", "Application", "Description"], &rows)
    )
}

/// Renders Table II (applications run on Eclipse).
pub fn render_table2() -> String {
    let rows: Vec<Vec<String>> = eclipse_catalog()
        .iter()
        .map(|a| vec![a.suite.clone(), a.name.clone(), a.description.clone()])
        .collect();
    format!(
        "== Table II: applications run on Eclipse ==\n{}",
        render_table(&["Suite", "Application", "Description"], &rows)
    )
}

/// Renders Table III (HPAS anomalies), extended with the intensity settings
/// of both campaigns.
pub fn render_table3() -> String {
    let rows: Vec<Vec<String>> = AnomalyKind::ALL
        .iter()
        .map(|&k| {
            vec![
                k.label().to_string(),
                k.behavior().to_string(),
                "2,5,10,20,50,100".to_string(),
                eclipse_intensities(k).iter().map(|i| i.to_string()).collect::<Vec<_>>().join(","),
            ]
        })
        .collect();
    format!(
        "== Table III: HPAS anomalies ==\n{}",
        render_table(
            &["Anomaly", "Behavior", "Volta intensities (%)", "Eclipse intensities (%)"],
            &rows
        )
    )
}

/// All three setup tables.
pub fn render_setup_tables() -> String {
    format!("{}\n{}\n{}", render_table1(), render_table2(), render_table3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_volta_apps() {
        let t = render_table1();
        for app in
            ["BT", "CG", "FT", "LU", "MG", "SP", "MiniMD", "CoMD", "MiniGhost", "MiniAMR", "Kripke"]
        {
            assert!(t.contains(app), "missing {app}");
        }
    }

    #[test]
    fn table2_lists_all_eclipse_apps() {
        let t = render_table2();
        for app in ["LAMMPS", "HACC", "sw4", "ExaMiniMD", "SWFFT", "sw4lite"] {
            assert!(t.contains(app), "missing {app}");
        }
    }

    #[test]
    fn table3_lists_all_anomalies_with_intensities() {
        let t = render_table3();
        for a in ["cpuoccupy", "cachecopy", "membw", "memleak", "dial"] {
            assert!(t.contains(a), "missing {a}");
        }
        assert!(t.contains("2,5,10,20,50,100"));
    }
}
