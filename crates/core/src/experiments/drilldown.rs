//! Query drill-down (paper Fig. 4): which labels and applications the best
//! query strategy asks about during its first 50 queries on Volta.
//!
//! The paper finds that the uncertainty strategy initially hunts for
//! *healthy* labels (~30 of the first 50; the seed set contains none),
//! that `dial` is the most-queried anomaly (it is the hardest to
//! diagnose), and that Kripke is the most-queried application.

use crate::experiments::curves::CurvesResult;
use crate::report::render_table;
use alba_active::QueryDrilldown;
use serde::{Deserialize, Serialize};

/// Result of the drill-down experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrilldownResult {
    /// Strategy analysed.
    pub strategy: String,
    /// The per-label / per-application counts.
    pub drilldown: QueryDrilldown,
}

impl DrilldownResult {
    /// Computes the drill-down from a finished curves run.
    ///
    /// `first_n` is 50 in the paper.
    pub fn from_curves(curves: &CurvesResult, strategy: &str, first_n: usize) -> Self {
        let sessions = curves
            .sessions
            .get(strategy)
            .unwrap_or_else(|| panic!("no sessions for strategy {strategy:?}"));
        let drilldown = QueryDrilldown::compute(sessions, first_n, &curves.class_names);
        Self { strategy: strategy.to_string(), drilldown }
    }

    /// Text rendering: two ranked tables.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== Fig.4-style drill-down: first {} queries of {} ==\n",
            self.drilldown.first_n, self.strategy
        );
        let mut labels: Vec<(&String, &f64)> = self.drilldown.label_counts.iter().collect();
        labels.sort_by(|a, b| b.1.total_cmp(a.1));
        out.push_str(&render_table(
            &["label", "mean queried"],
            &labels.iter().map(|(k, v)| vec![(*k).clone(), format!("{v:.1}")]).collect::<Vec<_>>(),
        ));
        let mut apps: Vec<(&String, &f64)> = self.drilldown.app_counts.iter().collect();
        apps.sort_by(|a, b| b.1.total_cmp(a.1));
        out.push_str(&render_table(
            &["application", "mean queried"],
            &apps.iter().map(|(k, v)| vec![(*k).clone(), format!("{v:.1}")]).collect::<Vec<_>>(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FeatureMethod, System};
    use crate::experiments::curves::{run_curves, CurvesConfig};
    use crate::scale::RunScale;

    #[test]
    fn drilldown_from_smoke_curves() {
        let curves = run_curves(&CurvesConfig {
            system: System::Volta,
            method: Some(FeatureMethod::Mvts),
            scale: RunScale::smoke(5),
            include_proctor: false,
        });
        let d = DrilldownResult::from_curves(&curves, "uncertainty", 10);
        let total: f64 = d.drilldown.label_counts.values().sum();
        assert!((total - 10.0).abs() < 1e-9, "mean counts must sum to first_n, got {total}");
        let text = d.render();
        assert!(text.contains("label"));
        assert!(text.contains("application"));
    }

    #[test]
    #[should_panic(expected = "no sessions")]
    fn unknown_strategy_panics() {
        let curves = run_curves(&CurvesConfig {
            system: System::Volta,
            method: Some(FeatureMethod::Mvts),
            scale: RunScale::smoke(6),
            include_proctor: false,
        });
        let _ = DrilldownResult::from_curves(&curves, "nonexistent", 10);
    }
}
