//! Ablation studies beyond the paper's evaluation.
//!
//! DESIGN.md commits to five ablations of design choices the paper fixes
//! without exploration:
//!
//! 1. **Strategy x model matrix** — the paper pairs its strategies with a
//!    random forest only; does margin beat uncertainty under LGBM or LR?
//! 2. **Feature-extractor ablation** — Table V asserts TSFRESH is best on
//!    Volta and MVTS on Eclipse; measure all four combinations.
//! 3. **Chi-square top-k sweep** — the paper sweeps 250..6436 features and
//!    settles on 2000; regenerate the sweep at reduced scale.
//! 4. **Anomaly-intensity sensitivity** — how much of the diagnosis score
//!    comes from the easy high-intensity injections?
//! 5. **Batch-mode querying** — the paper re-trains after every single
//!    label (and lists cheaper querying as future work); measure the cost
//!    of labeling in batches of 1 / 5 / 10 per re-train.

use crate::data::{FeatureMethod, System, SystemData};
use crate::report::{fmt_opt, fmt_score, render_table};
use crate::scale::RunScale;
use crate::split::{prepare_split, seed_and_pool};
use alba_active::{run_batched_session, MethodCurves, SessionConfig, Strategy};
use alba_data::Dataset;
use alba_ml::{ModelFamily, ModelSpec, Scores};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of the strategy x model matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrategyModelMatrix {
    /// Model families evaluated (columns).
    pub families: Vec<ModelFamily>,
    /// Strategies evaluated (rows).
    pub strategies: Vec<Strategy>,
    /// `final_f1[strategy][family]` after the query budget.
    pub final_f1: Vec<Vec<f64>>,
}

impl StrategyModelMatrix {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["strategy"];
        let names: Vec<&str> = self.families.iter().map(|f| f.name()).collect();
        header.extend(&names);
        let rows: Vec<Vec<String>> = self
            .strategies
            .iter()
            .zip(&self.final_f1)
            .map(|(s, row)| {
                let mut cells = vec![s.name().to_string()];
                cells.extend(row.iter().map(|&v| fmt_score(v)));
                cells
            })
            .collect();
        format!(
            "== Ablation: query strategy x model family (final F1, Volta) ==\n{}",
            render_table(&header, &rows)
        )
    }
}

/// Runs the strategy x model matrix on Volta (MVTS features for speed).
pub fn run_strategy_model_matrix(scale: &RunScale) -> StrategyModelMatrix {
    let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, scale.campaign, scale.seed);
    let split = prepare_split(&data.dataset, &scale.split, scale.seed ^ 0xAB1);
    let sp = seed_and_pool(&split.train, None, scale.seed ^ 0xAB2);
    let families = vec![ModelFamily::Rf, ModelFamily::Lgbm, ModelFamily::Lr, ModelFamily::Mlp];
    let strategies =
        vec![Strategy::Uncertainty, Strategy::Margin, Strategy::Entropy, Strategy::Random];

    let jobs: Vec<(usize, usize)> =
        (0..strategies.len()).flat_map(|s| (0..families.len()).map(move |f| (s, f))).collect();
    let scores: Vec<((usize, usize), f64)> = jobs
        .par_iter()
        .map(|&(si, fi)| {
            let spec = ModelSpec::tuned(families[fi], true);
            let session = run_batched_session(
                &spec,
                &sp.seed_set,
                &sp.pool,
                &split.test,
                &SessionConfig {
                    strategy: strategies[si],
                    budget: scale.budget.min(40),
                    target_f1: None,
                    seed: scale.seed ^ ((si as u64) << 8) ^ (fi as u64),
                },
                // Batch 10 keeps the slowest families (MLP, LGBM) tractable:
                // 4 re-trains per cell instead of 40.
                10,
            );
            let f1 = session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1);
            ((si, fi), f1)
        })
        .collect();
    let mut final_f1 = vec![vec![0.0; families.len()]; strategies.len()];
    for ((s, f), v) in scores {
        final_f1[s][f] = v;
    }
    StrategyModelMatrix { families, strategies, final_f1 }
}

/// One row of the feature-extractor ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureAblationRow {
    /// System evaluated.
    pub system: String,
    /// Extractor used.
    pub method: String,
    /// Starting F1 of the seed-only model.
    pub starting_f1: f64,
    /// Final F1 after the budget (uncertainty strategy).
    pub final_f1: f64,
    /// Mean queries to 0.80 F1.
    pub to_080: Option<f64>,
}

/// Result of the feature-extractor ablation (Table V's premise).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureAblation {
    /// All four (system, extractor) combinations.
    pub rows: Vec<FeatureAblationRow>,
}

impl FeatureAblation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    r.method.clone(),
                    fmt_score(r.starting_f1),
                    fmt_opt(r.to_080),
                    fmt_score(r.final_f1),
                ]
            })
            .collect();
        format!(
            "== Ablation: feature extractor per system (uncertainty strategy) ==\n{}",
            render_table(&["system", "extractor", "start F1", "to 0.80", "final F1"], &rows)
        )
    }
}

/// Runs the 2x2 feature-extractor ablation.
pub fn run_feature_ablation(scale: &RunScale) -> FeatureAblation {
    let combos = [
        (System::Volta, FeatureMethod::Mvts),
        (System::Volta, FeatureMethod::TsFresh),
        (System::Eclipse, FeatureMethod::Mvts),
        (System::Eclipse, FeatureMethod::TsFresh),
    ];
    let rows = combos
        .iter()
        .map(|&(system, method)| {
            let data = SystemData::generate(system, method, scale.campaign, scale.seed);
            let split = prepare_split(&data.dataset, &scale.split, scale.seed ^ 0xFA1);
            let sp = seed_and_pool(&split.train, None, scale.seed ^ 0xFA2);
            let spec = scale.model(system == System::Volta);
            let session = run_batched_session(
                &spec,
                &sp.seed_set,
                &sp.pool,
                &split.test,
                &SessionConfig {
                    strategy: Strategy::Uncertainty,
                    budget: scale.budget,
                    target_f1: None,
                    seed: scale.seed ^ 0xFA3,
                },
                1,
            );
            let to_080 = MethodCurves::mean_queries_to_target(std::slice::from_ref(&session), 0.80);
            FeatureAblationRow {
                system: system.name().to_string(),
                method: method.name().to_string(),
                starting_f1: session.initial_scores.f1,
                final_f1: session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1),
                to_080,
            }
        })
        .collect();
    FeatureAblation { rows }
}

/// Result of the chi-square top-k sweep (paper Sec. IV-E.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopKSweep {
    /// Feature counts swept.
    pub ks: Vec<usize>,
    /// Supervised test F1 of the tuned model at each k.
    pub f1: Vec<f64>,
}

impl TopKSweep {
    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> =
            self.ks.iter().zip(&self.f1).map(|(k, f)| vec![k.to_string(), fmt_score(*f)]).collect();
        format!(
            "== Ablation: chi-square top-k sweep (Volta, tuned RF) ==\n{}",
            render_table(&["top-k features", "test F1"], &rows)
        )
    }
}

/// Runs the top-k sweep on Volta.
pub fn run_topk_sweep(scale: &RunScale, ks: &[usize]) -> TopKSweep {
    let data = SystemData::generate_best(System::Volta, scale.campaign, scale.seed);
    let spec = scale.model(true);
    let f1: Vec<f64> = ks
        .par_iter()
        .map(|&k| {
            let mut cfg = scale.split;
            cfg.top_k_features = k;
            let split = prepare_split(&data.dataset, &cfg, scale.seed ^ 0x70F);
            let mut model = spec.with_seed(scale.seed ^ 0x70E).build();
            model.fit(&split.train.x, &split.train.y, split.train.n_classes());
            let pred = model.predict(&split.test.x);
            Scores::compute(&split.test.y, &pred, split.train.n_classes()).f1
        })
        .collect();
    TopKSweep { ks: ks.to_vec(), f1 }
}

/// Result of the intensity-sensitivity ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntensitySensitivity {
    /// Intensity buckets (upper bounds in percent).
    pub buckets: Vec<(u32, u32)>,
    /// Per-bucket recall of anomalous test samples (tuned RF trained on the
    /// full training pool).
    pub recall: Vec<f64>,
    /// Number of anomalous test samples per bucket.
    pub support: Vec<usize>,
}

impl IntensitySensitivity {
    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .buckets
            .iter()
            .zip(self.recall.iter().zip(&self.support))
            .map(|((lo, hi), (r, n))| vec![format!("{lo}-{hi}%"), fmt_score(*r), n.to_string()])
            .collect();
        format!(
            "== Ablation: diagnosis recall vs injected intensity (Volta) ==\n{}",
            render_table(&["intensity", "recall", "test samples"], &rows)
        )
    }
}

/// Measures per-intensity diagnosis recall on Volta.
pub fn run_intensity_sensitivity(scale: &RunScale) -> IntensitySensitivity {
    let data = SystemData::generate_best(System::Volta, scale.campaign, scale.seed);
    let split = prepare_split(&data.dataset, &scale.split, scale.seed ^ 0x1A7);
    let spec = scale.model(true);
    let mut model = spec.with_seed(scale.seed ^ 0x1A8).build();
    model.fit(&split.train.x, &split.train.y, split.train.n_classes());
    let pred = model.predict(&split.test.x);
    let buckets = vec![(2u32, 5u32), (10, 20), (50, 100)];
    let mut recall = Vec::new();
    let mut support = Vec::new();
    for &(lo, hi) in &buckets {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (p, (m, &y)) in pred.iter().zip(split.test.meta.iter().zip(&split.test.y)) {
            if y == 0 || m.intensity_pct < lo || m.intensity_pct > hi {
                continue;
            }
            total += 1;
            if *p == y {
                ok += 1;
            }
        }
        recall.push(if total == 0 { 0.0 } else { ok as f64 / total as f64 });
        support.push(total);
    }
    IntensitySensitivity { buckets, recall, support }
}

/// Result of the batch-mode ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchModeAblation {
    /// Batch sizes evaluated.
    pub batch_sizes: Vec<usize>,
    /// Labels needed to reach 0.80 F1 per batch size (uncertainty).
    pub labels_to_080: Vec<Option<f64>>,
    /// Final F1 after the budget.
    pub final_f1: Vec<f64>,
    /// Model re-trains consumed (budget / batch, the annotator-side win).
    pub retrains: Vec<usize>,
}

impl BatchModeAblation {
    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .batch_sizes
            .iter()
            .enumerate()
            .map(|(i, b)| {
                vec![
                    b.to_string(),
                    fmt_opt(self.labels_to_080[i]),
                    fmt_score(self.final_f1[i]),
                    self.retrains[i].to_string(),
                ]
            })
            .collect();
        format!(
            "== Ablation: batch-mode querying (uncertainty, Volta) ==\n{}",
            render_table(&["batch size", "labels to 0.80", "final F1", "re-trains"], &rows)
        )
    }
}

/// Runs the batch-mode ablation on Volta.
pub fn run_batch_mode(scale: &RunScale, batch_sizes: &[usize]) -> BatchModeAblation {
    let data = SystemData::generate_best(System::Volta, scale.campaign, scale.seed);
    let split = prepare_split(&data.dataset, &scale.split, scale.seed ^ 0xBA7);
    let sp = seed_and_pool(&split.train, None, scale.seed ^ 0xBA8);
    let spec = scale.model(true);

    let results: Vec<(Option<f64>, f64, usize)> = batch_sizes
        .par_iter()
        .map(|&b| {
            let session = run_batched_session(
                &spec,
                &sp.seed_set,
                &sp.pool,
                &split.test,
                &SessionConfig {
                    strategy: Strategy::Uncertainty,
                    budget: scale.budget,
                    target_f1: None,
                    seed: scale.seed ^ 0xBA9,
                },
                b,
            );
            let to_080 = MethodCurves::mean_queries_to_target(std::slice::from_ref(&session), 0.80);
            let final_f1 =
                session.records.last().map_or(session.initial_scores.f1, |r| r.scores.f1);
            let retrains = session.records.len().div_ceil(b);
            (to_080, final_f1, retrains)
        })
        .collect();
    BatchModeAblation {
        batch_sizes: batch_sizes.to_vec(),
        labels_to_080: results.iter().map(|r| r.0).collect(),
        final_f1: results.iter().map(|r| r.1).collect(),
        retrains: results.iter().map(|r| r.2).collect(),
    }
}

/// Everything bundled, for the `repro --exp ablations` entry point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationSuite {
    /// Strategy x model matrix.
    pub matrix: StrategyModelMatrix,
    /// Feature-extractor 2x2.
    pub features: FeatureAblation,
    /// Chi-square top-k sweep.
    pub topk: TopKSweep,
    /// Intensity sensitivity.
    pub intensity: IntensitySensitivity,
    /// Batch-mode querying.
    pub batch: BatchModeAblation,
}

impl AblationSuite {
    /// Text rendering of every ablation.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}",
            self.matrix.render(),
            self.features.render(),
            self.topk.render(),
            self.intensity.render(),
            self.batch.render()
        )
    }
}

/// Runs the whole ablation suite.
pub fn run_ablations(scale: &RunScale) -> AblationSuite {
    let ks: Vec<usize> = match scale.campaign {
        alba_telemetry::Scale::Smoke => vec![100, 300, 800],
        alba_telemetry::Scale::Default => vec![250, 500, 1200, 2000, 4000],
        alba_telemetry::Scale::Full => vec![250, 500, 1000, 2000, 4000, 6436],
    };
    AblationSuite {
        matrix: run_strategy_model_matrix(scale),
        features: run_feature_ablation(scale),
        topk: run_topk_sweep(scale, &ks),
        intensity: run_intensity_sensitivity(scale),
        batch: run_batch_mode(scale, &[1, 5, 10]),
    }
}

/// Helper for filtering datasets by intensity in external ablations.
pub fn restrict_to_intensities(ds: &Dataset, lo: u32, hi: u32) -> Dataset {
    let idx = ds.indices_where(|m, y| y == 0 || (m.intensity_pct >= lo && m.intensity_pct <= hi));
    ds.select(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_mode_smoke() {
        let res = run_batch_mode(&RunScale::smoke(51), &[1, 4]);
        assert_eq!(res.batch_sizes, vec![1, 4]);
        assert!(res.retrains[1] < res.retrains[0], "bigger batches re-train less");
        for &f in &res.final_f1 {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn topk_sweep_smoke() {
        let res = run_topk_sweep(&RunScale::smoke(52), &[50, 400]);
        assert_eq!(res.ks, vec![50, 400]);
        assert!(res.f1.iter().all(|f| (0.0..=1.0).contains(f)));
        assert!(res.render().contains("top-k"));
    }

    #[test]
    fn intensity_sensitivity_smoke() {
        let res = run_intensity_sensitivity(&RunScale::smoke(53));
        assert_eq!(res.buckets.len(), 3);
        // High-intensity injections must be diagnosed at least as well as
        // the lowest bucket (the monotone trend the sublinear effect model
        // produces).
        assert!(res.recall[2] + 0.15 >= res.recall[0], "recall by bucket: {:?}", res.recall);
    }

    #[test]
    fn restrict_to_intensities_keeps_healthy() {
        let data = SystemData::generate(
            System::Volta,
            FeatureMethod::Mvts,
            alba_telemetry::Scale::Smoke,
            54,
        );
        let r = restrict_to_intensities(&data.dataset, 50, 100);
        assert!(!r.is_empty());
        for (m, &y) in r.meta.iter().zip(&r.y) {
            assert!(y == 0 || (50..=100).contains(&m.intensity_pct));
        }
        let healthy_before = data.dataset.class_counts()[0];
        assert_eq!(r.class_counts()[0], healthy_before);
    }
}
