//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`setup_tables`] | Tables I–III (setup) |
//! | [`table4`] | Table IV (hyperparameter search) |
//! | [`table5`] | Table V (summary of diagnosis results) |
//! | [`curves`] | Figs. 3 and 5 (F1 / false-alarm / miss vs queries) |
//! | [`drilldown`] | Fig. 4 (queried labels & applications) |
//! | [`unseen_apps`] | Fig. 6 (previously unseen applications) |
//! | [`robustness`] | Fig. 7 (robustness motivation, no AL) |
//! | [`unseen_inputs`] | Fig. 8 (previously unseen input decks) |
//! | [`ablations`] | extensions beyond the paper (DESIGN.md) |

pub mod ablations;
pub mod curves;
pub mod drilldown;
pub mod robustness;
pub mod setup_tables;
pub mod table4;
pub mod table5;
pub mod unseen_apps;
pub mod unseen_inputs;

pub use ablations::{run_ablations, AblationSuite};
pub use curves::{run_curves, CurvesConfig, CurvesResult};
pub use drilldown::DrilldownResult;
pub use robustness::{run_robustness, RobustnessConfig, RobustnessResult};
pub use setup_tables::{render_setup_tables, render_table1, render_table2, render_table3};
pub use table4::{run_table4, Table4Config, Table4Result};
pub use table5::{run_table5, table5_row, Table5, Table5Row};
pub use unseen_apps::{run_unseen_apps, UnseenAppsConfig, UnseenAppsResult};
pub use unseen_inputs::{run_unseen_inputs, UnseenInputsConfig, UnseenInputsResult};
