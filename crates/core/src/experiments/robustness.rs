//! The robustness motivation experiment (paper Sec. V-B, Fig. 7).
//!
//! No active learning here: a random forest is trained on *all* samples of
//! `k` applications and evaluated on a constant test set of 3 held-out
//! applications, for k = 2..8. The paper finds a ~30 % F1 drop and a 35x
//! higher false-alarm rate at k = 2 relative to the 5-fold-CV setting where
//! every application appears in training — the motivation for ALBADross's
//! robustness design.

use crate::data::{System, SystemData};
use crate::report::{fmt_score, render_table};
use crate::scale::RunScale;
use crate::split::prepare_pre_split;
use alba_ml::{mean_and_ci95, Scores};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the robustness experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Training-app counts swept (2..=8 in the paper).
    pub training_app_counts: Vec<usize>,
    /// Held-out test applications per combination (3 in the paper).
    pub n_test_apps: usize,
    /// Number of application combinations (11 in the paper).
    pub n_combos: usize,
    /// Sizing.
    pub scale: RunScale,
}

impl RobustnessConfig {
    /// Paper-style defaults.
    pub fn paper(scale: RunScale) -> Self {
        Self { training_app_counts: vec![2, 4, 6, 8], n_test_apps: 3, n_combos: 5, scale }
    }
}

/// Mean ± CI of the three scores at one training-app count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// Number of applications in the training set.
    pub n_training_apps: usize,
    /// (mean, 95 % CI half-width) of the macro F1.
    pub f1: (f64, f64),
    /// (mean, CI) of the false-alarm rate.
    pub false_alarm: (f64, f64),
    /// (mean, CI) of the anomaly miss rate.
    pub miss_rate: (f64, f64),
}

/// Full result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessResult {
    /// One point per training-app count.
    pub points: Vec<RobustnessPoint>,
    /// The 5-fold-CV reference (dashed lines in Fig. 7): all applications
    /// in both training and test.
    pub cv_reference: Scores,
}

impl RobustnessResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.n_training_apps.to_string(),
                    format!("{:.2} ±{:.2}", p.f1.0, p.f1.1),
                    format!("{:.2} ±{:.2}", p.false_alarm.0, p.false_alarm.1),
                    format!("{:.2} ±{:.2}", p.miss_rate.0, p.miss_rate.1),
                ]
            })
            .collect();
        rows.push(vec![
            "all (5-fold CV)".into(),
            fmt_score(self.cv_reference.f1),
            fmt_score(self.cv_reference.false_alarm_rate),
            fmt_score(self.cv_reference.anomaly_miss_rate),
        ]);
        let mut out = String::from("== Fig.7-style: robustness vs training applications ==\n");
        out.push_str(&render_table(&["training apps", "F1", "false alarm", "miss rate"], &rows));
        out
    }
}

/// Runs the robustness sweep on Volta.
pub fn run_robustness(cfg: &RobustnessConfig) -> RobustnessResult {
    let data = SystemData::generate_best(System::Volta, cfg.scale.campaign, cfg.scale.seed);
    let apps = data.dataset.applications();
    assert!(cfg.n_test_apps < apps.len(), "need at least one training application");
    let spec = cfg.scale.model(true);

    // Combination schedule: shuffle apps per combo; the last n_test_apps
    // are the constant test set, prefixes of the rest are the training set.
    let jobs: Vec<(usize, usize)> = (0..cfg.n_combos)
        .flat_map(|c| cfg.training_app_counts.iter().map(move |&k| (c, k)))
        .collect();

    let measurements: Vec<(usize, Scores)> = jobs
        .par_iter()
        .map(|&(combo, k)| {
            let combo_seed = cfg.scale.seed ^ 0xF17 ^ ((combo as u64) << 10);
            let mut rng = StdRng::seed_from_u64(combo_seed);
            let mut shuffled = apps.clone();
            shuffled.shuffle(&mut rng);
            let (train_apps, test_apps) = shuffled.split_at(shuffled.len() - cfg.n_test_apps);
            let k = k.min(train_apps.len());
            let train_apps = &train_apps[..k];

            let train_idx = data.dataset.indices_where(|m, _| train_apps.contains(&m.app));
            let test_idx = data.dataset.indices_where(|m, _| test_apps.contains(&m.app));
            let train_raw = data.dataset.select(&train_idx);
            let test_raw = data.dataset.select(&test_idx);
            let prepared = prepare_pre_split(&train_raw, &test_raw, &cfg.scale.split);

            let mut model = spec.with_seed(combo_seed ^ 0x9).build();
            model.fit(&prepared.train.x, &prepared.train.y, prepared.train.n_classes());
            let pred = model.predict(&prepared.test.x);
            (k, Scores::compute(&prepared.test.y, &pred, prepared.train.n_classes()))
        })
        .collect();

    let points = cfg
        .training_app_counts
        .iter()
        .map(|&k| {
            let scores: Vec<&Scores> =
                measurements.iter().filter(|(mk, _)| *mk == k).map(|(_, s)| s).collect();
            let collect = |f: fn(&Scores) -> f64| -> (f64, f64) {
                let vals: Vec<f64> = scores.iter().map(|s| f(s)).collect();
                mean_and_ci95(&vals)
            };
            RobustnessPoint {
                n_training_apps: k,
                f1: collect(|s| s.f1),
                false_alarm: collect(|s| s.false_alarm_rate),
                miss_rate: collect(|s| s.anomaly_miss_rate),
            }
        })
        .collect();

    // Reference: 5-fold CV with all applications present. We reuse the
    // pool-ceiling protocol (stratified split, leak-free preparation) and
    // report mean scores across splits.
    let cv_reference = cv_all_apps_reference(&data, &cfg.scale);

    RobustnessResult { points, cv_reference }
}

/// Mean scores of the tuned model under repeated stratified splits with all
/// applications present (the dashed reference lines of Fig. 7).
pub fn cv_all_apps_reference(data: &SystemData, scale: &RunScale) -> Scores {
    let splits = crate::experiments::curves::prepare_splits(data, scale);
    let spec = scale.model(true);
    let all: Vec<Scores> = splits
        .par_iter()
        .enumerate()
        .map(|(i, inst)| {
            let train = &inst.split.train;
            let mut model = spec.with_seed(scale.seed ^ (i as u64 + 31)).build();
            model.fit(&train.x, &train.y, train.n_classes());
            let pred = model.predict(&inst.split.test.x);
            Scores::compute(&inst.split.test.y, &pred, train.n_classes())
        })
        .collect();
    let n = all.len() as f64;
    Scores {
        f1: all.iter().map(|s| s.f1).sum::<f64>() / n,
        false_alarm_rate: all.iter().map(|s| s.false_alarm_rate).sum::<f64>() / n,
        anomaly_miss_rate: all.iter().map(|s| s.anomaly_miss_rate).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_robustness_runs() {
        let cfg = RobustnessConfig {
            training_app_counts: vec![2, 6],
            n_test_apps: 3,
            n_combos: 2,
            scale: RunScale::smoke(21),
        };
        let res = run_robustness(&cfg);
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            assert!((0.0..=1.0).contains(&p.f1.0));
        }
        assert!(res.cv_reference.f1 > 0.5, "cv reference {:?}", res.cv_reference);
        let text = res.render();
        assert!(text.contains("5-fold CV"));
    }

    #[test]
    fn unseen_apps_hurt_relative_to_cv_reference() {
        // The paper's headline: training on few apps and testing on unseen
        // ones is much worse than the all-apps CV setting.
        let cfg = RobustnessConfig {
            training_app_counts: vec![2],
            n_test_apps: 3,
            n_combos: 3,
            scale: RunScale::smoke(22),
        };
        let res = run_robustness(&cfg);
        assert!(
            res.points[0].f1.0 < res.cv_reference.f1,
            "2-app F1 {} must trail CV reference {}",
            res.points[0].f1.0,
            res.cv_reference.f1
        );
    }
}
