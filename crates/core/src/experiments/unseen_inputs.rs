//! Previously unseen application inputs (paper Sec. V-B.2, Fig. 8).
//!
//! For each held-out input deck, the initial labeled set is drawn only
//! from the other decks, while the test dataset contains *only* runs with
//! the held-out deck. The paper observes a catastrophic start (F1 ≈ 0.2,
//! false-alarm rate ≈ 80 %) — worse than unseen applications — and shows
//! the uncertainty strategy reaching 0.95 F1 with ~225 queries, 28x fewer
//! than the samples a fully supervised model needs.

use crate::data::{System, SystemData};
use crate::report::{fmt_opt, fmt_score, render_curve_line, render_table};
use crate::scale::RunScale;
use crate::split::{prepare_split, seed_and_pool_filtered};
use alba_active::{run_session, MethodCurves, SessionConfig, SessionResult, Strategy};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the unseen-inputs experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnseenInputsConfig {
    /// Input decks held out (each produces one scenario; aggregated).
    pub held_out_decks: Vec<usize>,
    /// Strategies compared.
    pub strategies: Vec<Strategy>,
    /// Sizing.
    pub scale: RunScale,
}

impl UnseenInputsConfig {
    /// Paper-style defaults: each of the three decks held out in turn.
    pub fn paper(scale: RunScale) -> Self {
        Self {
            held_out_decks: vec![0, 1, 2],
            strategies: vec![Strategy::Uncertainty, Strategy::Random],
            scale,
        }
    }
}

/// Full result: curves aggregated over held-out-deck scenarios.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnseenInputsResult {
    /// Aggregated curves per strategy.
    pub curves: Vec<MethodCurves>,
    /// Mean additional samples to 0.95 per strategy.
    pub to_095: BTreeMap<String, Option<f64>>,
}

impl UnseenInputsResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig.8-style: previously unseen application inputs ==\n");
        for c in &self.curves {
            out.push_str(&format!("{:<12} F1   {}\n", c.name, render_curve_line(&c.f1.mean, 6)));
            out.push_str(&format!(
                "{:<12} FAR  {}\n",
                "",
                render_curve_line(&c.false_alarm.mean, 6)
            ));
            out.push_str(&format!("{:<12} MISS {}\n", "", render_curve_line(&c.miss_rate.mean, 6)));
        }
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    fmt_score(c.f1.mean[0]),
                    fmt_score(c.false_alarm.mean[0]),
                    fmt_opt(self.to_095[&c.name]),
                    fmt_score(c.f1.last()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["strategy", "start F1", "start FAR", "to 0.95", "final F1"],
            &rows,
        ));
        out
    }
}

/// Runs the experiment on Volta.
pub fn run_unseen_inputs(cfg: &UnseenInputsConfig) -> UnseenInputsResult {
    let data = SystemData::generate_best(System::Volta, cfg.scale.campaign, cfg.scale.seed);
    let spec = cfg.scale.model(true);

    let jobs: Vec<(usize, Strategy)> = cfg
        .held_out_decks
        .iter()
        .flat_map(|&d| cfg.strategies.iter().map(move |&s| (d, s)))
        .collect();

    let sessions: Vec<(String, SessionResult)> = jobs
        .par_iter()
        .map(|&(deck, strategy)| {
            let deck_seed = cfg.scale.seed ^ 0xDEC ^ ((deck as u64) << 12);
            let split = prepare_split(&data.dataset, &cfg.scale.split, deck_seed);
            // Seed labels only from decks other than the held-out one.
            let sp =
                seed_and_pool_filtered(&split.train, |m| m.input_deck != deck, deck_seed ^ 0x2);
            // Test: only the held-out deck.
            let test_idx = split.test.indices_where(|m, _| m.input_deck == deck);
            let test = split.test.select(&test_idx);
            let session = run_session(
                &spec,
                &sp.seed_set,
                &sp.pool,
                &test,
                &SessionConfig {
                    strategy,
                    budget: cfg.scale.budget,
                    target_f1: None,
                    seed: deck_seed ^ 0x3,
                },
            );
            (strategy.name().to_string(), session)
        })
        .collect();

    let mut by_strategy: BTreeMap<String, Vec<SessionResult>> = BTreeMap::new();
    for (name, s) in sessions {
        by_strategy.entry(name).or_default().push(s);
    }
    let curves = cfg
        .strategies
        .iter()
        .map(|s| MethodCurves::from_sessions(s.name(), &by_strategy[s.name()]))
        .collect();
    let to_095 = cfg
        .strategies
        .iter()
        .map(|s| {
            (
                s.name().to_string(),
                MethodCurves::mean_queries_to_target(&by_strategy[s.name()], 0.95),
            )
        })
        .collect();

    UnseenInputsResult { curves, to_095 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_unseen_inputs_runs() {
        let cfg = UnseenInputsConfig {
            held_out_decks: vec![0, 1],
            strategies: vec![Strategy::Uncertainty, Strategy::Random],
            scale: RunScale::smoke(31),
        };
        let res = run_unseen_inputs(&cfg);
        assert_eq!(res.curves.len(), 2);
        for c in &res.curves {
            assert!(!c.f1.mean.is_empty());
            assert!(c.f1.mean.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        assert!(res.render().contains("unseen application inputs"));
    }

    #[test]
    fn unseen_inputs_start_poorly() {
        // Input decks rescale signatures by up to ±40 %, so a model seeded
        // without the held-out deck must start well below its ceiling.
        let cfg = UnseenInputsConfig {
            held_out_decks: vec![0, 1, 2],
            strategies: vec![Strategy::Uncertainty],
            scale: RunScale::smoke(33),
        };
        let res = run_unseen_inputs(&cfg);
        let start = res.curves[0].f1.mean[0];
        assert!(start < 0.9, "unseen-deck start F1 {start} should be degraded");
    }
}
