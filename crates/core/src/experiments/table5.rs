//! Table V: the summary of anomaly-diagnosis results.
//!
//! For each dataset the paper reports the best feature-extraction method
//! and query strategy, the initial (seed) sample count, the starting
//! F1-score, the additional labeled samples needed to reach 0.85 / 0.90 /
//! 0.95 F1, the F1 attainable with the *whole* active-learning training
//! dataset, and the maximum 5-fold-CV score on the full dataset.

use crate::data::System;
use crate::data::SystemData;
use crate::experiments::curves::{prepare_splits, run_curves, CurvesConfig, CurvesResult};
use crate::report::{fmt_opt, fmt_score, render_table};
use crate::scale::RunScale;
use alba_active::MethodCurves;
use alba_features::{drop_degenerate_features, select_top_k, MinMaxScaler};
use alba_ml::{cross_val_f1, Scores};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One Table V row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5Row {
    /// Dataset name.
    pub dataset: String,
    /// Feature-extraction method used.
    pub feature_method: String,
    /// Best query strategy (highest final mean F1).
    pub query_strategy: String,
    /// Mean initial (seed) labeled-sample count.
    pub initial_sample_count: f64,
    /// Mean starting F1 (seed-only model).
    pub starting_f1: f64,
    /// Mean additional samples to reach 0.85 (None = already passed shows 0).
    pub to_085: Option<f64>,
    /// Mean additional samples to reach 0.90.
    pub to_090: Option<f64>,
    /// Mean additional samples to reach 0.95.
    pub to_095: Option<f64>,
    /// F1 with the full active-learning training dataset.
    pub pool_f1: f64,
    /// Size of the active-learning training dataset.
    pub pool_size: usize,
    /// Max 5-fold CV F1 on the full dataset.
    pub cv_f1: f64,
    /// Full dataset size.
    pub full_size: usize,
}

/// The full Table V.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5 {
    /// One row per dataset.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Text rendering in the paper's column order.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.feature_method.clone(),
                    r.query_strategy.clone(),
                    format!("{:.0}", r.initial_sample_count),
                    fmt_score(r.starting_f1),
                    match r.to_085 {
                        Some(0.0) => "Already Passed".into(),
                        v => fmt_opt(v),
                    },
                    fmt_opt(r.to_090),
                    fmt_opt(r.to_095),
                    format!("{} ({} samples)", fmt_score(r.pool_f1), r.pool_size),
                    format!("{} ({} samples)", fmt_score(r.cv_f1), r.full_size),
                ]
            })
            .collect();
        render_table(
            &[
                "Dataset",
                "Feature Extraction",
                "Query Strategy",
                "Initial Samples",
                "Starting F1",
                "F1=0.85",
                "F1=0.90",
                "F1=0.95",
                "AL Training Dataset F1",
                "Max Score 5-fold CV",
            ],
            &rows,
        )
    }
}

/// Ceiling 1: mean test-F1 of the tuned model trained on the entire
/// active-learning training dataset, across splits. Returns
/// `(mean_f1, mean_pool_size)`.
pub fn pool_ceiling(data: &SystemData, scale: &RunScale, volta: bool) -> (f64, usize) {
    let splits = prepare_splits(data, scale);
    let spec = scale.model(volta);
    let scores: Vec<(f64, usize)> = splits
        .par_iter()
        .enumerate()
        .map(|(i, inst)| {
            let mut model = spec.with_seed(scale.seed ^ (i as u64 + 77)).build();
            let train = &inst.split.train;
            model.fit(&train.x, &train.y, train.n_classes());
            let pred = model.predict(&inst.split.test.x);
            let s = Scores::compute(&inst.split.test.y, &pred, train.n_classes());
            (s.f1, train.len())
        })
        .collect();
    let mean_f1 = scores.iter().map(|s| s.0).sum::<f64>() / scores.len() as f64;
    let mean_size = scores.iter().map(|s| s.1).sum::<usize>() / scores.len();
    (mean_f1, mean_size)
}

/// Ceiling 2: 5-fold CV F1 of the tuned model on the full dataset
/// (features selected and scaled once on the full dataset — a ceiling
/// measurement, not a deployment protocol).
pub fn cv_ceiling(data: &SystemData, scale: &RunScale, volta: bool) -> (f64, usize) {
    let (clean, _) = drop_degenerate_features(&data.dataset);
    let top = select_top_k(&clean, scale.split.top_k_features);
    let mut selected = clean.select_features(&top);
    let scaler = MinMaxScaler::fit(&selected.x);
    scaler.transform_inplace(&mut selected.x);
    let spec = scale.model(volta);
    let f1 =
        cross_val_f1(&spec, &selected.x, &selected.y, selected.n_classes(), 5, scale.seed ^ 0xCE11);
    (f1, selected.len())
}

/// Builds one Table V row from a finished curves run plus the ceilings.
pub fn table5_row(curves: &CurvesResult, scale: &RunScale) -> Table5Row {
    let volta = curves.system == System::Volta;
    let data = SystemData::generate(curves.system, curves.method, scale.campaign, scale.seed);
    let (pool_f1, pool_size) = pool_ceiling(&data, scale, volta);
    let (cv_f1, full_size) = cv_ceiling(&data, scale, volta);
    let best = curves.best_strategy();
    let sessions = &curves.sessions[&best.name];
    Table5Row {
        dataset: curves.system.name().to_string(),
        feature_method: curves.method.name().to_string(),
        query_strategy: best.name.clone(),
        initial_sample_count: curves.mean_seed_count,
        starting_f1: best.f1.mean[0],
        to_085: MethodCurves::mean_queries_to_target(sessions, 0.85),
        to_090: MethodCurves::mean_queries_to_target(sessions, 0.90),
        to_095: MethodCurves::mean_queries_to_target(sessions, 0.95),
        pool_f1,
        pool_size,
        cv_f1,
        full_size,
    }
}

/// Runs the full Table V (both systems, paper-best feature methods).
pub fn run_table5(scale: &RunScale, include_proctor: bool) -> Table5 {
    let rows = [System::Volta, System::Eclipse]
        .iter()
        .map(|&system| {
            let curves = run_curves(&CurvesConfig {
                system,
                method: None,
                scale: scale.clone(),
                include_proctor,
            });
            table5_row(&curves, scale)
        })
        .collect();
    Table5 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMethod;

    #[test]
    fn ceilings_are_high_on_smoke_volta() {
        let scale = RunScale::smoke(7);
        let data = SystemData::generate(System::Volta, FeatureMethod::Mvts, scale.campaign, 7);
        let (pool_f1, pool_size) = pool_ceiling(&data, &scale, true);
        assert!(pool_f1 > 0.6, "pool ceiling {pool_f1}");
        assert!(pool_size > 50);
        let (cv_f1, full_size) = cv_ceiling(&data, &scale, true);
        assert!(cv_f1 > 0.6, "cv ceiling {cv_f1}");
        assert_eq!(full_size, data.dataset.len());
        // CV uses more data than the pool, so it should not be much worse.
        assert!(cv_f1 > pool_f1 - 0.15);
    }

    #[test]
    fn table5_renders_with_both_ceilings() {
        let row = Table5Row {
            dataset: "Volta".into(),
            feature_method: "TSFRESH".into(),
            query_strategy: "uncertainty".into(),
            initial_sample_count: 55.0,
            starting_f1: 0.86,
            to_085: Some(0.0),
            to_090: Some(10.0),
            to_095: Some(21.0),
            pool_f1: 0.95,
            pool_size: 6329,
            cv_f1: 0.99,
            full_size: 16732,
        };
        let t = Table5 { rows: vec![row] };
        let text = t.render();
        assert!(text.contains("Already Passed"));
        assert!(text.contains("0.95 (6329 samples)"));
        assert!(text.contains("0.99 (16732 samples)"));
    }
}
