//! Table IV: hyperparameter grid search.
//!
//! Grid search over the paper's exact search spaces, in a 5-fold stratified
//! cross-validation setting, on the active-learning training dataset only
//! (the test set is withheld to prevent leakage). At reduced scale the
//! training dataset is stratified-subsampled to keep the 168-configuration
//! sweep tractable.

use crate::data::{System, SystemData};
use crate::report::render_table;
use crate::scale::RunScale;
use crate::split::prepare_split;
use alba_data::stratified_split;
use alba_ml::{table4_grid, GridSearch, ModelFamily, ModelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Table IV experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Config {
    /// System whose training pool is searched.
    pub system: System,
    /// Model families to search (all four by default).
    pub families: Vec<ModelFamily>,
    /// Cross-validation folds (5 in the paper).
    pub k_folds: usize,
    /// Cap on training samples used for the search (None = all).
    pub max_samples: Option<usize>,
    /// Sizing.
    pub scale: RunScale,
}

impl Table4Config {
    /// Paper-style defaults at the given scale.
    pub fn paper(system: System, scale: RunScale) -> Self {
        let max_samples = match scale.campaign {
            alba_telemetry::Scale::Smoke => Some(150),
            alba_telemetry::Scale::Default => Some(500),
            alba_telemetry::Scale::Full => None,
        };
        Self {
            system,
            families: vec![ModelFamily::Lr, ModelFamily::Rf, ModelFamily::Lgbm, ModelFamily::Mlp],
            k_folds: 5,
            max_samples,
            scale,
        }
    }
}

/// One family's search outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Family {
    /// Family searched.
    pub family: ModelFamily,
    /// Configurations evaluated.
    pub n_configs: usize,
    /// The winning configuration.
    pub best: ModelSpec,
    /// Its mean CV F1.
    pub best_cv_f1: f64,
    /// The configuration the paper selected for this system (reference).
    pub paper_choice: ModelSpec,
}

/// Full Table IV result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Result {
    /// System searched.
    pub system: System,
    /// One entry per family.
    pub families: Vec<Table4Family>,
}

impl Table4Result {
    /// Text rendering.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .families
            .iter()
            .map(|f| {
                vec![
                    f.family.name().to_string(),
                    f.n_configs.to_string(),
                    f.best.describe(),
                    format!("{:.3}", f.best_cv_f1),
                    f.paper_choice.describe(),
                ]
            })
            .collect();
        let mut out = format!("== Table IV-style grid search ({}) ==\n", self.system.name());
        out.push_str(&render_table(
            &["model", "configs", "best found", "CV F1", "paper's choice"],
            &rows,
        ));
        out
    }
}

/// Runs the grid search.
pub fn run_table4(cfg: &Table4Config) -> Table4Result {
    let data = SystemData::generate_best(cfg.system, cfg.scale.campaign, cfg.scale.seed);
    let split = prepare_split(&data.dataset, &cfg.scale.split, cfg.scale.seed ^ 0x44);
    let mut train = split.train;
    if let Some(cap) = cfg.max_samples {
        if train.len() > cap {
            let frac = cap as f64 / train.len() as f64;
            let mut rng = StdRng::seed_from_u64(cfg.scale.seed ^ 0x45);
            let (keep, _) = stratified_split(&train.y, frac, &mut rng);
            train = train.select(&keep);
        }
    }

    let families = cfg
        .families
        .iter()
        .map(|&family| {
            let grid = table4_grid(family);
            let gs = GridSearch::run(
                &grid,
                &train.x,
                &train.y,
                train.n_classes(),
                cfg.k_folds,
                cfg.scale.seed ^ 0x46,
            );
            Table4Family {
                family,
                n_configs: grid.len(),
                best: gs.best().spec.clone(),
                best_cv_f1: gs.best().cv_f1,
                paper_choice: ModelSpec::tuned(family, cfg.system == System::Volta),
            }
        })
        .collect();

    Table4Result { system: cfg.system, families }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_search_on_lr_and_rf() {
        // The full 168-config sweep is exercised by the repro harness; the
        // unit test keeps to the two cheapest families with tight caps.
        let mut cfg = Table4Config::paper(System::Volta, RunScale::smoke(41));
        cfg.families = vec![ModelFamily::Lr, ModelFamily::Rf];
        cfg.k_folds = 3;
        cfg.max_samples = Some(80);
        let res = run_table4(&cfg);
        assert_eq!(res.families.len(), 2);
        assert_eq!(res.families[0].n_configs, 10);
        assert_eq!(res.families[1].n_configs, 50);
        for f in &res.families {
            assert!(f.best_cv_f1 > 0.3, "{:?} cv f1 {}", f.family, f.best_cv_f1);
            assert_eq!(f.best.family(), f.family);
        }
        let text = res.render();
        assert!(text.contains("LR") && text.contains("RF"));
    }
}
