//! Previously unseen applications (paper Sec. V-B.1, Fig. 6).
//!
//! The initial labeled dataset covers only 2 / 4 / 6 of Volta's 11
//! applications (all anomalies included); the test dataset contains only
//! the *remaining* applications; the unlabeled pool is the full production
//! pool. The uncertainty strategy recovers a 0.95 F1 with a few dozen
//! queries (50 / 35 / 30 in the paper) because it queries exactly the
//! unseen-application samples the model is confused about, while Random
//! needs hundreds.

use crate::data::{System, SystemData};
use crate::report::{fmt_opt, fmt_score, render_curve_line, render_table};
use crate::scale::RunScale;
use crate::split::{prepare_split, seed_and_pool};
use alba_active::{run_session, MethodCurves, SessionConfig, SessionResult, Strategy};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the unseen-applications experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnseenAppsConfig {
    /// Numbers of applications present in the initial labeled set.
    pub training_app_counts: Vec<usize>,
    /// Random application combinations evaluated per count.
    pub n_combos: usize,
    /// Strategies compared (the paper shows uncertainty vs Random).
    pub strategies: Vec<Strategy>,
    /// Sizing.
    pub scale: RunScale,
}

impl UnseenAppsConfig {
    /// Paper-style defaults at the given scale.
    pub fn paper(scale: RunScale) -> Self {
        Self {
            training_app_counts: vec![2, 4, 6],
            n_combos: 5,
            strategies: vec![Strategy::Uncertainty, Strategy::Random],
            scale,
        }
    }
}

/// Curves for one training-app count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnseenAppsScenario {
    /// Applications in the initial labeled set.
    pub n_training_apps: usize,
    /// Aggregated curves per strategy.
    pub curves: Vec<MethodCurves>,
    /// Mean additional samples to 0.95 per strategy.
    pub to_095: BTreeMap<String, Option<f64>>,
}

/// Full experiment result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnseenAppsResult {
    /// One scenario per training-app count.
    pub scenarios: Vec<UnseenAppsScenario>,
}

impl UnseenAppsResult {
    /// Text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("== Fig.6-style: previously unseen applications ==\n");
        for s in &self.scenarios {
            out.push_str(&format!("-- {} training applications --\n", s.n_training_apps));
            for c in &s.curves {
                out.push_str(&format!("{:<12} F1 {}\n", c.name, render_curve_line(&c.f1.mean, 6)));
            }
            let rows: Vec<Vec<String>> = s
                .curves
                .iter()
                .map(|c| {
                    vec![
                        c.name.clone(),
                        fmt_score(c.f1.mean[0]),
                        fmt_opt(s.to_095[&c.name]),
                        fmt_score(c.f1.last()),
                    ]
                })
                .collect();
            out.push_str(&render_table(&["strategy", "start F1", "to 0.95", "final F1"], &rows));
        }
        out
    }
}

/// Runs the experiment on Volta (the paper's setting).
pub fn run_unseen_apps(cfg: &UnseenAppsConfig) -> UnseenAppsResult {
    let data = SystemData::generate_best(System::Volta, cfg.scale.campaign, cfg.scale.seed);
    let apps = data.dataset.applications();
    let spec = cfg.scale.model(true);

    let scenarios = cfg
        .training_app_counts
        .iter()
        .map(|&k| {
            assert!(k < apps.len(), "need at least one held-out application");
            // The expensive split preparation depends only on the combo, so
            // it is shared by every strategy evaluated on that combo.
            struct ComboInstance {
                seed_pool: crate::split::SeedPool,
                test: alba_data::Dataset,
                seed: u64,
            }
            let combos: Vec<ComboInstance> = (0..cfg.n_combos)
                .into_par_iter()
                .map(|combo| {
                    let combo_seed = cfg.scale.seed ^ ((k as u64) << 24) ^ ((combo as u64) << 8);
                    let mut rng = StdRng::seed_from_u64(combo_seed);
                    let mut shuffled = apps.clone();
                    shuffled.shuffle(&mut rng);
                    let training_apps: Vec<String> = shuffled[..k].to_vec();

                    let split = prepare_split(&data.dataset, &cfg.scale.split, combo_seed ^ 0x5);
                    let seed_pool =
                        seed_and_pool(&split.train, Some(&training_apps), combo_seed ^ 0x6);
                    // Test: only previously unseen applications.
                    let test_idx = split.test.indices_where(|m, _| !training_apps.contains(&m.app));
                    let test = split.test.select(&test_idx);
                    ComboInstance { seed_pool, test, seed: combo_seed }
                })
                .collect();

            // Jobs: (combo, strategy).
            let jobs: Vec<(usize, Strategy)> = (0..cfg.n_combos)
                .flat_map(|c| cfg.strategies.iter().map(move |&s| (c, s)))
                .collect();
            let sessions: Vec<(String, SessionResult)> = jobs
                .par_iter()
                .map(|&(combo, strategy)| {
                    let inst = &combos[combo];
                    let combo_seed = inst.seed;
                    let sp = &inst.seed_pool;
                    let test = &inst.test;
                    let session = run_session(
                        &spec,
                        &sp.seed_set,
                        &sp.pool,
                        test,
                        &SessionConfig {
                            strategy,
                            budget: cfg.scale.budget,
                            target_f1: None,
                            seed: combo_seed ^ 0x7,
                        },
                    );
                    (strategy.name().to_string(), session)
                })
                .collect();

            let mut by_strategy: BTreeMap<String, Vec<SessionResult>> = BTreeMap::new();
            for (name, s) in sessions {
                by_strategy.entry(name).or_default().push(s);
            }
            let curves: Vec<MethodCurves> = cfg
                .strategies
                .iter()
                .map(|s| MethodCurves::from_sessions(s.name(), &by_strategy[s.name()]))
                .collect();
            let to_095 = cfg
                .strategies
                .iter()
                .map(|s| {
                    (
                        s.name().to_string(),
                        MethodCurves::mean_queries_to_target(&by_strategy[s.name()], 0.95),
                    )
                })
                .collect();
            UnseenAppsScenario { n_training_apps: k, curves, to_095 }
        })
        .collect();

    UnseenAppsResult { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_unseen_apps_runs() {
        let cfg = UnseenAppsConfig {
            training_app_counts: vec![2, 4],
            n_combos: 2,
            strategies: vec![Strategy::Uncertainty, Strategy::Random],
            scale: RunScale::smoke(9),
        };
        let res = run_unseen_apps(&cfg);
        assert_eq!(res.scenarios.len(), 2);
        for s in &res.scenarios {
            assert_eq!(s.curves.len(), 2);
            assert!(s.to_095.contains_key("uncertainty"));
            for c in &s.curves {
                assert!(!c.f1.mean.is_empty());
            }
        }
        let text = res.render();
        assert!(text.contains("2 training applications"));
    }

    #[test]
    fn more_training_apps_start_higher() {
        // With more applications seeded, the initial F1 on unseen apps
        // should (on average) be at least as good — the paper's key trend.
        let cfg = UnseenAppsConfig {
            training_app_counts: vec![2, 8],
            n_combos: 3,
            strategies: vec![Strategy::Uncertainty],
            scale: RunScale::smoke(13),
        };
        let res = run_unseen_apps(&cfg);
        let start_2 = res.scenarios[0].curves[0].f1.mean[0];
        let start_8 = res.scenarios[1].curves[0].f1.mean[0];
        assert!(
            start_8 + 0.1 >= start_2,
            "8-app start {start_8} should not be far below 2-app start {start_2}"
        );
    }
}
