//! The anomaly-diagnosis-with-active-learning experiment (paper Sec. V-A):
//! Figs. 3 (Volta) and 5 (Eclipse).
//!
//! For each of the repeated stratified train/test splits, every query
//! strategy (uncertainty, margin, entropy) runs one session, the stochastic
//! baselines (Random, Equal App) run several, and Proctor runs once. All
//! methods are tested against the same per-split test dataset after every
//! query; curves aggregate across splits into mean ± 95 % CI bands.

use crate::data::{FeatureMethod, System, SystemData};
use crate::proctor::run_proctor_session;
use crate::report::{fmt_opt, fmt_score, render_curve_line, render_table};
use crate::scale::RunScale;
use crate::split::{prepare_split, seed_and_pool, PreparedSplit, SeedPool};
use alba_active::{run_session, MethodCurves, SessionConfig, SessionResult, Strategy};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of one curves run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurvesConfig {
    /// System to evaluate.
    pub system: System,
    /// Feature method (`None` = the system's Table V best).
    pub method: Option<FeatureMethod>,
    /// Sizing.
    pub scale: RunScale,
    /// Whether to run the (expensive) Proctor baseline.
    pub include_proctor: bool,
}

/// Result of a curves run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurvesResult {
    /// System evaluated.
    pub system: System,
    /// Feature method used.
    pub method: FeatureMethod,
    /// Aggregated trajectories per method, in display order.
    pub curves: Vec<MethodCurves>,
    /// Raw sessions per method (drill-downs, Table V).
    pub sessions: BTreeMap<String, Vec<SessionResult>>,
    /// Mean seed-set size across splits (Table V "Initial Sample Count").
    pub mean_seed_count: f64,
    /// Class names (for drill-downs).
    pub class_names: Vec<String>,
}

impl CurvesResult {
    /// Aggregated curves of one method.
    pub fn method_curves(&self, name: &str) -> Option<&MethodCurves> {
        self.curves.iter().find(|c| c.name == name)
    }

    /// Mean queries to reach `target` F1 per method.
    pub fn queries_to_target(&self, target: f64) -> Vec<(String, Option<f64>)> {
        self.curves
            .iter()
            .map(|c| {
                let sessions = &self.sessions[&c.name];
                (c.name.clone(), MethodCurves::mean_queries_to_target(sessions, target))
            })
            .collect()
    }

    /// The informative strategy with the best final mean F1 (the paper
    /// picks uncertainty on Volta, margin on Eclipse this way).
    pub fn best_strategy(&self) -> &MethodCurves {
        self.curves
            .iter()
            .filter(|c| Strategy::ALL.iter().any(|s| s.is_informative() && s.name() == c.name))
            .max_by(|a, b| a.f1.last().total_cmp(&b.f1.last()))
            .expect("informative strategies present")
    }

    /// Text rendering (figure digest + samples-to-target table).
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} / {}: F1, false-alarm and miss-rate vs queries ==\n",
            self.system.name(),
            self.method.name()
        );
        for c in &self.curves {
            out.push_str(&format!("{:<12} F1   {}\n", c.name, render_curve_line(&c.f1.mean, 6)));
            out.push_str(&format!(
                "{:<12} FAR  {}\n",
                "",
                render_curve_line(&c.false_alarm.mean, 6)
            ));
            out.push_str(&format!("{:<12} MISS {}\n", "", render_curve_line(&c.miss_rate.mean, 6)));
        }
        let rows: Vec<Vec<String>> = self
            .curves
            .iter()
            .map(|c| {
                let s = &self.sessions[&c.name];
                vec![
                    c.name.clone(),
                    fmt_score(c.f1.mean[0]),
                    fmt_opt(MethodCurves::mean_queries_to_target(s, 0.80)),
                    fmt_opt(MethodCurves::mean_queries_to_target(s, 0.85)),
                    fmt_opt(MethodCurves::mean_queries_to_target(s, 0.90)),
                    fmt_opt(MethodCurves::mean_queries_to_target(s, 0.95)),
                    fmt_score(c.f1.last()),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["method", "start F1", "to 0.80", "to 0.85", "to 0.90", "to 0.95", "final F1"],
            &rows,
        ));
        out
    }
}

/// One prepared split with its seed/pool decomposition.
pub(crate) struct SplitInstance {
    pub split: PreparedSplit,
    pub seed_pool: SeedPool,
}

/// Prepares `n_splits` stratified splits of a system dataset.
pub(crate) fn prepare_splits(data: &SystemData, scale: &RunScale) -> Vec<SplitInstance> {
    (0..scale.n_splits)
        .into_par_iter()
        .map(|rep| {
            let split = prepare_split(
                &data.dataset,
                &scale.split,
                scale.seed ^ ((rep as u64 + 1) * 0x9E37_79B9),
            );
            let seed_pool = seed_and_pool(&split.train, None, scale.seed ^ (rep as u64 + 101));
            SplitInstance { split, seed_pool }
        })
        .collect()
}

/// Runs the full curves experiment.
pub fn run_curves(cfg: &CurvesConfig) -> CurvesResult {
    let obs = alba_obs::global();
    let method = cfg.method.unwrap_or_else(|| cfg.system.best_feature_method());
    let data = SystemData::generate(cfg.system, method, cfg.scale.campaign, cfg.scale.seed);
    let splits = {
        let _span = obs.span("exp_stage_ns", &[("stage", "prepare_splits")]);
        prepare_splits(&data, &cfg.scale)
    };
    let spec = cfg.scale.model(cfg.system == System::Volta);

    // Job list: (method name, split index, repeat index).
    #[derive(Clone, Copy)]
    enum Job {
        Al(Strategy),
        Proctor,
    }
    let mut jobs: Vec<(Job, usize, usize)> = Vec::new();
    for rep in 0..splits.len() {
        for s in Strategy::ALL {
            let repeats = if s.is_informative() { 1 } else { cfg.scale.baseline_repeats };
            for r in 0..repeats {
                jobs.push((Job::Al(s), rep, r));
            }
        }
        if cfg.include_proctor {
            jobs.push((Job::Proctor, rep, 0));
        }
    }

    let sessions_span = obs.span("exp_stage_ns", &[("stage", "al_sessions")]);
    let results: Vec<(String, SessionResult)> = jobs
        .par_iter()
        .map(|&(job, rep, r)| {
            let inst = &splits[rep];
            let seed = cfg.scale.seed ^ ((rep as u64) << 16) ^ ((r as u64) << 32) ^ 0xF00D;
            match job {
                Job::Al(strategy) => {
                    let session = run_session(
                        &spec,
                        &inst.seed_pool.seed_set,
                        &inst.seed_pool.pool,
                        &inst.split.test,
                        &SessionConfig {
                            strategy,
                            budget: cfg.scale.budget,
                            target_f1: None,
                            seed,
                        },
                    );
                    (strategy.name().to_string(), session)
                }
                Job::Proctor => {
                    let session = run_proctor_session(
                        &inst.seed_pool.seed_set,
                        &inst.seed_pool.pool,
                        &inst.split.test,
                        &cfg.scale.proctor(seed),
                    );
                    ("proctor".to_string(), session)
                }
            }
        })
        .collect();
    sessions_span.finish();

    let mut sessions: BTreeMap<String, Vec<SessionResult>> = BTreeMap::new();
    for (name, session) in results {
        sessions.entry(name).or_default().push(session);
    }
    let mut order: Vec<String> = Strategy::ALL.iter().map(|s| s.name().to_string()).collect();
    if cfg.include_proctor {
        order.push("proctor".to_string());
    }
    let curves: Vec<MethodCurves> =
        order.iter().map(|name| MethodCurves::from_sessions(name, &sessions[name])).collect();
    let mean_seed_count =
        splits.iter().map(|s| s.seed_pool.seed_set.len() as f64).sum::<f64>() / splits.len() as f64;

    CurvesResult {
        system: cfg.system,
        method,
        curves,
        sessions,
        mean_seed_count,
        class_names: data.dataset.encoder.names().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(system: System) -> CurvesConfig {
        CurvesConfig {
            system,
            method: Some(FeatureMethod::Mvts),
            scale: RunScale::smoke(3),
            include_proctor: true,
        }
    }

    #[test]
    fn smoke_curves_run_end_to_end() {
        let res = run_curves(&smoke_cfg(System::Volta));
        // 5 strategies + proctor.
        assert_eq!(res.curves.len(), 6);
        for c in &res.curves {
            assert_eq!(c.f1.mean.len(), 13, "budget 12 + initial point");
            assert!(c.f1.mean.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        assert!(res.mean_seed_count > 20.0, "seed {}", res.mean_seed_count);
        assert_eq!(res.class_names.len(), 6);
        // Rendering works and mentions every method.
        let text = res.render();
        for c in &res.curves {
            assert!(text.contains(&c.name), "{text}");
        }
        // queries_to_target returns one entry per method.
        assert_eq!(res.queries_to_target(0.95).len(), 6);
        let _ = res.best_strategy();
    }

    #[test]
    fn informative_strategies_outperform_random_on_smoke_volta() {
        // Even the tiny smoke configuration should show active learning
        // improving F1 relative to the starting point.
        let res = run_curves(&CurvesConfig { include_proctor: false, ..smoke_cfg(System::Volta) });
        let unc = res.method_curves("uncertainty").unwrap();
        assert!(
            unc.f1.last() >= unc.f1.mean[0] - 0.05,
            "uncertainty should not collapse: {:?}",
            unc.f1.mean
        );
    }
}
